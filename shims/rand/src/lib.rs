//! Offline stand-in for the `rand` crate.
//!
//! Implements the small API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer and float
//! ranges — on top of xoshiro256**, seeded via splitmix64. Deterministic for a
//! given seed (the property the characterization sweeps rely on), with no
//! claim of matching upstream `rand`'s stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
    /// Whether the range contains no values.
    fn is_empty_range(&self) -> bool;
}

/// The raw entropy source every generator provides.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        assert!(!range.is_empty_range(), "cannot sample from an empty range");
        range.sample(self)
    }

    /// A uniform value of `T` (`f64` in `[0, 1)`, full-width integers).
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a natural "uniform from 64 random bits" mapping for [`Rng::gen`].
pub trait Uniform {
    /// Map 64 uniform bits to a value.
    fn from_bits(bits: u64) -> Self;
}

impl Uniform for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 explicit mantissa bits -> [0, 1).
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Uniform for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Uniform for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
    fn is_empty_range(&self) -> bool {
        self.start >= self.end
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded by splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
