//! Offline stand-in for the `serde` crate.
//!
//! The build container has no crate registry, and nothing in this workspace
//! serializes through serde at runtime (trace output is hand-rolled JSON in
//! `obs`). This shim keeps the workspace's `#[derive(Serialize, Deserialize)]`
//! annotations compiling: the derives expand to nothing, and the traits are
//! markers so `use serde::Serialize` and trait bounds still resolve.

#![warn(missing_docs)]

pub use serde_shim_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
