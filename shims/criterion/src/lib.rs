//! Offline stand-in for the `criterion` crate.
//!
//! Benches compile and run, executing each routine a small fixed number of
//! timed iterations and printing the mean wall time — enough to eyeball
//! regressions without statistics. The API subset matches the workspace's
//! benches: `Criterion`, `benchmark_group`, `sample_size`, `measurement_time`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; carried for API compatibility only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to bench closures; runs and times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup` (setup excluded from the
    /// measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level bench driver.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { iterations: 3 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iterations: self.iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&name.to_string(), b.iterations, b.elapsed);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (`sample_size`/`measurement_time` accepted and
/// ignored: the shim's iteration budget is fixed).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim keeps its fixed budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim keeps its fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn report(name: &str, iterations: u64, elapsed: Duration) {
    let mean = elapsed.as_secs_f64() / iterations.max(1) as f64;
    println!(
        "bench {name:<48} {:>12.6} s/iter ({iterations} iters)",
        mean
    );
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).measurement_time(Duration::from_secs(1));
        let mut sum = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| sum += x, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(sum, 6);
    }
}
