//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as forward-looking
//! annotations — nothing serializes through serde at runtime (the `obs` crate
//! hand-rolls its JSON). These derives accept the same syntax, including
//! `#[serde(...)]` field attributes, and expand to nothing.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` (and `#[serde(...)]` attributes); emit nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` (and `#[serde(...)]` attributes); emit nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
