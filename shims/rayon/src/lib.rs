//! Offline stand-in for the `rayon` crate.
//!
//! `par_iter()`/`into_par_iter()` return the ordinary sequential iterators, so
//! every rayon call site compiles and produces identical results, just without
//! parallel speedup. The characterization sweeps that use it remain correct;
//! re-enabling real parallelism is a one-line Cargo.toml change once a
//! registry is reachable.

#![warn(missing_docs)]

/// The traits rayon call sites import via `use rayon::prelude::*`.
pub mod prelude {
    /// `.par_iter()` on `&self`: sequential fallback.
    pub trait IntoParallelRefIterator<'data> {
        /// Item yielded by the iterator.
        type Item: 'data;
        /// The (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate; sequential in this shim.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.par_iter_mut()` on `&mut self`: sequential fallback.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item yielded by the iterator.
        type Item: 'data;
        /// The (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate mutably; sequential in this shim.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `.into_par_iter()` by value: sequential fallback over any `IntoIterator`.
    pub trait IntoParallelIterator {
        /// Item yielded by the iterator.
        type Item;
        /// The (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Convert into an iterator; sequential in this shim.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let total: i32 = (1..=4).into_par_iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }
}
