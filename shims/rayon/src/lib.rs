//! Offline stand-in for the `rayon` crate — now actually parallel.
//!
//! `par_iter()` / `into_par_iter()` / `par_iter_mut()` fan work out over
//! `std::thread::scope` in contiguous chunks, one chunk per available core.
//! Results are collected **in input order**, so every combinator is
//! bit-identical to its sequential counterpart: `collect` concatenates the
//! per-chunk outputs in chunk order, and `sum` folds the mapped values
//! left-to-right exactly as `Iterator::sum` would — only the element
//! *computation* runs concurrently.
//!
//! Only the combinator subset this workspace uses is implemented: `map` +
//! `collect`, `for_each`, and `sum`. Small inputs (or single-core hosts)
//! skip thread spawning entirely and run inline.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Number of worker threads a parallel call may use. `RAYON_SHIM_THREADS`
/// overrides the detected core count (tests use it to pin or sweep the
/// pool size; output never depends on it — see the module docs).
fn max_threads() -> usize {
    if let Some(n) = std::env::var("RAYON_SHIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Below this many items per thread the scheduling overhead dominates.
const MIN_ITEMS_PER_THREAD: usize = 2;

/// Split `len` items into at most `max_threads()` contiguous chunk ranges.
fn chunk_ranges(len: usize) -> Vec<(usize, usize)> {
    let threads = max_threads().min(len / MIN_ITEMS_PER_THREAD).max(1);
    let base = len / threads;
    let extra = len % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    for i in 0..threads {
        let size = base + usize::from(i < extra);
        ranges.push((start, start + size));
        start += size;
    }
    ranges
}

/// Map `f` over `items` on scoped threads, preserving input order.
fn parallel_map<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let ranges = chunk_ranges(items.len());
    if ranges.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let mut chunks: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| scope.spawn(move || items[lo..hi].iter().map(f).collect::<Vec<R>>()))
            .collect();
        chunks = handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect();
    });
    let mut flat = Vec::with_capacity(items.len());
    for chunk in chunks {
        flat.extend(chunk);
    }
    flat
}

/// Map `f` over owned `items` on scoped threads, preserving input order.
fn parallel_map_owned<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let ranges = chunk_ranges(items.len());
    if ranges.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let sizes: Vec<usize> = ranges.iter().map(|&(lo, hi)| hi - lo).collect();
    let mut chunks: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<T>] = &mut slots;
        let mut handles = Vec::with_capacity(sizes.len());
        for size in sizes {
            let (chunk, tail) = rest.split_at_mut(size);
            rest = tail;
            handles.push(scope.spawn(move || {
                chunk
                    .iter_mut()
                    .map(|t| f(t.take().expect("slot filled")))
                    .collect::<Vec<R>>()
            }));
        }
        chunks = handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect();
    });
    let mut flat = Vec::with_capacity(slots.len());
    for chunk in chunks {
        flat.extend(chunk);
    }
    flat
}

/// Parallel iterator over `&[T]` (what `par_iter()` returns).
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Lazily attach a map stage.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'data T) + Sync,
    {
        parallel_map(self.items, &|t| f(t));
    }

    /// Sum the elements left-to-right (bit-identical to sequential).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<&'data T>,
    {
        self.items.iter().sum()
    }
}

/// A mapped parallel iterator (what `.par_iter().map(f)` returns).
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Evaluate the map in parallel and collect in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(parallel_map(self.items, &self.f))
    }

    /// Evaluate the map in parallel and sum the results left-to-right.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        parallel_map(self.items, &self.f).into_iter().sum()
    }

    /// Evaluate the map in parallel, then consume each result in order.
    pub fn for_each(self, consume: impl Fn(R)) {
        parallel_map(self.items, &self.f)
            .into_iter()
            .for_each(consume);
    }
}

/// Parallel iterator over owned items (what `into_par_iter()` returns).
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Lazily attach a by-value map stage.
    pub fn map<R, F>(self, f: F) -> ParVecMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParVecMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map_owned(self.items, &|t| f(t));
    }

    /// Sum the elements left-to-right.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Collect back into a container (no-op reshuffle).
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// A mapped owned parallel iterator.
pub struct ParVecMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParVecMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Evaluate in parallel, preserving input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(parallel_map_owned(self.items, &self.f))
    }

    /// Evaluate in parallel and sum left-to-right.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        parallel_map_owned(self.items, &self.f).into_iter().sum()
    }
}

/// Mutable parallel iterator (what `par_iter_mut()` returns).
pub struct ParIterMut<'data, T> {
    items: &'data mut [T],
}

impl<'data, T: Send> ParIterMut<'data, T> {
    /// Apply `f` to every element in place, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let ranges = chunk_ranges(self.items.len());
        if ranges.len() <= 1 {
            self.items.iter_mut().for_each(f);
            return;
        }
        let sizes: Vec<usize> = ranges.iter().map(|&(lo, hi)| hi - lo).collect();
        std::thread::scope(|scope| {
            let mut rest: &mut [T] = self.items;
            for size in sizes {
                let (chunk, tail) = rest.split_at_mut(size);
                rest = tail;
                let f = &f;
                scope.spawn(move || chunk.iter_mut().for_each(f));
            }
        });
    }
}

/// The traits rayon call sites import via `use rayon::prelude::*`.
pub mod prelude {
    use super::{ParIter, ParIterMut, ParVec};

    /// `.par_iter()` on `&self`.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by reference.
        type Item: 'data;
        /// Iterate in parallel.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// `.par_iter_mut()` on `&mut self`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Element type yielded by mutable reference.
        type Item: 'data;
        /// Iterate mutably in parallel.
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
    }

    impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for [T] {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { items: self }
        }
    }

    impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { items: self }
        }
    }

    /// `.into_par_iter()` by value over any `IntoIterator`.
    pub trait IntoParallelIterator {
        /// Element type yielded by value.
        type Item: Send;
        /// Convert into a parallel iterator.
        fn into_par_iter(self) -> ParVec<Self::Item>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I
    where
        I::Item: Send,
    {
        type Item = I::Item;
        fn into_par_iter(self) -> ParVec<I::Item> {
            ParVec {
                items: self.into_iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let total: i32 = (1..=4).into_par_iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn large_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let sq: Vec<u64> = v.par_iter().map(|x| x * x).collect();
        let expect: Vec<u64> = v.iter().map(|x| x * x).collect();
        assert_eq!(sq, expect);
    }

    #[test]
    fn large_into_par_iter_map_preserves_order() {
        let out: Vec<String> = (0..5_000u32)
            .into_par_iter()
            .map(|x| format!("{x}"))
            .collect();
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("{i}"));
        }
    }

    #[test]
    fn float_sums_are_bit_identical_to_sequential() {
        let v: Vec<f64> = (0..4_321).map(|i| (i as f64).sin() * 1e-3).collect();
        let par: f64 = v.par_iter().map(|x| x * 1.000001).sum();
        let seq: f64 = v.iter().map(|x| x * 1.000001).sum();
        assert_eq!(par.to_bits(), seq.to_bits());
    }

    #[test]
    fn par_iter_mut_large_matches_sequential() {
        let mut a: Vec<u64> = (0..9_999).collect();
        let mut b = a.clone();
        a.par_iter_mut().for_each(|x| *x = x.wrapping_mul(31) ^ 7);
        b.iter_mut().for_each(|x| *x = x.wrapping_mul(31) ^ 7);
        assert_eq!(a, b);
    }

    #[test]
    fn for_each_visits_every_element() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let v: Vec<u64> = (1..=1_000).collect();
        let total = AtomicU64::new(0);
        v.par_iter().for_each(|x| {
            total.fetch_add(*x, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn actually_uses_multiple_threads_on_blocking_work() {
        // With >1 core, parallel 30 ms sleeps finish well under the
        // sequential total.
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 2 {
            return;
        }
        let items: Vec<u32> = (0..super::max_threads() as u32 * 2).collect();
        let start = std::time::Instant::now();
        let _: Vec<()> = items
            .par_iter()
            .map(|_| std::thread::sleep(std::time::Duration::from_millis(30)))
            .collect();
        let elapsed = start.elapsed();
        let sequential = std::time::Duration::from_millis(30) * items.len() as u32;
        assert!(
            elapsed < sequential * 3 / 4,
            "no speedup: {elapsed:?} vs sequential {sequential:?}"
        );
    }
}
