//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build container has no access to a crate registry, so the workspace
//! vendors the small API subset it uses: `Mutex` and `RwLock` with
//! `const`-constructible, non-poisoning guards. Lock poisoning is deliberately
//! ignored (parking_lot has no poisoning), so a panicked writer does not wedge
//! every later reader.

#![warn(missing_docs)]

use std::sync::{
    MutexGuard, RwLockReadGuard, RwLockWriteGuard, {Mutex as StdMutex, RwLock as StdRwLock},
};

/// A mutual-exclusion lock with the `parking_lot` API shape: `lock()` returns
/// the guard directly, never a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `static` items).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with the `parking_lot` API shape: `read()`/`write()`
/// return guards directly, never poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock (usable in `static` items).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static GLOBAL: RwLock<Vec<u32>> = RwLock::new(Vec::new());

    #[test]
    fn rwlock_works_in_statics() {
        GLOBAL.write().push(7);
        assert_eq!(*GLOBAL.read(), vec![7]);
    }

    #[test]
    fn mutex_locks_and_releases() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }
}
