//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Build recursive values: `recurse` receives a strategy for the previous
    /// level and returns one producing the next. `depth` bounds nesting;
    /// `_desired_size`/`_expected_branch_size` are accepted for proptest API
    /// compatibility but unused by this shim.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let branch = recurse(level).boxed();
            // Two branch entries to one base biases toward actually recursing.
            level = Union::new(vec![base.clone(), branch.clone(), branch]).boxed();
        }
        level
    }

    /// Type-erase into a clonable [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Always produce a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter mapping generated values through a function.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among several strategies for the same value type
/// (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of options.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u128) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let offset = rng.below(span);
                    ((self.start as i128).wrapping_add(offset as i128)) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty integer range strategy");
                    let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                    let offset = rng.below(span);
                    ((start as i128).wrapping_add(offset as i128)) as $ty
                }
            }
        )+
    };
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty f64 range strategy");
        start + rng.unit_f64() * (end - start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-20i128..=20).generate(&mut rng);
            assert!((-20..=20).contains(&w));
            let f = (0.5f64..50.0).generate(&mut rng);
            assert!((0.5..50.0).contains(&f));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = rng();
        let even = (1u64..100).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn union_picks_every_option() {
        let mut rng = rng();
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = rng();
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = rng();
        let (a, b) = ((0u8..4), (10i32..20)).generate(&mut rng);
        assert!(a < 4);
        assert!((10..20).contains(&b));
    }
}
