//! Glob-import surface mirroring `proptest::prelude::*`.

pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// Namespace mirror so `prop::collection::vec(...)` resolves after a glob
/// import of the prelude.
pub mod prop {
    pub use crate::collection;
}
