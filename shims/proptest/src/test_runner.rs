//! Deterministic test runner configuration and RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Subset of proptest's config: only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// RNG handed to strategies; seeded from the test name so every run of a
/// given property sees the same input sequence.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0, "below() requires a nonzero bound");
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_name() {
        let mut a = TestRng::deterministic("prop_x");
        let mut b = TestRng::deterministic("prop_x");
        let mut c = TestRng::deterministic("prop_y");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::deterministic("bound");
        for _ in 0..200 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::deterministic("unit");
        for _ in 0..200 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
