//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for a collection strategy, inclusive on both ends.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u128 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_within_bounds() {
        let mut rng = TestRng::deterministic("vec-len");
        let s = vec(0u8..5, 1..10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn fixed_size_vec() {
        let mut rng = TestRng::deterministic("vec-fixed");
        let s = vec(0u64..3, 4usize);
        assert_eq!(s.generate(&mut rng).len(), 4);
    }
}
