//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use — the
//! [`proptest!`] macro, range/tuple/`Just`/`prop_oneof!` strategies,
//! `prop_map`, `prop_recursive`, `prop::collection::vec`, and
//! `ProptestConfig::with_cases` — as a deterministic random-input test runner.
//! Failing inputs are reported via the panic message; there is **no
//! shrinking**, the main quality-of-life loss versus upstream proptest. Seeds
//! derive from the test name, so runs are reproducible without a registry or
//! a `proptest-regressions` file.

#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `true` and `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy, as in upstream proptest.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` (attributes pass through) that runs `body` over
/// `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Choose uniformly among the listed strategies (all yielding the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Assert inside a property body (panics with the failing case; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
