//! The §6 word-LM case study (paper Table 5): step-by-step parallelization
//! of a frontier word LM — algorithmic optimization, cache-aware modeling,
//! data parallelism, layer parallelism, and embedding sharding.
//!
//! ```sh
//! cargo run --release --example parallelism_case_study
//! ```

use frontier::prelude::*;

fn main() {
    let accel = Accelerator::v100_like();
    let comm = CommConfig::default();
    let study = word_lm_case_study(&accel, &comm);

    println!("Word LM at the frontier (LSTM with projection, paper §6)");
    println!(
        "  model: v={} h={} proj={:?}  ->  {:.2e} parameters",
        study.config.vocab, study.config.hidden, study.config.projection, study.params
    );
    println!("  dataset: {:.1e} words\n", study.dataset_words);

    println!(
        "{:<34} {:>6} {:>9} {:>10} {:>12} {:>8}",
        "optimization stage", "accels", "batch", "mem (GB)", "days/epoch", "util"
    );
    for row in &study.rows {
        println!(
            "{:<34} {:>6} {:>9} {:>10.1} {:>12.1} {:>7.1}%",
            row.stage,
            row.accelerators,
            row.global_batch,
            row.mem_per_accel_gb,
            row.days_per_epoch,
            100.0 * row.flop_utilization,
        );
        if row.stage_footprints_gb.len() > 1 {
            let parts: Vec<String> = row
                .stage_footprints_gb
                .iter()
                .map(|g| format!("{g:.0}"))
                .collect();
            println!(
                "{:<34} per-stage footprints: {{{}}} GB",
                "",
                parts.join(", ")
            );
        }
    }

    println!("\nThe Figure 12 sweep — data-parallel scaling of the cache-aware step:");
    let aware = &study.rows[1];
    let worker = WorkerStep {
        compute_seconds: aware.days_per_epoch * 86_400.0
            / (study.dataset_words / (128.0 * study.config.seq_len as f64)),
        alg_flops: study.params * 0.0, // recomputed below for display only
        gradient_bytes: 4.0 * study.params,
        samples_per_step: 128.0 * study.config.seq_len as f64,
    };
    let counts: Vec<u64> = (0..=14).map(|i| 1u64 << i).collect();
    println!("{:>8} {:>14} {:>12}", "workers", "days/epoch", "comm (s)");
    for p in data_parallel_sweep(&worker, &counts, study.dataset_words, &accel, &comm) {
        println!(
            "{:>8} {:>14.1} {:>12.2}",
            p.workers, p.epoch_days, p.comm_seconds
        );
    }
    println!("\nEpoch time saturates as ring-allreduce overhead grows with the fleet —");
    println!("the paper's motivation for communication-efficient training research.");
}
