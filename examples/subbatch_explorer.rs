//! Subbatch-size exploration (paper §5.2.1, Figure 11): how operational
//! intensity, per-sample step time, and memory footprint trade off as the
//! per-accelerator batch grows.
//!
//! ```sh
//! cargo run --release --example subbatch_explorer [domain]
//! ```
//! where `domain` is one of `wordlm`, `charlm`, `nmt`, `speech`, `resnet`
//! (default `wordlm`).

use frontier::prelude::*;

fn main() {
    let key = std::env::args().nth(1).unwrap_or_else(|| "wordlm".into());
    let domain = Domain::ALL
        .into_iter()
        .find(|d| d.key() == key)
        .unwrap_or_else(|| {
            eprintln!("unknown domain `{key}`; use wordlm|charlm|nmt|speech|resnet");
            std::process::exit(2);
        });

    let accel = Accelerator::v100_like();
    let projection = scaling_for(domain).project();
    let cfg = ModelConfig::default_for(domain)
        .with_target_params(projection.target_params.round() as u64);
    println!(
        "{} at frontier scale ({:.2e} params) on {}\n",
        domain.label(),
        cfg.param_formula() as f64,
        accel.name
    );

    let batches: Vec<u64> = (0..=16).map(|i| 1u64 << i).collect();
    let r = subbatch_analysis(&cfg, &batches, &accel, false);

    println!(
        "{:>8} {:>14} {:>16} {:>14}",
        "batch", "FLOP/B", "step/sample (s)", "note"
    );
    for p in &r.points {
        let mut note = String::new();
        if let Some(ridge) = r.ridge_match {
            if (p.batch as f64) >= ridge && (p.batch as f64) < 2.0 * ridge {
                note = "≈ ridge-point match".into();
            }
        }
        if p.batch == r.chosen {
            note = "← chosen (min time/sample)".into();
        } else if p.batch == r.saturation {
            note = "intensity saturated".into();
        }
        println!(
            "{:>8} {:>14.1} {:>16.5} {:>14}",
            p.batch, p.op_intensity, p.sec_per_sample, note
        );
    }

    println!(
        "\naccelerator ridge point: {:.1} FLOP/B (achievable)",
        accel.achievable_ridge_point()
    );
    println!("graph intensity limit:   {:.1} FLOP/B", r.intensity_limit);
    match r.ridge_match {
        Some(b) => println!(
            "ridge-matched at b ≈ {b:.0}; chosen b = {} (≈{:.1}×)",
            r.chosen,
            r.chosen as f64 / b
        ),
        None => println!(
            "compute-bound at every subbatch (CNN-like regime); chosen b = {}",
            r.chosen
        ),
    }
}
