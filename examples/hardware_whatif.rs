//! Hardware what-if analysis (paper §6.2.3): which accelerator resource
//! actually helps the frontier word LM — and how far the paper's proposed
//! mitigations (low precision, gradient compression, better model
//! parallelism) close the gap.
//!
//! ```sh
//! cargo run --release --example hardware_whatif
//! ```

use frontier::analysis::lstm_p_config;
use frontier::prelude::*;

fn main() {
    // The §6 case-study model: LSTM-p word LM, subbatch 128.
    let model = ModelConfig::WordLm(lstm_p_config()).build_training();
    let batch = 128;
    println!(
        "LSTM-p word LM: {:.2e} params, training-step graph of {} ops\n",
        model.param_count() as f64,
        model.graph.ops().len()
    );

    // --- 1. Single-axis hardware upgrades -------------------------------
    println!("hardware design space (cache-aware per-op roofline):");
    println!(
        "{:<14} {:>10} {:>8} {:>9} {:>11} {:>14}",
        "variant", "step (s)", "util", "speedup", "min shards", "swap slowdown"
    );
    for p in hardware_sensitivity(&model, batch, &hardware_variants()) {
        println!(
            "{:<14} {:>10.2} {:>7.1}% {:>8.2}x {:>11} {:>13.2}x",
            p.label,
            p.step_seconds,
            100.0 * p.flop_utilization,
            p.speedup,
            p.min_shards,
            p.swap_slowdown
        );
    }
    println!("\n→ capacity and cache upgrades are what an RNN needs (shards, swap);");
    println!("  compute-centric upgrades mostly help CNNs — the paper's conclusion.\n");

    // --- 2. Low-precision training ---------------------------------------
    let bindings = model.bindings_with_batch(batch);
    let fp32 = footprint(&model.graph, &bindings, Scheduler::Best).unwrap();
    let mut half = model.graph.clone();
    cast_float_precision(&mut half, DType::F16);
    let fp16 = footprint(&half, &bindings, Scheduler::Best).unwrap();
    println!(
        "precision: f32 footprint {:.1} GB -> f16 {:.1} GB ({:.2}x reduction; paper: 1.5-10x band)",
        fp32.peak_bytes as f64 / 1e9,
        fp16.peak_bytes as f64 / 1e9,
        fp32.peak_bytes as f64 / fp16.peak_bytes as f64
    );

    // --- 3. Optimizer state pressure -------------------------------------
    let mut adam = ModelConfig::WordLm(lstm_p_config()).build();
    let step = cgraph::build_training_step(&mut adam.graph, adam.loss).unwrap();
    apply_optimizer(&mut adam.graph, &step, Optimizer::Adam).unwrap();
    let adam_fp = footprint(&adam.graph, &bindings, Scheduler::Best).unwrap();
    println!(
        "optimizer: SGD persistent {:.1} GB -> Adam {:.1} GB (state doubles weight memory)\n",
        fp32.persistent_bytes as f64 / 1e9,
        adam_fp.persistent_bytes as f64 / 1e9
    );

    // --- 4. Gradient compression at scale --------------------------------
    let accel = Accelerator::v100_like();
    let comm = CommConfig::default();
    let worker = WorkerStep {
        compute_seconds: 11.5, // cache-aware step
        alg_flops: 1.16e14,
        gradient_bytes: 4.0 * model.param_count() as f64,
        samples_per_step: model.samples_per_step(batch),
    };
    println!("gradient compression at 2048 data-parallel workers (77B-word epoch):");
    println!("(the ring is hop-latency bound at this fleet size, so payload");
    println!(" compression saves little here — its wins are at moderate fleets)");
    println!("{:<22} {:>12} {:>12}", "scheme", "comm (s)", "days/epoch");
    for (name, scheme) in [
        ("f32 (baseline)", GradCompression::None),
        ("f16", GradCompression::Fp16),
        ("int8 (QSGD)", GradCompression::Int8),
        ("ternary (TernGrad)", GradCompression::Ternary),
        ("top-1% (DGC)", GradCompression::TopK { ratio: 100 }),
    ] {
        let p = data_parallel_point_compressed(&worker, 2048, 77e9, &accel, &comm, scheme);
        println!(
            "{:<22} {:>12.2} {:>12.2}",
            name, p.comm_seconds, p.epoch_days
        );
    }

    // --- 5. Tensor vs layer parallelism ----------------------------------
    println!("\nmodel parallelism at 4 ways (fitting the 32 GB accelerator):");
    let tp = tensor_parallel_plan(
        11.5,
        2.0 * 4.0 * model.param_count() as f64,
        &TensorParallelConfig {
            ways: 4,
            sync_points: 2 * 2 * 80,
            bytes_per_sync: 128.0 * 8192.0 * 4.0,
        },
        &comm,
    );
    println!(
        "tensor parallel: step {:.2} s, efficiency {:.0}% (layer parallel: ~40%)",
        tp.step_seconds,
        100.0 * tp.efficiency
    );
    println!("→ comparable to layer parallelism on this step: the 320 per-timestep");
    println!("  activation syncs are hop-latency bound. Recovering the lost ~23%");
    println!("  needs cheaper synchronization, not just a different split — the");
    println!("  framework innovation the paper calls for.");
}
