//! Quickstart: build one training workload, measure its algorithmic
//! requirements, and time a step on the paper's target accelerator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use frontier::prelude::*;

fn main() {
    // 1. A 2-layer LSTM word language model with ~50M parameters — the
    //    paper's Figure 2 architecture, scaled by hidden width.
    let config = ModelConfig::default_for(Domain::WordLm).with_target_params(50_000_000);
    let model = config.build_training(); // forward + backward + SGD update
    println!("model: {}", model.graph.name);
    println!("  ops in training-step graph: {}", model.graph.ops().len());
    println!(
        "  trainable parameters:       {:.2e}",
        model.param_count() as f64
    );

    // 2. Algorithmic requirements at subbatch 128 (paper §2.1 definitions).
    let subbatch = 128;
    let stats = model
        .graph
        .stats()
        .eval(&model.bindings_with_batch(subbatch))
        .expect("all symbols bound");
    println!("\nper training step at subbatch {subbatch}:");
    println!(
        "  algorithmic FLOPs:   {:.3e}  (fwd {:.2e} + bwd {:.2e})",
        stats.flops, stats.flops_forward, stats.flops_backward
    );
    println!("  algorithmic bytes:   {:.3e}", stats.bytes);
    println!(
        "  operational intensity: {:.1} FLOP/B",
        stats.operational_intensity()
    );
    println!("  training-data IO:    {:.3e} bytes", stats.io);

    // 2b. The same costs, symbolically (the Catamount-style view): exact
    //     polynomials in the free batch symbol `b`.
    let sym = model.graph.stats();
    println!("\nsymbolic FLOPs per step:  {}", sym.flops);
    println!("symbolic bytes per step:  {}", sym.bytes);

    // 3. Minimal memory footprint via topological traversal (§2.1).
    let fp = footprint(
        &model.graph,
        &model.bindings_with_batch(subbatch),
        Scheduler::Best,
    )
    .expect("bound");
    println!(
        "\nminimal memory footprint: {:.2} GB (weights: {:.2} GB persistent)",
        fp.peak_bytes as f64 / 1e9,
        fp.persistent_bytes as f64 / 1e9
    );

    // 4. Roofline step time on the Table 4 accelerator.
    let accel = Accelerator::v100_like();
    let t = roofline_time(stats.flops, stats.bytes, &accel);
    println!("\non {}:", accel.name);
    println!("  step time: {:.3} s ({:?}-bound)", t.seconds, t.bound);
    println!(
        "  algorithmic FLOP utilization: {:.0}%",
        100.0 * t.flop_utilization
    );
}
