use cgraph::{footprint_with_sizes, InPlacePolicy, Scheduler};
use modelzoo::Domain;
use std::time::Instant;

fn main() {
    let configs = modelzoo::sweep_configs(Domain::CharLm, 1_000_000, 1_000_000_000, 9);
    let cfg0 = &configs[0];
    let t = Instant::now();
    let fwd = cfg0.build_family();
    println!(
        "build_family (fwd): {:.1} ms ({} ops)",
        t.elapsed().as_secs_f64() * 1e3,
        fwd.graph.ops().len()
    );
    let t = Instant::now();
    let fam = cfg0.build_family_training();
    println!(
        "build_family_training: {:.1} ms ({} ops)",
        t.elapsed().as_secs_f64() * 1e3,
        fam.graph.ops().len()
    );
    let widths = cfg0.family_widths();
    let bindings = {
        let mut b = fam.bindings_with_batch(cfg0.domain().default_subbatch());
        b.extend(&widths);
        b
    };
    // sizes
    let t = Instant::now();
    let sizes: Vec<u64> = fam
        .graph
        .tensors()
        .iter()
        .map(|tn| tn.bytes_u64(&bindings).unwrap())
        .collect();
    println!(
        "sizes eval (tree, per-tensor): {:.1} ms",
        t.elapsed().as_secs_f64() * 1e3
    );
    let t = Instant::now();
    let fp = footprint_with_sizes(&fam.graph, &sizes, Scheduler::Best, InPlacePolicy::Never);
    println!(
        "footprint_with_sizes: {:.1} ms (peak {})",
        t.elapsed().as_secs_f64() * 1e3,
        fp.peak_bytes
    );
    let t = Instant::now();
    let stats = fam.graph.stats();
    let inst = cgraph::GraphStats {
        flops: stats.flops.bind_all(&widths),
        flops_forward: stats.flops_forward.bind_all(&widths),
        flops_backward: stats.flops_backward.bind_all(&widths),
        flops_update: stats.flops_update.bind_all(&widths),
        bytes: stats.bytes.bind_all(&widths),
        bytes_read: stats.bytes_read.bind_all(&widths),
        bytes_written: stats.bytes_written.bind_all(&widths),
        params: stats.params.bind_all(&widths),
        io: stats.io.bind_all(&widths),
    };
    println!("stats+bind: {:.1} ms", t.elapsed().as_secs_f64() * 1e3);
    let t2 = Instant::now();
    let _ = inst.eval(&bindings).unwrap();
    println!("eval: {:.3} ms", t2.elapsed().as_secs_f64() * 1e3);
}
