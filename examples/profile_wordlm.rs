//! Per-op profiling of the Table 2 word-LM training step.
//!
//! Builds the paper's word-language-model workload, attributes algorithmic
//! FLOPs and bytes to every op in its training graph (TFprof-style), and
//! prints top-K and grouped breakdowns. Set `FRONTIER_TRACE=/tmp/wordlm.jsonl`
//! to also export the span trace as JSONL plus a Chrome-trace JSON array
//! viewable in `chrome://tracing`.
//!
//! ```sh
//! cargo run --release -p frontier --example profile_wordlm
//! ```

use frontier::modelzoo::{Domain, ModelConfig};
use frontier::obs;

fn main() {
    let domain = Domain::WordLm;
    let cfg = ModelConfig::default_for(domain);
    let subbatch = domain.default_subbatch();

    let model = obs::time("modelzoo.build_training", || cfg.build_training());
    let bindings = model.bindings_with_batch(subbatch);
    let profile = model.graph.profile(&bindings).expect("all symbols bound");
    profile
        .check_consistency(1e-6)
        .expect("per-op costs sum to graph totals");

    println!(
        "word LM training step: {} ops, subbatch {subbatch}, {:.3e} FLOPs, {:.3e} bytes\n",
        profile.ops.len(),
        profile.totals.flops,
        profile.totals.bytes
    );
    println!("{}", profile.render_top(12));
    println!(
        "{}",
        profile.render_groups("by op kind", &profile.by_kind())
    );
    println!("{}", profile.render_groups("by phase", &profile.by_phase()));
    // Every dot-free op name is its own "layer"; keep the heavy hitters.
    let layers = profile.by_layer();
    let top_layers = &layers[..layers.len().min(12)];
    println!("{}", profile.render_groups("by layer (top 12)", top_layers));

    if let Some(path) = obs::trace_path_from_env() {
        let rec = obs::recorder();
        rec.write_jsonl(&path).expect("write trace");
        let chrome = format!("{path}.chrome.json");
        rec.write_chrome_trace(&chrome).expect("write chrome trace");
        eprintln!("trace: {} events -> {path} (+ {chrome})", rec.len());
    }
}
