//! Frontier projection across all five domains: how much data, how many
//! parameters, and how long a training epoch takes to reach the accuracy
//! targets of paper Tables 1 and 3.
//!
//! ```sh
//! cargo run --release --example frontier_projection
//! ```

use frontier::prelude::*;

fn main() {
    println!("Projecting the accuracy frontier (paper §3, §5)\n");
    println!(
        "{:<32} {:>8} {:>8} {:>12} {:>10} {:>10} {:>12}",
        "domain", "data x", "model x", "params", "step (s)", "mem (GB)", "epoch (days)"
    );
    for domain in Domain::ALL {
        let report = Study::new(domain).frontier_report();
        let p = &report.projection;
        let r = &report.requirements;
        println!(
            "{:<32} {:>8.0} {:>8.1} {:>12.3e} {:>10.2} {:>10.1} {:>12.1}",
            domain.label(),
            p.data_scale,
            p.model_scale,
            r.built_params,
            r.step.seconds,
            r.min_mem_gb,
            r.epoch_days,
        );
    }

    println!("\nReading the table:");
    println!("  * language domains (word/char LM, NMT) need 100-1000x more data and");
    println!("    epochs measured in decades-to-millennia on a single accelerator;");
    println!("  * speech and image classification are within reach (~3 months/epoch);");
    println!("  * every frontier model exceeds or presses against the 32 GB accelerator");
    println!("    memory, forcing model parallelism or memory capacity growth (paper S5.1).");
}
