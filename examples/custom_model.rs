//! Building a custom architecture against the raw graph API — the workflow
//! for analyzing a model the zoo does not ship (here: a small Transformer-
//! style block, an architecture the paper's methodology extends to).
//!
//! ```sh
//! cargo run --release --example custom_model
//! ```

use frontier::prelude::*;

/// One pre-norm self-attention + MLP block over `[b, q, d]` activations,
/// unrolled at sequence length `q` with `heads = 1` for clarity.
fn transformer_block(
    g: &mut Graph,
    layer: usize,
    x: frontier::cgraph::TensorId, // [b·q, d]
    bq: Expr,
    d: u64,
) -> frontier::cgraph::TensorId {
    let de = Expr::from(d);
    let name = |s: &str| format!("l{layer}.{s}");

    // Q, K, V projections.
    let wq = g.weight(name("wq"), [de.clone(), de.clone()]).unwrap();
    let wk = g.weight(name("wk"), [de.clone(), de.clone()]).unwrap();
    let wv = g.weight(name("wv"), [de.clone(), de.clone()]).unwrap();
    let q = g.matmul(&name("q"), x, wq, false, false).unwrap();
    let k = g.matmul(&name("k"), x, wk, false, false).unwrap();
    let v = g.matmul(&name("v"), x, wv, false, false).unwrap();

    // Attention scores over the flattened sequence (single head):
    // scores[bq, bq'] = q·kᵀ — the quadratic-in-sequence-length term that
    // distinguishes attention from the paper's recurrent models.
    let scores = g.matmul(&name("scores"), q, k, false, true).unwrap();
    let probs = g.softmax(&name("softmax"), scores).unwrap();
    let ctx = g.matmul(&name("ctx"), probs, v, false, false).unwrap();

    // Output projection + residual.
    let wo = g.weight(name("wo"), [de.clone(), de.clone()]).unwrap();
    let proj = g.matmul(&name("proj"), ctx, wo, false, false).unwrap();
    let attn_out = g
        .binary(&name("residual1"), PointwiseFn::Add, proj, x)
        .unwrap();

    // 4×-wide MLP.
    let w1 = g
        .weight(name("w1"), [de.clone(), Expr::from(4 * d)])
        .unwrap();
    let w2 = g.weight(name("w2"), [Expr::from(4 * d), de]).unwrap();
    let h = g.matmul(&name("mlp1"), attn_out, w1, false, false).unwrap();
    let h = g.unary(&name("gelu"), PointwiseFn::Tanh, h).unwrap();
    let h = g.matmul(&name("mlp2"), h, w2, false, false).unwrap();
    let _ = bq;
    g.binary(&name("residual2"), PointwiseFn::Add, h, attn_out)
        .unwrap()
}

fn main() {
    let (d, q, vocab, layers) = (512u64, 128u64, 32_000u64, 4usize);
    let mut g = Graph::new("tiny-transformer");
    let b = Expr::sym("b");
    let bq = b.clone() * Expr::from(q);

    let tokens = g.input("tokens", [bq.clone()], DType::I32).unwrap();
    let table = g
        .weight("embedding", [Expr::from(vocab), Expr::from(d)])
        .unwrap();
    let mut x = g.gather("embed", table, tokens).unwrap();
    x = g.reshape("flat", x, [bq.clone(), Expr::from(d)]).unwrap();

    for layer in 0..layers {
        x = transformer_block(&mut g, layer, x, bq.clone(), d);
    }

    // Tied output projection + loss.
    let logits = g.matmul("logits", x, table, false, true).unwrap();
    let labels = g.input("labels", [bq], DType::I32).unwrap();
    let loss = g.cross_entropy("loss", logits, labels).unwrap();
    build_training_step(&mut g, loss).expect("differentiable");
    g.validate().expect("well-formed graph");

    println!(
        "custom graph `{}`: {} ops, {} tensors",
        g.name,
        g.ops().len(),
        g.tensors().len()
    );
    let params = g.params().eval(&Bindings::new()).unwrap();
    println!("parameters: {params:.3e}");

    // Characterize across subbatch sizes, exactly like the paper's models.
    let accel = Accelerator::v100_like();
    println!(
        "\n{:>6} {:>12} {:>12} {:>10} {:>10}",
        "batch", "TFLOPs/step", "GB/step", "FLOP/B", "step (s)"
    );
    for batch in [1u64, 8, 32, 128] {
        let bindings = Bindings::new().with("b", batch as f64);
        let n = g.stats().eval(&bindings).unwrap();
        let t = roofline_time(n.flops, n.bytes, &accel);
        println!(
            "{:>6} {:>12.3} {:>12.2} {:>10.1} {:>10.4}",
            batch,
            n.flops / 1e12,
            n.bytes / 1e9,
            n.operational_intensity(),
            t.seconds
        );
    }

    let fp = footprint(&g, &Bindings::new().with("b", 32.0), Scheduler::Best).unwrap();
    println!("\nfootprint at b=32: {:.2} GB", fp.peak_bytes as f64 / 1e9);
    println!("\nNote the attention scores grow with (b·q)², so operational intensity");
    println!("rises faster with batch than the paper's recurrent models — the same");
    println!("methodology, applied to a post-paper architecture.");
}
