//! End-to-end tests of the `/v1/infer/*` serving endpoints: characterize,
//! sweep, and SLO plan search over HTTP. Checks the memoization contract
//! (repeat queries are byte-identical cache hits), bit-identity between the
//! served numbers and the library's brute-force path, a hand-checked golden
//! SLO plan, and the hostile-input contract (structured 400s, zero 5xx).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use proptest::prelude::*;
use serve::json::Json;
use serve::{ServeConfig, Server};

fn test_server() -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_entries: 64,
        queue_depth: 64,
        deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Plain-text HTTP GET; returns (status, x-cache header, body).
fn get(addr: SocketAddr, path: &str) -> (u16, Option<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let cache = head
        .lines()
        .find_map(|l| l.strip_prefix("x-cache: ").map(str::to_string));
    (status, cache, body.to_string())
}

/// A small served shape (cheap family build) as query parameters.
const SMALL_SHAPE: &str = "heads=4&head_dim=16&layers=3&vocab=2000";

fn small_config() -> analysis::InferConfig {
    analysis::InferConfig {
        vocab: 2000,
        heads: 4,
        head_dim: 16,
        layers: 3,
        ff_mult: 4,
        tied_embedding: true,
    }
}

#[test]
fn characterize_matches_brute_force_and_caches() {
    let server = test_server();
    let addr = server.local_addr();
    let path = format!("/v1/infer/characterize?{SMALL_SHAPE}&batch=8&prompt=16&context=96");
    let (s1, c1, b1) = get(addr, &path);
    let (s2, c2, b2) = get(addr, &path);
    assert_eq!((s1, s2), (200, 200), "{b1}");
    assert_eq!(c1.as_deref(), Some("miss"));
    assert_eq!(c2.as_deref(), Some("hit"));
    assert_eq!(b1, b2, "cached body must be byte-identical");

    // The served numbers equal the brute-force concrete build, bit for bit.
    let expect = analysis::characterize_infer(&small_config(), 8, 16, 96);
    let doc = Json::parse(&b1).expect("JSON");
    for (json_path, value) in [
        ("point.params", expect.params),
        ("point.weight_bytes", expect.weight_bytes),
        ("point.kv_cache_bytes", expect.kv_cache_bytes),
        ("point.serving_bytes", expect.serving_bytes()),
        ("point.prefill.flops", expect.prefill_flops),
        ("point.prefill.bytes", expect.prefill_bytes),
        ("point.prefill.op_intensity", expect.prefill_intensity),
        ("point.decode.flops", expect.decode_flops),
        ("point.decode.bytes", expect.decode_bytes),
        ("point.decode.op_intensity", expect.decode_intensity),
    ] {
        assert_eq!(
            doc.path(json_path).and_then(Json::as_f64),
            Some(value),
            "{json_path}: {b1}"
        );
    }
    // Decode intensity is the memory-bound regime: far below prefill's.
    assert!(expect.decode_intensity < expect.prefill_intensity / 2.0);
}

#[test]
fn sweep_grid_matches_engine_and_caches() {
    let server = test_server();
    let addr = server.local_addr();
    let path = format!("/v1/infer/sweep?{SMALL_SHAPE}&prompt=16&batch=1,4,16&context=64,128");
    let (s1, c1, b1) = get(addr, &path);
    let (s2, c2, b2) = get(addr, &path);
    assert_eq!((s1, s2), (200, 200), "{b1}");
    assert_eq!(c1.as_deref(), Some("miss"));
    assert_eq!(c2.as_deref(), Some("hit"));
    assert_eq!(b1, b2, "cached grid must be byte-identical");

    let doc = Json::parse(&b1).expect("JSON");
    let points = match doc.get("points") {
        Some(Json::Arr(points)) => points,
        other => panic!("points missing or not an array: {other:?}"),
    };
    assert_eq!(points.len(), 6, "3 batches × 2 contexts");
    // Row order is the request's batch-major grid, and every row is
    // bit-identical to the brute-force characterization of that cell.
    let cfg = small_config();
    let grid = [(1, 64), (1, 128), (4, 64), (4, 128), (16, 64), (16, 128)];
    for (served, &(b, ctx)) in points.iter().zip(&grid) {
        let expect = analysis::characterize_infer(&cfg, b, 16, ctx);
        assert_eq!(served.get("batch").and_then(Json::as_f64), Some(b as f64));
        assert_eq!(
            served.get("context").and_then(Json::as_f64),
            Some(ctx as f64)
        );
        assert_eq!(
            served.get("kv_cache_bytes").and_then(Json::as_f64),
            Some(expect.kv_cache_bytes)
        );
        assert_eq!(
            served.path("decode.flops").and_then(Json::as_f64),
            Some(expect.decode_flops)
        );
    }
}

#[test]
fn plan_reproduces_the_golden_slo_plan() {
    let server = test_server();
    let addr = server.local_addr();
    // The golden request: default ~100M model, 512-token prompts, 1024-token
    // context, 50 ms/token p99, 500 ms TTFT, 20k tokens/s, V100s only.
    let path = "/v1/infer/plan?accel=v100&tpot_ms=50&ttft_ms=500&tokens_per_s=20000&accels=64";
    let (s1, c1, b1) = get(addr, path);
    let (s2, c2, b2) = get(addr, path);
    assert_eq!((s1, s2), (200, 200), "{b1}");
    assert_eq!(c1.as_deref(), Some("miss"));
    assert_eq!(c2.as_deref(), Some("hit"));
    assert_eq!(b1, b2, "cached plan must be byte-identical");

    let doc = Json::parse(&b1).expect("JSON");
    assert!(
        matches!(doc.get("feasible"), Some(Json::Bool(true))),
        "{b1}"
    );

    // The served argmin equals the library's own search for the same
    // request, field for field.
    let req = analysis::InferPlanRequest {
        config: analysis::InferConfig::default(),
        accels: vec![(
            "v100".into(),
            roofline::Accelerator::by_key("v100").expect("v100"),
        )],
        batches: vec![1, 4, 16, 64, 256],
        prompt: 512,
        context: 1024,
        slo: parsim::SloTarget {
            p99_token_seconds: 0.050,
            ttft_seconds: 0.500,
        },
        target_tokens_per_s: 20_000.0,
        max_total_accelerators: 64,
    };
    let expect = analysis::infer_plan(&req).best.expect("library feasible");
    assert_eq!(
        doc.path("best.accel").and_then(Json::as_str),
        Some(expect.accel_key.as_str())
    );
    for (json_path, value) in [
        ("best.batch", expect.batch as f64),
        ("best.replicas", expect.replicas as f64),
        ("best.total_accelerators", expect.total_accelerators as f64),
        ("best.tokens_per_s", expect.tokens_per_s),
        ("best.p99_token_seconds", expect.p99_token_seconds),
        ("best.ttft_seconds", expect.ttft_seconds),
        ("best.mem_per_accel_gb", expect.mem_per_accel_gb),
    ] {
        assert_eq!(
            doc.path(json_path).and_then(Json::as_f64),
            Some(value),
            "{json_path}: {b1}"
        );
    }

    // Hand-check the golden plan. The argmin meets every stated constraint…
    assert!(expect.p99_token_seconds <= 0.050);
    assert!(expect.ttft_seconds <= 0.500);
    assert!(expect.tokens_per_s >= 20_000.0);
    // …the replica count is minimal on the pow2 ladder (half as many
    // replicas of the same profile would miss the demand)…
    let per_replica = expect.tokens_per_s / expect.replicas as f64;
    assert!(expect.replicas == 1 || (expect.replicas / 2) as f64 * per_replica < 20_000.0);
    // …and no feasible point uses fewer accelerators.
    let feasible = analysis::infer_plan(&req).feasible;
    assert!(feasible
        .iter()
        .all(|p| p.total_accelerators >= expect.total_accelerators));
}

#[test]
fn plan_search_stats_are_consistent_and_infeasible_is_clean() {
    let server = test_server();
    let addr = server.local_addr();
    // An impossible token SLO: nothing survives the latency floor.
    let (status, _, body) = get(
        addr,
        &format!("/v1/infer/plan?{SMALL_SHAPE}&prompt=16&context=64&tpot_ms=0.000001"),
    );
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("JSON");
    assert!(matches!(doc.get("feasible"), Some(Json::Bool(false))));
    assert!(matches!(doc.get("best"), Some(Json::Null)));
    let considered = doc
        .path("stats.considered")
        .and_then(Json::as_f64)
        .expect("considered");
    let evaluated = doc
        .path("stats.evaluated")
        .and_then(Json::as_f64)
        .expect("evaluated");
    let pruned_latency = doc
        .path("stats.pruned_latency")
        .and_then(Json::as_f64)
        .expect("pruned_latency");
    assert!(evaluated <= considered);
    assert!(pruned_latency > 0.0, "{body}");
}

#[test]
fn hostile_infer_queries_get_structured_400s_and_never_5xx() {
    let server = test_server();
    let addr = server.local_addr();
    let rejects = [
        // Bad serving shapes.
        ("/v1/infer/characterize?batch=0", "batch_out_of_range"),
        ("/v1/infer/characterize?batch=999999", "batch_out_of_range"),
        ("/v1/infer/characterize?context=0", "context_out_of_range"),
        (
            "/v1/infer/characterize?context=99999999",
            "context_out_of_range",
        ),
        (
            "/v1/infer/characterize?prompt=2048&context=1024",
            "context_below_prompt",
        ),
        ("/v1/infer/characterize?heads=0", "shape_out_of_range"),
        ("/v1/infer/characterize?heads=1000", "shape_out_of_range"),
        ("/v1/infer/characterize?head_dim=0", "shape_out_of_range"),
        ("/v1/infer/characterize?layers=0", "shape_out_of_range"),
        ("/v1/infer/characterize?layers=100000", "shape_out_of_range"),
        ("/v1/infer/characterize?vocab=1", "shape_out_of_range"),
        ("/v1/infer/characterize?ff=0", "shape_out_of_range"),
        ("/v1/infer/characterize?tied=banana", "bad_parameter"),
        ("/v1/infer/characterize?batch=banana", "bad_parameter"),
        (
            "/v1/infer/characterize?batch=184467440737095516159999",
            "bad_parameter",
        ),
        ("/v1/infer/characterize?surprise=1", "unknown_parameter"),
        // Bad sweep grids.
        ("/v1/infer/sweep?batch=1,1", "bad_parameter"),
        ("/v1/infer/sweep?batch=0", "bad_parameter"),
        ("/v1/infer/sweep?batch=1,2,3,4,5,6,7,8,9", "grid_too_large"),
        (
            "/v1/infer/sweep?prompt=512&context=256",
            "context_below_prompt",
        ),
        ("/v1/infer/sweep?prompt=0", "context_out_of_range"),
        // Bad SLOs.
        ("/v1/infer/plan?tpot_ms=0", "slo_out_of_range"),
        ("/v1/infer/plan?tpot_ms=-5", "slo_out_of_range"),
        ("/v1/infer/plan?tpot_ms=nan", "slo_out_of_range"),
        ("/v1/infer/plan?ttft_ms=inf", "slo_out_of_range"),
        ("/v1/infer/plan?ttft_ms=99999999999", "slo_out_of_range"),
        ("/v1/infer/plan?tokens_per_s=0", "slo_out_of_range"),
        ("/v1/infer/plan?tokens_per_s=-1", "slo_out_of_range"),
        // Bad fleets and accelerators.
        ("/v1/infer/plan?accel=k80", "unknown_accelerator"),
        ("/v1/infer/plan?accel=v100,v100", "bad_parameter"),
        ("/v1/infer/plan?accel=", "unknown_accelerator"),
        ("/v1/infer/plan?accels=0", "accels_out_of_range"),
        ("/v1/infer/plan?accels=99999999999", "accels_out_of_range"),
        ("/v1/infer/plan?batch=0", "bad_parameter"),
        ("/v1/infer/plan?days=7", "unknown_parameter"),
    ];
    for (path, code) in rejects {
        let (status, _, body) = get(addr, path);
        assert_eq!(status, 400, "{path}: {body}");
        let doc = Json::parse(&body).unwrap_or_else(|e| panic!("{path}: bad JSON ({e}): {body}"));
        assert_eq!(
            doc.get("error").and_then(Json::as_str),
            Some(code),
            "{path}: {body}"
        );
    }
    // All structured 4xx, zero 5xx — and the server still answers.
    let (status, _, body) = get(
        addr,
        &format!("/v1/infer/characterize?{SMALL_SHAPE}&batch=1&prompt=8&context=16"),
    );
    assert_eq!(status, 200, "{body}");
    let (_, _, metrics) = get(addr, "/v1/metrics");
    let doc = Json::parse(&metrics).expect("metrics JSON");
    assert_eq!(
        doc.path("requests.status_5xx").and_then(Json::as_f64),
        Some(0.0),
        "hostile infer queries must never be internal errors: {metrics}"
    );
    assert_eq!(
        doc.path("requests.status_4xx").and_then(Json::as_f64),
        Some(rejects.len() as f64),
        "{metrics}"
    );
}

/// A pool of parameter values mixing valid, boundary, and hostile inputs.
fn arb_value() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u64..300_000).prop_map(|v| v.to_string()),
        Just("0".to_string()),
        Just("-1".to_string()),
        Just("nan".to_string()),
        Just("inf".to_string()),
        Just("banana".to_string()),
        Just("184467440737095516159999".to_string()),
        Just("1,2,4".to_string()),
        Just("".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized hostile queries against every `/v1/infer/*` endpoint are
    /// always structured 200s or 400s — never a 5xx, never a hang.
    #[test]
    fn randomized_infer_queries_never_500(
        endpoint in prop_oneof![
            Just("/v1/infer/characterize"),
            Just("/v1/infer/sweep"),
            Just("/v1/infer/plan"),
        ],
        key in prop_oneof![
            Just("batch"), Just("prompt"), Just("context"), Just("heads"),
            Just("head_dim"), Just("layers"), Just("vocab"), Just("ff"),
            Just("tied"), Just("tpot_ms"), Just("ttft_ms"),
            Just("tokens_per_s"), Just("accel"), Just("accels"), Just("junk"),
        ],
        value in arb_value(),
    ) {
        let server = test_server();
        let addr = server.local_addr();
        let path = format!("{endpoint}?{SMALL_SHAPE}&prompt=8&context=16&{key}={value}");
        let (status, _, body) = get(addr, &path);
        prop_assert!(
            status == 200 || status == 400,
            "{path} -> {status}: {body}"
        );
        let doc = Json::parse(&body);
        prop_assert!(doc.is_ok(), "{path}: unparsable body {body:?}");
        if status == 400 {
            prop_assert!(
                doc.expect("parsed").get("error").is_some(),
                "{path}: 400 without error code: {body}"
            );
        }
    }
}
