//! End-to-end tests of the epoll reactor front end: HTTP/1.1 keep-alive
//! connection reuse, pipelined requests on one connection, error-close
//! policy, version-default negotiation, reactor metrics exposure, and a
//! property check that incremental parsing over arbitrary splits agrees
//! with single-buffer parsing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use proptest::prelude::*;
use serve::http::{self, Feed};
use serve::json::Json;
use serve::{ServeConfig, Server};

/// Boot a server on an ephemeral port with small limits suited to tests.
fn test_server() -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_entries: 64,
        queue_depth: 64,
        deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

/// A keep-alive test client: one connection, `content-length`-framed reads.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// One framed response off a persistent connection.
struct Reply {
    status: u16,
    body: String,
    close: bool,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, request: &str) {
        self.stream
            .write_all(request.as_bytes())
            .expect("write request");
    }

    fn get(&mut self, path: &str) -> Reply {
        self.send(&format!("GET {path} HTTP/1.1\r\nhost: test\r\n\r\n"));
        self.read_reply()
    }

    fn read_reply(&mut self) -> Reply {
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            self.fill().expect("response head");
        };
        let head = String::from_utf8(self.buf[..head_end].to_vec()).expect("UTF-8 head");
        let body_start = head_end + 4;
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .and_then(|v| v.parse().ok())
            .expect("content-length header");
        let close = head
            .lines()
            .any(|l| l.eq_ignore_ascii_case("connection: close"));
        while self.buf.len() < body_start + content_length {
            self.fill().expect("response body");
        }
        let body = String::from_utf8(self.buf[body_start..body_start + content_length].to_vec())
            .expect("UTF-8 body");
        self.buf.drain(..body_start + content_length);
        Reply {
            status,
            body,
            close,
        }
    }

    fn fill(&mut self) -> Result<(), String> {
        let mut chunk = [0u8; 8192];
        match self.stream.read(&mut chunk) {
            Ok(0) => Err("eof".to_string()),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e) => Err(format!("read: {e}")),
        }
    }

    /// True when the server has closed its side (read returns EOF).
    fn at_eof(&mut self) -> bool {
        let mut byte = [0u8; 1];
        matches!(self.stream.read(&mut byte), Ok(0))
    }
}

#[test]
fn one_connection_serves_many_requests() {
    let server = test_server();
    let mut client = Client::connect(server.local_addr());
    for i in 0..8 {
        let reply = client.get("/v1/healthz");
        assert_eq!(reply.status, 200, "request {i}: {}", reply.body);
        assert!(!reply.close, "request {i} must not close a 1.1 connection");
        let doc = Json::parse(&reply.body).expect("healthz JSON");
        assert!(matches!(doc, Json::Obj(_)));
    }
    // The reactor finalizes a response (and bumps these counters) just
    // after the writev that delivers it, so the client can observe the
    // response a beat before the counters move: poll briefly.
    let state = server.state();
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let reuses = loop {
        let reuses = state
            .reactor
            .keepalive_reuses
            .load(std::sync::atomic::Ordering::Relaxed);
        if reuses >= 7 || std::time::Instant::now() > deadline {
            break reuses;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(
        reuses >= 7,
        "eight requests on one connection are seven reuses, got {reuses}"
    );
    assert_eq!(state.metrics.requests.value(), 8);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = test_server();
    let mut client = Client::connect(server.local_addr());
    // Three distinguishable requests written before any response is read.
    client.send(concat!(
        "GET /v1/healthz HTTP/1.1\r\nhost: test\r\n\r\n",
        "GET /v1 HTTP/1.1\r\nhost: test\r\n\r\n",
        "GET /v1/metrics HTTP/1.1\r\nhost: test\r\n\r\n",
    ));
    let first = client.read_reply();
    let second = client.read_reply();
    let third = client.read_reply();
    assert_eq!(first.status, 200);
    assert!(first.body.contains("\"uptime_seconds\""), "{}", first.body);
    assert!(first.body.contains("\"status\""), "{}", first.body);
    assert_eq!(second.status, 200);
    assert!(second.body.contains("\"endpoints\""), "{}", second.body);
    assert_eq!(third.status, 200);
    assert!(third.body.contains("\"reactor\""), "{}", third.body);
}

#[test]
fn error_responses_close_the_connection() {
    let server = test_server();
    let mut client = Client::connect(server.local_addr());
    let reply = client.get("/v1/nonexistent");
    assert_eq!(reply.status, 404);
    assert!(reply.close, "4xx must carry connection: close");
    assert!(client.at_eof(), "server must actually close after an error");
}

#[test]
fn http_10_defaults_to_close_and_header_overrides() {
    let server = test_server();
    let addr = server.local_addr();

    // HTTP/1.0 without a connection header: one-shot.
    let mut client = Client::connect(addr);
    client.send("GET /v1/healthz HTTP/1.0\r\nhost: test\r\n\r\n");
    let reply = client.read_reply();
    assert_eq!(reply.status, 200);
    assert!(reply.close, "1.0 defaults to close");
    assert!(client.at_eof());

    // HTTP/1.0 with an explicit keep-alive: persistent.
    let mut client = Client::connect(addr);
    client.send("GET /v1/healthz HTTP/1.0\r\nhost: test\r\nconnection: keep-alive\r\n\r\n");
    let reply = client.read_reply();
    assert_eq!(reply.status, 200);
    assert!(
        !reply.close,
        "explicit keep-alive overrides the 1.0 default"
    );
    let again = client.get("/v1/healthz");
    assert_eq!(again.status, 200, "connection stayed usable");

    // HTTP/1.1 with an explicit close: one-shot.
    let mut client = Client::connect(addr);
    client.send("GET /v1/healthz HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n");
    let reply = client.read_reply();
    assert!(reply.close, "explicit close overrides the 1.1 default");
    assert!(client.at_eof());
}

#[test]
fn reactor_metrics_surface_in_both_expositions() {
    let server = test_server();
    let mut client = Client::connect(server.local_addr());
    for _ in 0..3 {
        assert_eq!(client.get("/v1/healthz").status, 200);
    }
    // JSON exposition: the reactor section reflects this live connection.
    let reply = client.get("/v1/metrics");
    let doc = Json::parse(&reply.body).expect("metrics JSON");
    let connections = doc
        .get("reactor")
        .and_then(|r| r.get("connections_open"))
        .and_then(Json::as_f64)
        .expect("reactor.connections_open");
    assert!(connections >= 1.0, "this very connection is open");
    let reuses = doc
        .get("reactor")
        .and_then(|r| r.get("keepalive_reuses"))
        .and_then(Json::as_f64)
        .expect("reactor.keepalive_reuses");
    // Rendered mid-request: responses 2 and 3 have flushed as reuses; the
    // metrics response itself only becomes the third reuse after this body
    // is already serialized.
    assert!(reuses >= 2.0, "got {reuses} reuses");
    // Prometheus exposition: the serve_* series render with values.
    let scrape = client.get("/metrics");
    for series in [
        "serve_connections_open",
        "serve_keepalive_reuses_total",
        "serve_bytes_cache_hits_total",
        "serve_bytes_cache_misses_total",
        "serve_epoll_wakeups_total",
    ] {
        assert!(
            scrape.body.contains(series),
            "missing {series} in /metrics:\n{}",
            scrape.body
        );
    }
}

#[test]
fn graceful_shutdown_drains_keepalive_connections() {
    let mut server = test_server();
    let addr = server.local_addr();
    let mut client = Client::connect(addr);
    assert_eq!(client.get("/v1/healthz").status, 200);
    server.shutdown();
    // The draining reactor closes the idle connection and refuses new ones.
    assert!(
        client.at_eof(),
        "idle keep-alive connection closed on drain"
    );
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_secs(1)).is_err(),
        "listener is gone after shutdown"
    );
}

/// A realistic pipelined byte stream for the parser property below.
const PIPELINED: &[u8] = b"GET /v1/healthz HTTP/1.1\r\nhost: a\r\n\r\nGET /v1/characterize?domain=wordlm HTTP/1.0\r\nconnection: keep-alive\r\n\r\nHEAD /v1/metrics HTTP/1.1\r\nconnection: close\r\n\r\n";

/// Parse every complete head out of a buffer fed in `chunks`-sized pieces,
/// mirroring the reactor's accumulate-and-reparse loop.
fn incremental_parse(stream: &[u8], splits: &[usize]) -> Vec<(String, String, bool)> {
    let mut buf: Vec<u8> = Vec::new();
    let mut out = Vec::new();
    let mut cursor = 0;
    let mut feed_points: Vec<usize> = splits.to_vec();
    feed_points.push(stream.len());
    for point in feed_points {
        let point = point.min(stream.len());
        if point <= cursor {
            continue;
        }
        buf.extend_from_slice(&stream[cursor..point]);
        cursor = point;
        while let Ok(Feed::Parsed(head)) = http::parse_head(&buf) {
            buf.drain(..head.consumed);
            out.push((head.req.method, head.req.path, head.keep_alive));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feeding the byte stream in arbitrary fragments yields exactly the
    /// parse a single whole-buffer feed yields.
    #[test]
    fn reassembled_parse_equals_single_buffer_parse(
        mut splits in proptest::collection::vec(0usize..PIPELINED.len(), 0..6)
    ) {
        splits.sort_unstable();
        let whole = incremental_parse(PIPELINED, &[]);
        prop_assert_eq!(whole.len(), 3);
        let pieces = incremental_parse(PIPELINED, &splits);
        prop_assert_eq!(whole, pieces);
    }
}
