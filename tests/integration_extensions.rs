//! Integration tests for the §6.2.3 extension features: precision casting,
//! optimizer state, gradient compression, swapping, tensor parallelism, and
//! the hardware design-space exploration — exercised together on real
//! model graphs.

use frontier::analysis::lstm_p_config;
use frontier::prelude::*;

#[test]
fn f16_training_roughly_halves_frontier_footprint() {
    let model = ModelConfig::default_for(Domain::WordLm)
        .with_target_params(500_000_000)
        .build_training();
    let bindings = model.bindings_with_batch(64);
    let full = footprint(&model.graph, &bindings, Scheduler::Best).unwrap();
    let mut half_graph = model.graph.clone();
    cast_float_precision(&mut half_graph, DType::F16);
    half_graph.validate().unwrap();
    let half = footprint(&half_graph, &bindings, Scheduler::Best).unwrap();
    let reduction = full.peak_bytes as f64 / half.peak_bytes as f64;
    // Paper: low precision "may reduce ... by 1.5–10×". Pure f16 sits at
    // the bottom of that band.
    assert!(
        reduction > 1.7 && reduction < 2.1,
        "f16 reduction {reduction}"
    );
}

#[test]
fn adam_pushes_models_over_the_capacity_cliff_sooner() {
    // A model that fits with SGD can stop fitting once optimizer state is
    // accounted — the memory-capacity argument sharpened.
    let accel = Accelerator::v100_like();
    let link = HostLink::default();
    let cfg = ModelConfig::default_for(Domain::WordLm).with_target_params(2_000_000_000);
    let sgd = cfg.build_training();
    let bindings = sgd.bindings_with_batch(64);
    let sgd_fp = footprint(&sgd.graph, &bindings, Scheduler::Best).unwrap();

    let mut adam = cfg.build();
    let step = cgraph::build_training_step(&mut adam.graph, adam.loss).unwrap();
    apply_optimizer(&mut adam.graph, &step, Optimizer::Adam).unwrap();
    adam.graph.validate().unwrap();
    let adam_fp = footprint(&adam.graph, &bindings, Scheduler::Best).unwrap();

    let weights = 4.0 * sgd.param_count() as f64;
    assert!((adam_fp.persistent_bytes as f64 - 3.0 * weights).abs() < 1.0);
    assert!(adam_fp.peak_bytes > sgd_fp.peak_bytes);
    assert!(
        min_shards_to_fit(adam_fp.peak_bytes as f64, &accel, &link)
            >= min_shards_to_fit(sgd_fp.peak_bytes as f64, &accel, &link)
    );
}

#[test]
fn compression_and_workers_trade_off_for_a_fixed_epoch_target() {
    // Reaching a 7-day epoch needs fewer workers once gradients travel at
    // int8 — quantifying the paper's communication-reduction citations.
    let accel = Accelerator::v100_like();
    let comm = CommConfig::default();
    let worker = WorkerStep {
        compute_seconds: 17.0,
        alg_flops: 1.16e14,
        gradient_bytes: 33.6e9,
        samples_per_step: 128.0 * 80.0,
    };
    let dataset = 77e9;
    let target_days = 7.0;
    let first_fit = |scheme: GradCompression| -> u64 {
        (0..=16)
            .map(|i| 1u64 << i)
            .find(|&n| {
                data_parallel_point_compressed(&worker, n, dataset, &accel, &comm, scheme)
                    .epoch_days
                    <= target_days
            })
            .expect("some worker count meets the target")
    };
    let plain = first_fit(GradCompression::None);
    let int8 = first_fit(GradCompression::Int8);
    assert!(int8 <= plain, "int8 {int8} vs f32 {plain}");
    // And at the plain count, int8 strictly improves the epoch.
    let a = data_parallel_point_compressed(
        &worker,
        plain,
        dataset,
        &accel,
        &comm,
        GradCompression::None,
    );
    let b = data_parallel_point_compressed(
        &worker,
        plain,
        dataset,
        &accel,
        &comm,
        GradCompression::Int8,
    );
    assert!(b.epoch_days < a.epoch_days);
}

#[test]
fn swap_vs_shard_decision_matches_case_study() {
    // For the LSTM-p the paper chose 4-way model parallelism over swapping.
    // Our models agree: swapping more than doubles the step, while 4-way
    // sharding (per the footprint) fits and costs far less.
    let model = ModelConfig::WordLm(lstm_p_config()).build_training();
    let bindings = model.bindings_with_batch(128);
    let fp = footprint(&model.graph, &bindings, Scheduler::Best).unwrap();
    let accel = Accelerator::v100_like();
    let link = HostLink::default();
    let compute = 11.5;
    let swap = swap_report(fp.peak_bytes as f64, compute, &accel, &link);
    assert!(swap.slowdown > 1.5, "swap slowdown {}", swap.slowdown);
    let shards = min_shards_to_fit(fp.peak_bytes as f64, &accel, &link);
    assert!((4..=5).contains(&shards), "shards {shards}");
    // Tensor parallelism at that width beats swapping outright.
    let tp = tensor_parallel_plan(
        compute,
        2.0 * 4.0 * model.param_count() as f64,
        &TensorParallelConfig {
            ways: shards,
            sync_points: 2 * 2 * 80,
            bytes_per_sync: 128.0 * 8192.0 * 4.0,
        },
        &CommConfig::default(),
    );
    assert!(tp.step_seconds < swap.serialized_step_seconds);
}

#[test]
fn sensitivity_story_matches_paper_conclusion() {
    // "large-scale RNN training characteristics suggest designs with
    // significantly larger memory capacity and on-chip caches" — check the
    // capacity axis moves the RNN's fit requirement while the compute axis
    // moves the CNN's step time.
    let variants = hardware_variants();
    let rnn = ModelConfig::WordLm(lstm_p_config()).build_training();
    let pts = hardware_sensitivity(&rnn, 128, &variants);
    let get = |label: &str| pts.iter().find(|p| p.label == label).unwrap();
    assert!(get("4x capacity").min_shards < get("baseline").min_shards);
    assert!(get("2x compute").min_shards == get("baseline").min_shards);
    assert!(get("2x compute").speedup > 1.0);
}

#[test]
fn precision_and_sharding_compose() {
    // f16 + 4-way sharding brings the LSTM-p under the 32 GB ceiling —
    // the combined mitigation path the paper sketches.
    let model = ModelConfig::WordLm(lstm_p_config()).build_training();
    let mut half = model.graph.clone();
    cast_float_precision(&mut half, DType::F16);
    let bindings = model.bindings_with_batch(128);
    let fp = footprint(&half, &bindings, Scheduler::Best).unwrap();
    let per_shard_gb = fp.peak_bytes as f64 / 4.0 / 1e9;
    assert!(
        per_shard_gb < 32.0,
        "f16 + 4-way sharding leaves {per_shard_gb} GB per accelerator"
    );
}

#[test]
fn transformer_extends_the_framework_beyond_the_paper() {
    use frontier::modelzoo::{build_transformer, TransformerConfig};
    // A Transformer at word-LM frontier scale characterizes through the
    // same pipeline and lands in the same cost family as the tied LSTM.
    let cfg = TransformerConfig::default().with_target_params(1_000_000_000);
    let model = build_transformer(&cfg).into_training();
    model.graph.validate().unwrap();
    let batch = 32u64;
    let n = model
        .graph
        .stats()
        .eval(&model.bindings_with_batch(batch))
        .unwrap();
    let ratio = n.flops / batch as f64 / n.params;
    let q = cfg.seq_len as f64;
    assert!(
        ratio > 6.0 * q && ratio < 8.0 * q,
        "transformer flops/param/sample {ratio} vs 6q = {}",
        6.0 * q
    );
    // Same roofline machinery applies.
    let t = roofline_time(n.flops, n.bytes, &Accelerator::v100_like());
    assert!(t.seconds > 0.0);
}

#[test]
fn planner_automates_the_case_study_decision() {
    use frontier::parsim::{plan, PlanRequest, Stage};
    let gb = |x: f64| x * 1e9;
    let step = WorkerStep {
        compute_seconds: 17.07,
        alg_flops: 123e12,
        gradient_bytes: 33.6e9,
        samples_per_step: 128.0 * 25.45,
    };
    let stages = vec![
        Stage {
            name: "embedding".into(),
            weight_bytes: gb(59.5),
            activation_bytes: gb(0.5),
        },
        Stage {
            name: "lstm0".into(),
            weight_bytes: gb(4.3),
            activation_bytes: gb(12.7),
        },
        Stage {
            name: "lstm1".into(),
            weight_bytes: gb(4.3),
            activation_bytes: gb(12.7),
        },
        Stage {
            name: "out".into(),
            weight_bytes: gb(13.0),
            activation_bytes: gb(19.0),
        },
    ];
    let dataset = 4671.0 * 86_400.0 / 17.07 * 128.0 * 25.45;
    let mut req = PlanRequest::new(step, gb(113.8), stages, dataset, 7.5);
    req.usable_mem_fraction = 1.0; // the paper places against full capacity
    let plan = plan(&req, &Accelerator::v100_like(), &CommConfig::default())
        .expect("the case study is feasible");
    // The hand-derived answer: 4-way model parallel, hundreds-to-thousands
    // of data-parallel workers, footprints at the 32 GB level.
    assert_eq!(plan.mp_ways, 4);
    assert!(plan.mem_per_accel_gb <= 32.1);
    assert!(plan.epoch_days <= 7.5);
}

#[test]
fn in_place_execution_shaves_footprint_like_tensorflow() {
    use frontier::cgraph::{footprint_with, InPlacePolicy};
    // Paper §4.5: "our models tend to slightly overestimate ... Tensorflow
    // optimizes to perform some ops on tensors in-place."
    let model = ModelConfig::default_for(Domain::CharLm)
        .with_target_params(50_000_000)
        .build_training();
    let bindings = model.bindings_with_batch(32);
    let conservative = footprint_with(
        &model.graph,
        &bindings,
        Scheduler::Best,
        InPlacePolicy::Never,
    )
    .unwrap();
    let in_place = footprint_with(
        &model.graph,
        &bindings,
        Scheduler::Best,
        InPlacePolicy::Elementwise,
    )
    .unwrap();
    // The char LM's peak sits at the output-layer window, which in-place
    // execution cannot shrink — the policy is a refinement that never hurts.
    assert!(in_place.peak_bytes <= conservative.peak_bytes);
    // Where the peak *is* elementwise-dominated, the reduction is real: a
    // deep activation tower halves.
    let mut g = frontier::cgraph::Graph::new("ip_tower");
    let x = g
        .input("x", [Expr::int(1024), Expr::int(1024)], DType::F32)
        .unwrap();
    let mut t = x;
    for i in 0..6 {
        t = g.unary(&format!("act{i}"), PointwiseFn::Tanh, t).unwrap();
    }
    let tower_plain =
        footprint_with(&g, &Bindings::new(), Scheduler::Best, InPlacePolicy::Never).unwrap();
    let tower_ip = footprint_with(
        &g,
        &Bindings::new(),
        Scheduler::Best,
        InPlacePolicy::Elementwise,
    )
    .unwrap();
    assert_eq!(tower_ip.peak_bytes * 2, tower_plain.peak_bytes);
}

#[test]
fn first_order_models_verify_against_high_fidelity_graphs() {
    // Appendix A's loop, end to end: fit trends, verify on unseen models.
    let trends = fit_trends(&frontier::analysis::sweep_domain_batches(
        Domain::CharLm,
        100_000_000,
        800_000_000,
        3,
        &[16, 96],
    ));
    let report = frontier::analysis::verify_first_order(
        Domain::CharLm,
        &trends,
        &[(1_500_000_000, 48), (2_500_000_000, 96)],
    );
    assert!(report.flops.max_rel < 0.10, "{:?}", report.flops);
    assert!(report.bytes.max_rel < 0.25, "{:?}", report.bytes);
}
