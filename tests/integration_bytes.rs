//! Byte-identity tests for the response-bytes cache: a warm hit served
//! straight from pre-serialized bytes must be indistinguishable from a
//! fresh serialization — byte-identical body, head differing only in its
//! `x-cache` disposition — across every cacheable endpoint. Also pins the
//! admission policy (debug requests never enter the bytes cache) and the
//! HEAD/GET consistency of cached entries.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

use serve::{ServeConfig, Server};

/// Every memoized (bytes-cacheable) endpoint, with representative queries.
const CACHEABLE: &[&str] = &[
    "/v1/characterize?domain=wordlm&subbatch=16",
    "/v1/characterize?domain=nmt&subbatch=32",
    "/v1/sweep?domain=charlm&lo=1000000&hi=8000000&points=3&subbatch=8",
    "/v1/project?domain=speech",
    "/v1/subbatch?domain=charlm&params=10000000",
    "/v1/plan?domain=resnet&accels=16384",
    "/v1/plan/search?domain=resnet&accels=4096",
    "/v1/infer/characterize?batch=64&prompt=512&context=1024",
    "/v1/infer/sweep?batch=1,4&context=512,2048",
    "/v1/infer/plan?tpot_ms=50&ttft_ms=500&tokens_per_s=20000",
];

fn test_server() -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_entries: 64,
        queue_depth: 64,
        deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

/// One exchange on a fresh connection; returns (status, head, body).
fn exchange(addr: SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    stream
        .write_all(
            format!("{method} {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n")
                .as_bytes(),
        )
        .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

/// Head lines with the `x-cache` disposition removed (it is the one line
/// allowed to differ between a fresh render and a bytes-cache hit).
fn head_minus_cache_line(head: &str) -> Vec<String> {
    head.lines()
        .filter(|l| !l.starts_with("x-cache: "))
        .map(str::to_string)
        .collect()
}

fn x_cache(head: &str) -> Option<String> {
    head.lines()
        .find_map(|l| l.strip_prefix("x-cache: ").map(str::to_string))
}

#[test]
fn cached_bytes_are_identical_to_fresh_serialization_on_every_endpoint() {
    let server = test_server();
    let addr = server.local_addr();
    for path in CACHEABLE {
        let (cold_status, cold_head, cold_body) = exchange(addr, "GET", path);
        assert_eq!(cold_status, 200, "{path}: {cold_body}");
        assert_eq!(
            x_cache(&cold_head).as_deref(),
            Some("miss"),
            "{path}: first touch must be a miss"
        );
        let (warm_status, warm_head, warm_body) = exchange(addr, "GET", path);
        assert_eq!(warm_status, 200, "{path}: {warm_body}");
        assert_eq!(
            x_cache(&warm_head).as_deref(),
            Some("hit"),
            "{path}: repeat must hit"
        );
        assert_eq!(
            cold_body, warm_body,
            "{path}: zero-copy cached bytes must equal fresh serialization"
        );
        assert_eq!(
            head_minus_cache_line(&cold_head),
            head_minus_cache_line(&warm_head),
            "{path}: heads may differ only in x-cache"
        );
    }
    let state = server.state();
    let hits = state.reactor.bytes_cache_hits.load(Ordering::Relaxed);
    assert_eq!(
        hits,
        CACHEABLE.len() as u64,
        "every repeat was served from the bytes cache"
    );
    assert_eq!(
        state.bytes.len(),
        CACHEABLE.len(),
        "each endpoint admitted exactly one pre-serialized entry"
    );
}

#[test]
fn head_requests_serve_cached_metadata_without_the_body() {
    let server = test_server();
    let addr = server.local_addr();
    let path = "/v1/characterize?domain=wordlm&subbatch=16";
    let (_, _, get_body) = exchange(addr, "GET", path);
    // Warm HEAD: served from the bytes cache, body elided, length intact.
    let (status, head, body) = exchange(addr, "HEAD", path);
    assert_eq!(status, 200);
    assert_eq!(x_cache(&head).as_deref(), Some("hit"));
    assert!(body.is_empty(), "HEAD must not carry a body");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .and_then(|v| v.parse().ok())
        .expect("content-length");
    assert_eq!(
        content_length,
        get_body.len(),
        "HEAD advertises the cached body's true length"
    );
}

#[test]
fn debug_requests_bypass_the_bytes_cache() {
    let server = test_server();
    let addr = server.local_addr();
    let path = "/v1/characterize?domain=wordlm&subbatch=16&debug=timings";
    let (status, _, body) = exchange(addr, "GET", path);
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"timings_us\""),
        "debug body carries timings: {body}"
    );
    let (status, _, body) = exchange(addr, "GET", path);
    assert_eq!(status, 200, "{body}");
    let state = server.state();
    assert_eq!(
        state.reactor.bytes_cache_hits.load(Ordering::Relaxed),
        0,
        "debug responses are per-request and never served from bytes"
    );
    assert_eq!(
        state.bytes.len(),
        0,
        "debug responses are never admitted to the bytes cache"
    );
}
