//! End-to-end integration: scaling projection → model construction →
//! cost analysis → roofline timing → parallelism simulation, spanning every
//! crate in the workspace.

use frontier::prelude::*;
use frontier::Study;

#[test]
fn full_pipeline_word_lm_frontier() {
    // 1. Projection (scaling): word LMs need ~100× data, ~23× params.
    let row = scaling_for(Domain::WordLm);
    let projection = row.project();
    assert!(projection.data_scale > 90.0 && projection.data_scale < 120.0);
    assert!(projection.target_params > 20e9);

    // 2. Model construction (modelzoo) at the projected scale.
    let cfg = ModelConfig::default_for(Domain::WordLm)
        .with_target_params(projection.target_params as u64);
    let model = cfg.build_training();
    model
        .graph
        .validate()
        .expect("frontier graph is well-formed");
    let rel =
        (model.param_count() as f64 - projection.target_params).abs() / projection.target_params;
    assert!(rel < 0.05, "built params off projection by {rel}");

    // 3. Cost analysis (cgraph): Table 3 word-LM row bands.
    let stats = model
        .graph
        .stats()
        .eval(&model.bindings_with_batch(128))
        .expect("bound");
    assert!(
        stats.flops > 0.9e15 && stats.flops < 2.2e15,
        "flops {:.3e}",
        stats.flops
    );

    // 4. Roofline (roofline): ~115 s/step, compute-bound.
    let accel = Accelerator::v100_like();
    let t = roofline_time(stats.flops, stats.bytes, &accel);
    assert!(t.seconds > 70.0 && t.seconds < 180.0, "step {}", t.seconds);

    // 5. Parallelism (parsim): 1024 data-parallel workers cut the epoch to
    //    single-digit days even for this heavyweight model.
    let worker = WorkerStep {
        compute_seconds: t.seconds,
        alg_flops: stats.flops,
        gradient_bytes: 4.0 * stats.params,
        samples_per_step: model.samples_per_step(128),
    };
    let sweep = data_parallel_sweep(
        &worker,
        &[1, 64, 1024],
        projection.target_data_samples,
        &accel,
        &CommConfig::default(),
    );
    assert!(
        sweep[0].epoch_days > 1_000.0,
        "single-accel epoch {}",
        sweep[0].epoch_days
    );
    assert!(
        sweep[2].epoch_days < sweep[0].epoch_days / 500.0,
        "1024 workers should give near-linear speedup here"
    );
}

#[test]
fn study_facade_matches_manual_pipeline() {
    let report = Study::new(Domain::Speech).frontier_report();
    let manual = scaling_for(Domain::Speech).project();
    assert_eq!(report.projection.data_scale, manual.data_scale);
    assert!(report.requirements.built_params > 0.0);
    assert!(report.requirements.epoch_days > 0.0);
}

#[test]
fn characterization_feeds_trend_fits_that_predict_frontier_costs() {
    // Fit Table 2 trends on mid-size models, then extrapolate to the
    // frontier and compare against a direct measurement — the paper's core
    // methodological claim (first-order models project well).
    let trends = fit_trends(&analysis::sweep_domain_batches(
        Domain::CharLm,
        50_000_000,
        500_000_000,
        3,
        &[16, 96],
    ));
    let target = 2_000_000_000u64;
    let cfg = ModelConfig::default_for(Domain::CharLm).with_target_params(target);
    let direct = characterize(&cfg, 96);
    let predicted_flops = trends.flops(direct.params, 96.0);
    let rel = (predicted_flops - direct.flops_per_step).abs() / direct.flops_per_step;
    assert!(rel < 0.15, "4× extrapolation error {rel}");
    let predicted_bytes = trends.bytes(direct.params, 96.0);
    let rel_b = (predicted_bytes - direct.bytes_per_step).abs() / direct.bytes_per_step;
    assert!(rel_b < 0.30, "bytes extrapolation error {rel_b}");
}

#[test]
fn cache_model_and_parallelism_compose_in_case_study() {
    let study = word_lm_case_study(&Accelerator::v100_like(), &CommConfig::default());
    assert_eq!(study.rows.len(), 6);
    // Monotone narrative: every stage after the baselines reduces epoch days.
    let days: Vec<f64> = study.rows.iter().map(|r| r.days_per_epoch).collect();
    assert!(days[1] > days[0], "cache model must slow the baseline");
    assert!(days[2] < days[1] / 100.0, "data parallelism dominates");
    assert!(days[4] <= days[3], "layer parallelism helps");
    // Sharding strictly reduces the per-accelerator peak toward capacity
    // (paper: 60 → 32 GB; our model carries a larger activation share, so
    // the final figure is somewhat higher but the trend is the same).
    let last = study.rows.last().expect("rows");
    let before = &study.rows[study.rows.len() - 2];
    assert!(last.mem_per_accel_gb < before.mem_per_accel_gb);
    assert!(
        last.mem_per_accel_gb < 60.0,
        "sharded footprint {} GB should approach capacity",
        last.mem_per_accel_gb
    );
}

#[test]
fn subbatch_selection_consistent_with_frontier_rows() {
    // The subbatch chosen by the §5.2.1 rule for the word LM is the one
    // Table 3 profiles with (128), and using it reproduces the Table 3 row.
    let accel = Accelerator::v100_like();
    let cfg = Study::new(Domain::WordLm).frontier_config();
    let sel = subbatch_analysis(&cfg, &[16, 32, 64, 128, 256, 512], &accel, false);
    assert!(
        sel.chosen >= 64 && sel.chosen <= 256,
        "chosen {}",
        sel.chosen
    );
    let point = sel
        .points
        .iter()
        .find(|p| p.batch == sel.chosen)
        .expect("chosen point in sweep");
    // Near-peak throughput at the chosen point (paper: 79%).
    let asymptote = sel.points.last().expect("points").sec_per_sample;
    assert!(point.sec_per_sample <= 1.06 * asymptote);
}

#[test]
fn symbolic_and_numeric_paths_agree() {
    // Evaluating the symbolic stats at b and building bindings directly must
    // agree exactly — the symath/cgraph contract the whole pipeline rests on.
    let cfg = ModelConfig::default_for(Domain::Nmt).with_target_params(30_000_000);
    let model = cfg.build_training();
    let stats = model.graph.stats();
    for b in [1u64, 7, 64] {
        let n = stats.eval(&model.bindings_with_batch(b)).expect("bound");
        // Recompute flops by summing per-op evaluations.
        let mut total = 0.0;
        for op in model.graph.ops() {
            total += model
                .graph
                .op_flops(op)
                .eval(&model.bindings_with_batch(b))
                .expect("bound");
        }
        assert!((total - n.flops).abs() < 1e-6 * n.flops.max(1.0));
    }
}
