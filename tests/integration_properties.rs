//! Property-based integration tests: invariants of the analysis pipeline
//! under randomized configurations.

use frontier::prelude::*;
use proptest::prelude::*;

fn arb_domain() -> impl Strategy<Value = Domain> {
    prop_oneof![
        Just(Domain::WordLm),
        Just(Domain::CharLm),
        Just(Domain::Nmt),
        Just(Domain::Speech),
        Just(Domain::ImageClassification),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Costs are monotone in batch size for every domain.
    #[test]
    fn costs_monotone_in_batch(domain in arb_domain(), b in 1u64..64) {
        let cfg = ModelConfig::default_for(domain).with_target_params(5_000_000);
        let model = cfg.build_training();
        let stats = model.graph.stats();
        let n1 = stats.eval(&model.bindings_with_batch(b)).unwrap();
        let n2 = stats.eval(&model.bindings_with_batch(b + 1)).unwrap();
        prop_assert!(n2.flops > n1.flops);
        prop_assert!(n2.bytes > n1.bytes);
        prop_assert!(n2.io > n1.io);
        prop_assert_eq!(n1.params, n2.params);
    }

    /// `with_target_params` is monotone: more target params ⇒ at least as
    /// many actual params.
    #[test]
    fn param_inversion_monotone(domain in arb_domain(), lo in 2_000_000u64..20_000_000, mult in 2u64..10) {
        let small = ModelConfig::default_for(domain).with_target_params(lo);
        let large = ModelConfig::default_for(domain).with_target_params(lo * mult);
        prop_assert!(large.param_formula() >= small.param_formula());
    }

    /// The training graph always validates, regardless of scale knob.
    #[test]
    fn training_graphs_always_validate(domain in arb_domain(), target in 1_000_000u64..20_000_000) {
        let cfg = ModelConfig::default_for(domain).with_target_params(target);
        let model = cfg.build_training();
        prop_assert!(model.graph.validate().is_ok());
    }

    /// Roofline time is monotone in both flops and bytes and scale-covariant.
    #[test]
    fn roofline_monotone(flops in 1e9f64..1e15, bytes in 1e6f64..1e13, k in 1.1f64..10.0) {
        let a = Accelerator::v100_like();
        let t = roofline_time(flops, bytes, &a);
        let tf = roofline_time(flops * k, bytes, &a);
        let tb = roofline_time(flops, bytes * k, &a);
        prop_assert!(tf.seconds >= t.seconds);
        prop_assert!(tb.seconds >= t.seconds);
        // Scaling both scales the time exactly.
        let tk = roofline_time(flops * k, bytes * k, &a);
        prop_assert!((tk.seconds - k * t.seconds).abs() < 1e-9 * tk.seconds.max(1e-12));
    }

    /// Ring allreduce time is monotone in bytes; discrete-event simulation
    /// always matches the closed form.
    #[test]
    fn allreduce_des_matches(bytes in 1e3f64..1e11, workers in 2u64..512) {
        let c = CommConfig::default();
        let analytic = frontier::parsim::ring_allreduce_seconds(bytes, workers, &c);
        let des = frontier::parsim::ring_allreduce_discrete_event(bytes, workers, &c);
        prop_assert!((analytic - des).abs() < 1e-9 * analytic.max(1e-12));
    }

    /// Learning-curve inversion round-trips for any valid constants.
    #[test]
    fn learning_curve_roundtrip(alpha in 0.5f64..50.0, beta in -0.45f64..-0.05, err_frac in 0.1f64..0.9) {
        let c = LearningCurve::new(alpha, beta);
        let m0 = 1e8;
        let e0 = c.error_at(m0);
        let target = e0 * err_frac;
        let m1 = c.data_for_error(target);
        prop_assert!(m1 > m0);
        prop_assert!((c.error_at(m1) - target).abs() < 1e-9 * target);
        // Scale form agrees with absolute inversion when anchored on the
        // curve itself.
        let scale = c.data_scale(e0, target);
        prop_assert!((scale - m1 / m0).abs() < 1e-6 * scale);
    }

    /// Footprint is monotone in batch for training graphs under a fixed
    /// traversal (the Best estimate may pick different schedules per batch).
    #[test]
    fn footprint_monotone_in_batch(domain in arb_domain(), b in 1u64..16) {
        let cfg = ModelConfig::default_for(domain).with_target_params(3_000_000);
        let model = cfg.build_training();
        let f1 = footprint(&model.graph, &model.bindings_with_batch(b), Scheduler::ProgramOrder)
            .unwrap()
            .peak_bytes;
        let f2 = footprint(&model.graph, &model.bindings_with_batch(2 * b), Scheduler::ProgramOrder)
            .unwrap()
            .peak_bytes;
        prop_assert!(f2 >= f1);
    }

    /// Cache-aware traffic is bounded below by algorithmic traffic and
    /// decreases (weakly) with cache size, for all models and shapes.
    #[test]
    fn cache_traffic_bounds(m in 1f64..20000.0, k in 1f64..20000.0, n in 1f64..20000.0) {
        use frontier::roofline::{matmul_traffic, CacheModel};
        let alg = matmul_traffic(m, k, n, 6e6, 4.0, CacheModel::Algorithmic);
        for model in [CacheModel::SquareTile, CacheModel::PanelStream] {
            let small = matmul_traffic(m, k, n, 6e6, 4.0, model);
            let large = matmul_traffic(m, k, n, 48e6, 4.0, model);
            prop_assert!(small >= alg);
            prop_assert!(large <= small * 1.0001);
        }
    }
}
