//! Cross-domain integration checks: the paper's comparative claims about
//! the five workloads, verified on the actual graphs.

use frontier::prelude::*;

fn char_point(domain: Domain, params: u64) -> CharacterizationPoint {
    let cfg = ModelConfig::default_for(domain).with_target_params(params);
    characterize(&cfg, domain.default_subbatch())
}

#[test]
fn all_domains_build_validate_and_have_positive_costs() {
    for domain in Domain::ALL {
        let cfg = ModelConfig::default_for(domain).with_target_params(30_000_000);
        let model = cfg.build_training();
        model
            .graph
            .validate()
            .unwrap_or_else(|e| panic!("{domain:?}: {e}"));
        let n = model
            .graph
            .stats()
            .eval(&model.bindings_with_batch(4))
            .expect("bound");
        assert!(n.flops > 0.0 && n.bytes > 0.0 && n.io > 0.0, "{domain:?}");
        assert!(
            n.flops_backward > n.flops_forward,
            "{domain:?}: bwd should dominate"
        );
    }
}

#[test]
fn resnet_has_highest_flops_per_param() {
    // Figure 7 / Table 2: convolution weight reuse gives ResNets ~1111
    // FLOPs/param — more than any recurrent model at the same size.
    let points: Vec<(Domain, f64)> = Domain::ALL
        .into_iter()
        .map(|d| {
            let p = char_point(d, 60_000_000);
            (d, p.flops_per_sample / p.params)
        })
        .collect();
    let resnet = points
        .iter()
        .find(|(d, _)| *d == Domain::ImageClassification)
        .expect("resnet in list")
        .1;
    for (d, ratio) in &points {
        if *d != Domain::ImageClassification {
            assert!(
                resnet > *ratio,
                "ResNet FLOPs/param {resnet} should exceed {d:?}'s {ratio}"
            );
        }
    }
    assert!(resnet > 500.0, "ResNet FLOPs/param {resnet} (paper: 1111)");
}

#[test]
fn charlm_has_higher_flops_per_param_than_wordlm() {
    // Table 2: 900 (q=150) vs 481 (q=80) — deeper unrolls touch weights
    // more often per sample.
    let char_lm = char_point(Domain::CharLm, 60_000_000);
    let word_lm = char_point(Domain::WordLm, 60_000_000);
    assert!(
        char_lm.flops_per_sample / char_lm.params > 1.4 * word_lm.flops_per_sample / word_lm.params
    );
}

#[test]
fn recurrent_models_have_moderate_intensity_resnet_high() {
    // The paper's headline segmentation (§1): at their profiling subbatch,
    // CNNs reach high operational intensity; RNN intensity is moderate.
    // (The paper's own Table 2 formulas give near-equal intensity around
    // 60M parameters; the separation appears at larger scale — Figure 9.)
    let resnet = char_point(Domain::ImageClassification, 300_000_000);
    let word_lm = char_point(Domain::WordLm, 300_000_000);
    assert!(
        resnet.op_intensity > word_lm.op_intensity,
        "resnet {} vs word LM {}",
        resnet.op_intensity,
        word_lm.op_intensity
    );
}

#[test]
fn footprints_scale_linearly_for_large_models() {
    // §4.5: minimal footprint grows asymptotically linearly in model size.
    for domain in [Domain::WordLm, Domain::CharLm] {
        let a = char_point(domain, 400_000_000);
        let b = char_point(domain, 1_600_000_000);
        let ratio = b.footprint_bytes / a.footprint_bytes;
        let param_ratio = b.params / a.params;
        assert!(
            (ratio / param_ratio - 1.0).abs() < 0.5,
            "{domain:?}: footprint ratio {ratio} vs param ratio {param_ratio}"
        );
    }
}

#[test]
fn best_scheduler_never_exceeds_program_order_footprint() {
    for domain in Domain::ALL {
        let cfg = ModelConfig::default_for(domain).with_target_params(20_000_000);
        let model = cfg.build_training();
        let bindings = model.bindings_with_batch(8);
        let po = footprint(&model.graph, &bindings, Scheduler::ProgramOrder).expect("bound");
        let best = footprint(&model.graph, &bindings, Scheduler::Best).expect("bound");
        assert!(
            best.peak_bytes <= po.peak_bytes,
            "{domain:?}: best {} > program order {}",
            best.peak_bytes,
            po.peak_bytes
        );
        assert_eq!(best.schedule.len(), model.graph.ops().len());
    }
}

#[test]
fn sequence_length_scales_recurrent_costs_proportionally() {
    // Doubling the unroll roughly doubles FLOPs for LMs (recurrent reuse),
    // while parameters stay fixed.
    let base = ModelConfig::default_for(Domain::CharLm).with_target_params(20_000_000);
    let short = characterize(&base.with_seq_len(50), 16);
    let long = characterize(&base.with_seq_len(100), 16);
    assert_eq!(short.params, long.params);
    let ratio = long.flops_per_step / short.flops_per_step;
    assert!((ratio - 2.0).abs() < 0.15, "flops ratio {ratio}");
}

#[test]
fn io_is_negligible_relative_to_compute() {
    // §2.1: "we expect IO will grow very slowly relative to compute".
    for domain in Domain::ALL {
        let cfg = ModelConfig::default_for(domain).with_target_params(50_000_000);
        let model = cfg.build_training();
        let n = model
            .graph
            .stats()
            .eval(&model.bindings_with_batch(domain.default_subbatch()))
            .expect("bound");
        assert!(
            n.io < 0.01 * n.bytes,
            "{domain:?}: IO {} vs bytes {}",
            n.io,
            n.bytes
        );
    }
}

#[test]
fn speech_and_nmt_share_attention_structure() {
    // Both enc/dec models run one softmax per decoder step.
    let nmt_cfg = ModelConfig::default_for(Domain::Nmt).with_target_params(30_000_000);
    let nmt = nmt_cfg.build();
    let nmt_softmax = nmt
        .graph
        .ops()
        .iter()
        .filter(|o| matches!(o.kind, frontier::cgraph::OpKind::Softmax))
        .count();
    assert_eq!(nmt_softmax as u64, 25); // default tgt_len

    let sp_cfg = ModelConfig::default_for(Domain::Speech).with_target_params(30_000_000);
    let sp = sp_cfg.build();
    let sp_softmax = sp
        .graph
        .ops()
        .iter()
        .filter(|o| matches!(o.kind, frontier::cgraph::OpKind::Softmax))
        .count();
    assert_eq!(sp_softmax as u64, 50); // default tgt_len
}
