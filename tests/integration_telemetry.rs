//! End-to-end tests of the telemetry plane: the Prometheus text exposition
//! and the JSON metrics endpoint must agree (they render from one
//! registry), `debug=timings` stage breakdowns must account for the
//! request's wall time, and the flight recorder must retain recent and
//! slowest requests with full per-stage timings.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use serve::json::Json;
use serve::{ServeConfig, Server};

fn test_server() -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_entries: 64,
        queue_depth: 64,
        deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Plain-text HTTP GET; returns (status, content-type, body).
fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_type = head
        .lines()
        .find_map(|l| l.strip_prefix("content-type: ").map(str::to_string))
        .unwrap_or_default();
    (status, content_type, body.to_string())
}

/// Parse a Prometheus text exposition into `series id → value` (the id is
/// `name` or `name{labels}` exactly as rendered).
fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line:?}");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|e| panic!("unparsable value in {line:?}: {e}"));
        let prior = out.insert(series.to_string(), value);
        assert!(prior.is_none(), "duplicate series {series:?}");
    }
    out
}

/// The bare metric name of a series id (`name{labels}` → `name`).
fn metric_name(series: &str) -> &str {
    series.split('{').next().expect("nonempty")
}

#[test]
fn exposition_is_well_formed() {
    let server = test_server();
    let addr = server.local_addr();
    // Generate some traffic so families and histograms have samples.
    for path in [
        "/v1/characterize?domain=wordlm&subbatch=16",
        "/v1/characterize?domain=wordlm&subbatch=16",
        "/v1/healthz",
        "/does/not/exist",
    ] {
        let _ = get(addr, path);
    }
    let (status, content_type, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        content_type.starts_with("text/plain"),
        "exposition content type: {content_type:?}"
    );
    let samples = parse_exposition(&text);
    assert!(!samples.is_empty(), "empty exposition:\n{text}");

    // Every metric name is legal and carries HELP + TYPE metadata.
    let mut helped = std::collections::BTreeSet::new();
    let mut typed = std::collections::BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helped.insert(rest.split(' ').next().expect("name").to_string());
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.insert(rest.split(' ').next().expect("name").to_string());
        }
    }
    for series in samples.keys() {
        let name = metric_name(series);
        let mut chars = name.chars();
        let first = chars.next().expect("nonempty name");
        assert!(
            first.is_ascii_alphabetic() || first == '_' || first == ':',
            "bad first char in {name:?}"
        );
        assert!(
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad char in {name:?}"
        );
        // Histogram children (_bucket/_sum/_count) share the parent's
        // HELP/TYPE metadata.
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| helped.contains(*b))
            .unwrap_or(name);
        assert!(helped.contains(base), "{name} has no # HELP line:\n{text}");
        assert!(typed.contains(base), "{name} has no # TYPE line:\n{text}");
    }

    // The tentpole's required coverage: server, cache, pool, engine LRU,
    // and interner series all render from the one registry.
    for required in [
        "frontier_requests_total",
        "frontier_requests_in_flight",
        "frontier_request_latency_us_count",
        "frontier_cache_hits_total",
        "frontier_cache_entries",
        "frontier_pool_queue_depth",
        "frontier_engine_instances_cached",
        "frontier_symath_table_len",
        "frontier_flight_recorded_total",
        "frontier_uptime_seconds",
    ] {
        assert!(
            samples.keys().any(|s| metric_name(s) == required),
            "missing required series {required}:\n{text}"
        );
    }
    // Label values render with the endpoint names the JSON side uses.
    assert!(
        samples.contains_key("frontier_requests_by_endpoint_total{endpoint=\"characterize\"}"),
        "{text}"
    );
    assert!(
        samples.contains_key("frontier_responses_total{class=\"2xx\"}"),
        "{text}"
    );
}

#[test]
fn text_and_json_metrics_agree_on_shared_series() {
    let server = test_server();
    let addr = server.local_addr();
    for path in [
        "/v1/characterize?domain=wordlm&subbatch=16",
        "/v1/characterize?domain=wordlm&subbatch=16",
        "/v1/project?domain=speech",
        "/v1/healthz",
        "/v1/characterize?domain=klingon",
        // A sweep drives the batched register VM, so its counters move.
        "/v1/sweep?domain=charlm&lo=1000000&hi=8000000&points=3&subbatch=8",
    ] {
        let _ = get(addr, path);
    }
    // Scrape text → JSON → text. Monotone counters must satisfy A ≤ J ≤ B:
    // both endpoints read the same live registry, so any drift between the
    // scrapes is real traffic (including the scrapes themselves), never a
    // second bookkeeping path.
    let (_, _, text_a) = get(addr, "/metrics");
    let (_, _, json_body) = get(addr, "/v1/metrics");
    let (_, _, text_b) = get(addr, "/metrics");
    let a = parse_exposition(&text_a);
    let b = parse_exposition(&text_b);
    let j = Json::parse(&json_body).expect("metrics JSON");

    let shared = [
        ("frontier_requests_total", "requests.total"),
        (
            "frontier_responses_total{class=\"2xx\"}",
            "requests.status_2xx",
        ),
        (
            "frontier_responses_total{class=\"4xx\"}",
            "requests.status_4xx",
        ),
        (
            "frontier_responses_total{class=\"5xx\"}",
            "requests.status_5xx",
        ),
        (
            "frontier_requests_rejected_total{reason=\"queue_full\"}",
            "requests.rejected_queue_full",
        ),
        ("frontier_cache_hits_total", "cache.hits"),
        ("frontier_cache_misses_total", "cache.misses"),
        ("frontier_cache_coalesced_total", "cache.coalesced"),
        ("frontier_cache_evictions_total", "cache.evictions"),
        ("frontier_cache_failures_total", "cache.failures"),
        ("frontier_request_latency_us_count", "latency_us.count"),
        ("frontier_flight_recorded_total", "flight.recorded"),
        (
            "frontier_requests_by_endpoint_total{endpoint=\"characterize\"}",
            "requests.by_endpoint.characterize",
        ),
        (
            "frontier_requests_by_endpoint_total{endpoint=\"healthz\"}",
            "requests.by_endpoint.healthz",
        ),
        ("frontier_symath_intern_hits_total", "symath.intern_hits"),
        ("frontier_symath_memo_hits_total", "symath.memo_hits"),
        (
            "frontier_symath_programs_compiled_total",
            "symath.programs_compiled",
        ),
        (
            "frontier_symath_batch_programs_compiled_total",
            "symath_batch.programs_compiled",
        ),
        ("frontier_symath_batch_evals_total", "symath_batch.evals"),
        ("frontier_symath_batch_points_total", "symath_batch.points"),
        (
            "frontier_engine_families_built_total",
            "engine.families_built",
        ),
    ];
    for (series, json_path) in shared {
        let va = *a
            .get(series)
            .unwrap_or_else(|| panic!("{series} missing from first scrape:\n{text_a}"));
        let vb = *b
            .get(series)
            .unwrap_or_else(|| panic!("{series} missing from second scrape:\n{text_b}"));
        let vj = j
            .path(json_path)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{json_path} missing from JSON: {json_body}"));
        assert!(
            va <= vj && vj <= vb,
            "{series}: text {va} ≤ json {vj} ≤ text {vb} violated"
        );
    }
    // Exact-valued per-server facts agree outright (nothing else drives
    // this server between scrapes; capacity is static).
    assert_eq!(
        a.get("frontier_cache_capacity").copied(),
        j.path("cache.capacity").and_then(Json::as_f64)
    );
    // And the cache series carry the expected traffic: one hit, three
    // misses (first characterize, project, sweep).
    assert_eq!(j.path("cache.hits").and_then(Json::as_f64), Some(1.0));
    assert_eq!(j.path("cache.misses").and_then(Json::as_f64), Some(3.0));
    // The sweep ran through the batched register VM: its three grid points
    // were priced in (at least) one batched evaluation.
    let batch_points = j
        .path("symath_batch.points")
        .and_then(Json::as_f64)
        .expect("symath_batch.points in JSON");
    assert!(batch_points >= 3.0, "batch VM priced {batch_points} points");
}

/// Sum the non-null stage entries of a `timings_us` object.
fn stage_sum_us(timings: &Json) -> f64 {
    [
        "queue_us",
        "parse_us",
        "cache_lookup_us",
        "singleflight_wait_us",
        "compute_us",
        "serialize_us",
        "write_us",
    ]
    .iter()
    .filter_map(|k| timings.get(k).and_then(Json::as_f64))
    .sum()
}

#[test]
fn debug_timings_account_for_wall_time_on_cached_and_uncached_requests() {
    let server = test_server();
    let addr = server.local_addr();
    let path = "/v1/characterize?domain=nmt&subbatch=32&debug=timings";
    for pass in ["uncached", "cached"] {
        let (status, _, body) = get(addr, path);
        assert_eq!(status, 200, "{pass}: {body}");
        let doc = Json::parse(&body).expect("JSON body");
        let debug = doc.get("debug").unwrap_or_else(|| {
            panic!("{pass}: debug=timings response missing debug block: {body}")
        });
        let id = debug
            .get("request_id")
            .and_then(Json::as_f64)
            .expect("request_id") as u64;
        let timings = debug.get("timings_us").expect("timings_us");
        assert!(
            matches!(timings.get("write_us"), Some(Json::Null)),
            "{pass}: write stage is unknowable before the socket write: {body}"
        );
        let body_total = debug
            .get("total_us")
            .and_then(Json::as_f64)
            .expect("total_us");
        assert!(
            stage_sum_us(timings) <= body_total + 1.0,
            "{pass}: stages exceed the body's own total: {body}"
        );

        // The flight-recorder record has the complete breakdown including
        // the write stage; its stage sum must account for the recorded
        // wall time within 10% (plus a small absolute allowance for the
        // untimed dispatch glue between stages).
        let (_, _, dump) = get(addr, "/v1/debug/requests");
        let dump = Json::parse(&dump).expect("debug requests JSON");
        let recent = match dump.get("recent") {
            Some(Json::Arr(records)) => records,
            other => panic!("recent missing: {other:?}"),
        };
        let record = recent
            .iter()
            .find(|r| r.get("id").and_then(Json::as_f64) == Some(id as f64))
            .unwrap_or_else(|| panic!("{pass}: request {id} not in the flight ring"));
        let total = record
            .get("total_us")
            .and_then(Json::as_f64)
            .expect("total_us");
        let stages = record.get("stages").expect("stages");
        let sum = stage_sum_us(stages);
        assert!(
            sum <= total + 1.0,
            "{pass}: stage sum {sum} > total {total}"
        );
        let unaccounted = total - sum;
        let allowance = (total * 0.10).max(1_000.0);
        assert!(
            unaccounted <= allowance,
            "{pass}: stages account for {sum} of {total} µs \
             ({unaccounted} µs untimed > {allowance} µs allowance): {record:?}"
        );
    }
    // A bogus debug value is a structured 400, and never reaches handlers.
    let (status, _, body) = get(addr, "/v1/healthz?debug=everything");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("bad_parameter"), "{body}");
}

#[test]
fn flight_recorder_retains_recent_and_slowest_requests() {
    let server = test_server();
    let addr = server.local_addr();
    // One slow (uncached compute) request among cheap ones.
    let slow_path = "/v1/sweep?domain=charlm&lo=1000000&hi=8000000&points=3";
    let (status, _, _) = get(addr, slow_path);
    assert_eq!(status, 200);
    for _ in 0..5 {
        let (status, _, _) = get(addr, "/v1/healthz");
        assert_eq!(status, 200);
    }
    let (status, _, body) = get(addr, "/v1/debug/requests");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("JSON");
    assert_eq!(
        doc.get("capacity").and_then(Json::as_f64),
        Some(ServeConfig::default().flight_entries as f64)
    );
    let recorded = doc
        .get("recorded")
        .and_then(Json::as_f64)
        .expect("recorded");
    assert!(recorded >= 6.0, "{body}");

    let recent = match doc.get("recent") {
        Some(Json::Arr(records)) => records,
        other => panic!("recent missing: {other:?}"),
    };
    assert!(!recent.is_empty());
    // Newest first.
    let ids: Vec<f64> = recent
        .iter()
        .map(|r| r.get("id").and_then(Json::as_f64).expect("id"))
        .collect();
    assert!(
        ids.windows(2).all(|w| w[0] > w[1]),
        "recent not newest-first: {ids:?}"
    );
    // Every record carries endpoint, status, and a stages object.
    for record in recent {
        assert!(record.get("endpoint").and_then(Json::as_str).is_some());
        assert_eq!(record.get("status").and_then(Json::as_f64), Some(200.0));
        assert!(record.get("stages").is_some());
    }

    let slowest = match doc.get("slowest") {
        Some(Json::Arr(records)) => records,
        other => panic!("slowest missing: {other:?}"),
    };
    assert!(!slowest.is_empty());
    let totals: Vec<f64> = slowest
        .iter()
        .map(|r| r.get("total_us").and_then(Json::as_f64).expect("total"))
        .collect();
    assert!(
        totals.windows(2).all(|w| w[0] >= w[1]),
        "slowest not sorted descending: {totals:?}"
    );
    // The expensive sweep outlasts a healthz ping, so it leads the set.
    assert_eq!(
        slowest[0].get("endpoint").and_then(Json::as_str),
        Some("sweep"),
        "{body}"
    );
}

#[test]
fn sampled_requests_emit_server_side_spans() {
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_entries: 16,
        queue_depth: 16,
        trace_sample_every: 1,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let (status, _, _) = get(addr, "/v1/characterize?domain=wordlm&subbatch=16");
    assert_eq!(status, 200);
    // Sampled requests land in the process-global recorder as a synthetic
    // request span plus per-stage children.
    let events = obs::recorder().events();
    let request_spans: Vec<_> = events
        .iter()
        .filter(|e| e.name == "serve.request")
        .collect();
    assert!(
        !request_spans.is_empty(),
        "no serve.request span among {} events",
        events.len()
    );
    assert!(
        events.iter().any(|e| e.name.starts_with("serve.stage.")),
        "no per-stage child spans"
    );
    // And the flight record remembers it was sampled.
    let (_, _, body) = get(addr, "/v1/debug/requests");
    let doc = Json::parse(&body).expect("JSON");
    assert_eq!(doc.get("sample_every").and_then(Json::as_f64), Some(1.0));
    let recent = match doc.get("recent") {
        Some(Json::Arr(records)) => records,
        other => panic!("recent missing: {other:?}"),
    };
    assert!(
        recent
            .iter()
            .any(|r| matches!(r.get("sampled"), Some(Json::Bool(true)))),
        "{body}"
    );
}
