//! Per-op profiling integration tests: the TFprof-style attribution in
//! `cgraph::profile` must sum to `Graph::stats` totals on every modelzoo
//! workload and on randomized graphs under randomized bindings.

use frontier::prelude::*;
use frontier::symath::{Bindings, Expr};
use proptest::prelude::*;

/// Acceptance criterion: per-op attribution sums (within 1e-6 relative) to
/// the `GraphStats` totals for all five modelzoo workloads.
#[test]
fn per_op_profile_sums_match_stats_for_all_workloads() {
    for domain in [
        Domain::WordLm,
        Domain::CharLm,
        Domain::Nmt,
        Domain::Speech,
        Domain::ImageClassification,
    ] {
        let cfg = ModelConfig::default_for(domain);
        let model = cfg.build_training();
        let bindings = model.bindings_with_batch(domain.default_subbatch());
        let profile = model.graph.profile(&bindings).expect("all symbols bound");
        profile
            .check_consistency(1e-6)
            .unwrap_or_else(|e| panic!("{domain:?}: {e}"));
        // The attribution is total: every op appears, and grouping reshuffles
        // but never loses cost.
        assert_eq!(profile.ops.len(), model.graph.ops().len());
        let by_layer: f64 = profile.by_layer().iter().map(|g| g.flops).sum();
        assert!(
            (by_layer - profile.totals.flops).abs() <= 1e-6 * profile.totals.flops,
            "{domain:?}: layer groups lost FLOPs"
        );
    }
}

/// Trace spans from a profile run land in the global recorder and export as
/// one JSON object per line.
#[test]
fn profile_emits_parseable_jsonl_trace() {
    let cfg = ModelConfig::default_for(Domain::Nmt);
    let model = cfg.build_training();
    let bindings = model.bindings_with_batch(16);
    model.graph.profile(&bindings).expect("bound");
    let rec = obs::recorder();
    assert!(!rec.is_empty(), "profiling should record spans");
    let mut buf = Vec::new();
    rec.write_jsonl_to(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object: {line}"
        );
        assert!(line.contains("\"name\":"), "missing name: {line}");
    }
    assert!(text.contains("cgraph.profile"));
}

/// A random MLP: `depth` hidden layers of random widths, optionally trained
/// (autodiff + SGD), under a random batch binding.
fn random_mlp(depth: usize, widths: &[u64], classes: u64, train: bool) -> Graph {
    let mut g = Graph::new("random_mlp");
    let b = Expr::sym("rb");
    let mut dim = widths[0];
    let mut h = g
        .input("x", [b.clone(), Expr::int(dim as i128)], DType::F32)
        .unwrap();
    for (i, &w) in widths.iter().take(depth).enumerate() {
        let weight = g
            .weight(
                format!("l{i}.w"),
                [Expr::int(dim as i128), Expr::int(w as i128)],
            )
            .unwrap();
        h = g
            .matmul(&format!("l{i}.fc"), h, weight, false, false)
            .unwrap();
        h = g
            .unary(&format!("l{i}.relu"), PointwiseFn::Relu, h)
            .unwrap();
        dim = w;
    }
    let out = g
        .weight(
            "head.w",
            [Expr::int(dim as i128), Expr::int(classes as i128)],
        )
        .unwrap();
    let logits = g.matmul("head.fc", h, out, false, false).unwrap();
    if train {
        let labels = g.input("labels", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", logits, labels).unwrap();
        build_training_step(&mut g, loss).unwrap();
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-op FLOPs/bytes sum to the `GraphStats` totals for random graphs
    /// under random bindings — forward-only and full training steps alike.
    #[test]
    fn profile_consistent_on_random_graphs(
        depth in 1usize..4,
        widths in proptest::collection::vec(8u64..256, 4),
        classes in 2u64..64,
        batch in 1u64..128,
        train in proptest::bool::ANY,
    ) {
        let g = random_mlp(depth, &widths, classes, train);
        let bindings = Bindings::new().with("rb", batch as f64);
        let profile = g.profile(&bindings).unwrap();
        prop_assert!(profile.check_consistency(1e-6).is_ok());
        // Spot-check the raw sums, independent of check_consistency.
        let flops: f64 = profile.ops.iter().map(|o| o.flops).sum();
        let bytes: f64 = profile.ops.iter().map(|o| o.bytes()).sum();
        prop_assert!((flops - profile.totals.flops).abs() <= 1e-6 * profile.totals.flops.max(1.0));
        prop_assert!((bytes - profile.totals.bytes).abs() <= 1e-6 * profile.totals.bytes.max(1.0));
    }

    /// Random modelzoo configurations profile consistently too.
    #[test]
    fn profile_consistent_on_random_workloads(
        target in 1_000_000u64..20_000_000,
        batch in 1u64..32,
    ) {
        let cfg = ModelConfig::default_for(Domain::CharLm).with_target_params(target);
        let model = cfg.build_training();
        let bindings = model.bindings_with_batch(batch);
        let profile = model.graph.profile(&bindings).unwrap();
        prop_assert!(profile.check_consistency(1e-6).is_ok());
    }
}
