//! End-to-end tests of the `serve` HTTP query server: boot on an ephemeral
//! port, hit every endpoint, and check the memoization contract — repeated
//! queries return byte-identical bodies from cache, concurrent identical
//! queries compute once, and hostile input gets structured errors, never a
//! crash.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

use proptest::prelude::*;
use serve::json::Json;
use serve::{ServeConfig, Server};

/// Boot a server on an ephemeral port with small limits suited to tests.
fn test_server() -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_entries: 64,
        queue_depth: 64,
        deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Plain-text HTTP GET; returns (status, x-cache header, body).
fn get(addr: SocketAddr, path: &str) -> (u16, Option<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let cache = head
        .lines()
        .find_map(|l| l.strip_prefix("x-cache: ").map(str::to_string));
    (status, cache, body.to_string())
}

/// Write raw bytes and read whatever comes back (for malformed-input tests).
fn raw_exchange(addr: SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.write_all(bytes);
    let mut out = Vec::new();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).to_string()
}

#[test]
fn every_endpoint_returns_parsable_json() {
    let server = test_server();
    let addr = server.local_addr();
    let endpoints = [
        "/",
        "/v1/healthz",
        "/v1/characterize?domain=wordlm&subbatch=16",
        "/v1/sweep?domain=charlm&lo=1000000&hi=8000000&points=3&subbatch=8",
        "/v1/project?domain=resnet",
        "/v1/subbatch?domain=charlm&params=10000000",
        "/v1/plan?domain=resnet&accels=16384",
        "/v1/metrics",
    ];
    for path in endpoints {
        let (status, _, body) = get(addr, path);
        assert_eq!(status, 200, "{path}: {body}");
        let doc = Json::parse(&body).unwrap_or_else(|e| panic!("{path}: bad JSON ({e}): {body}"));
        assert!(matches!(doc, Json::Obj(_)), "{path}: non-object body");
    }
    // The metrics endpoint saw all of the traffic above.
    let (_, _, body) = get(addr, "/v1/metrics");
    let doc = Json::parse(&body).expect("metrics JSON");
    let total = doc
        .path("requests.total")
        .and_then(Json::as_f64)
        .expect("total");
    assert!(total >= endpoints.len() as f64, "metrics counted {total}");
}

#[test]
fn repeated_query_is_a_cache_hit_with_identical_body() {
    let server = test_server();
    let addr = server.local_addr();
    let path = "/v1/characterize?domain=nmt&subbatch=32";
    let (s1, c1, b1) = get(addr, path);
    let (s2, c2, b2) = get(addr, path);
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(c1.as_deref(), Some("miss"));
    assert_eq!(c2.as_deref(), Some("hit"));
    assert_eq!(b1, b2, "cached body must be byte-identical");
    // And the hit is visible in metrics.
    let (_, _, metrics) = get(addr, "/v1/metrics");
    let doc = Json::parse(&metrics).expect("metrics JSON");
    assert_eq!(doc.path("cache.hits").and_then(Json::as_f64), Some(1.0));
    assert_eq!(doc.path("cache.misses").and_then(Json::as_f64), Some(1.0));
}

#[test]
fn concurrent_identical_queries_compute_once() {
    let server = test_server();
    let addr = server.local_addr();
    let path = "/v1/subbatch?domain=wordlm&params=50000000";
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let (status, _, body) = get(addr, path);
                    assert_eq!(status, 200, "{body}");
                    body
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    assert!(bodies.windows(2).all(|w| w[0] == w[1]), "divergent bodies");
    // Single-flight: exactly one compute; everyone else hit or coalesced.
    let stats = &server.state().cache.stats;
    assert_eq!(stats.misses.load(Ordering::Relaxed), 1, "computed once");
    assert_eq!(
        stats.hits.load(Ordering::Relaxed) + stats.coalesced.load(Ordering::Relaxed),
        7,
        "other seven requests served from the flight or the cache"
    );
}

#[test]
fn sweep_grid_matches_brute_force_and_caches() {
    let server = test_server();
    let addr = server.local_addr();
    let path = "/v1/sweep?domain=nmt&lo=1000000&hi=9000000&points=3&subbatch=16";
    let (s1, c1, b1) = get(addr, path);
    let (s2, c2, b2) = get(addr, path);
    assert_eq!((s1, s2), (200, 200), "{b1}");
    assert_eq!(c1.as_deref(), Some("miss"));
    assert_eq!(c2.as_deref(), Some("hit"));
    assert_eq!(b1, b2, "cached grid must be byte-identical");
    let doc = Json::parse(&b1).expect("sweep JSON");
    let points = match doc.get("points") {
        Some(Json::Arr(points)) => points,
        other => panic!("points missing or not an array: {other:?}"),
    };
    assert_eq!(points.len(), 3);
    // The symbolic grid served over HTTP equals brute-force characterization
    // of the same configurations, bit for bit.
    let configs = modelzoo::sweep_configs(modelzoo::Domain::Nmt, 1_000_000, 9_000_000, 3);
    for (served, cfg) in points.iter().zip(&configs) {
        let expect = analysis::characterize(cfg, 16);
        assert_eq!(
            served.get("params").and_then(Json::as_f64),
            Some(expect.params)
        );
        assert_eq!(
            served.get("flops_per_step").and_then(Json::as_f64),
            Some(expect.flops_per_step)
        );
        assert_eq!(
            served.get("footprint_bytes").and_then(Json::as_f64),
            Some(expect.footprint_bytes)
        );
    }
    // Hostile grids are structured 400s.
    for bad in [
        "/v1/sweep?domain=nmt&lo=9000000&hi=1000000",
        "/v1/sweep?domain=nmt&points=1000",
        "/v1/sweep?domain=nmt&subbatch=0",
        "/v1/sweep?domain=nmt&lo=7",
    ] {
        let (status, _, body) = get(addr, bad);
        assert_eq!(status, 400, "{bad}: {body}");
    }
}

#[test]
fn malformed_requests_get_structured_errors_and_never_kill_the_server() {
    let server = test_server();
    let addr = server.local_addr();
    let attacks: &[&[u8]] = &[
        b"BLARG\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET / HTTP/1.1 junk\r\n\r\n",
        b"POST /v1/healthz HTTP/1.1\r\n\r\n",
        b"GET /v1/healthz SPDY/9\r\n\r\n",
        b"GET noslash HTTP/1.1\r\n\r\n",
        b"\xff\xfe\x00\x01\r\n\r\n",
        b"GET /v1/characterize?domain=%zz HTTP/1.1\r\n\r\n",
        b"GET /v1/characterize?domain=wordlm&domain=nmt HTTP/1.1\r\n\r\n",
        b"GET /v1/characterize?domain=wordlm&subbatch=banana HTTP/1.1\r\n\r\n",
        b"GET /v1/characterize?domain=wordlm&subbatch=184467440737095516159999 HTTP/1.1\r\n\r\n",
        b"GET /v1/characterize?domain=wordlm&params=1 HTTP/1.1\r\n\r\n",
        b"GET /v1/plan?domain=wordlm&days=-4 HTTP/1.1\r\n\r\n",
        b"GET /v1/plan?domain=wordlm&days=nan HTTP/1.1\r\n\r\n",
        b"GET /v1/healthz?surprise=1 HTTP/1.1\r\n\r\n",
    ];
    for attack in attacks {
        let response = raw_exchange(addr, attack);
        let status: u16 = response
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                panic!(
                    "no status for {:?}: {response:?}",
                    String::from_utf8_lossy(attack)
                )
            });
        assert!(
            (400..=599).contains(&status),
            "{:?} -> {status}",
            String::from_utf8_lossy(attack)
        );
        let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
        let doc =
            Json::parse(body).unwrap_or_else(|e| panic!("unparsable error body ({e}): {body:?}"));
        assert!(
            doc.get("error").is_some(),
            "error body missing code: {body}"
        );
    }
    // Oversized request head.
    let mut huge = Vec::from(&b"GET /v1/healthz HTTP/1.1\r\n"[..]);
    huge.extend(std::iter::repeat_n(b'x', 10_000));
    let response = raw_exchange(addr, &huge);
    assert!(
        response.contains("431") || response.contains("414"),
        "{response:?}"
    );
    // A long query string (within URI bounds) is a structured 400.
    let long_query = format!(
        "GET /v1/characterize?domain={} HTTP/1.1\r\n\r\n",
        "x".repeat(3000)
    );
    let response = raw_exchange(addr, long_query.as_bytes());
    assert!(response.contains("query_too_long"), "{response:?}");

    // After all of that abuse the server still answers cleanly.
    let (status, _, body) = get(addr, "/v1/healthz");
    assert_eq!(status, 200, "{body}");
    let (_, _, metrics) = get(addr, "/v1/metrics");
    let doc = Json::parse(&metrics).expect("metrics JSON");
    // Exactly one 5xx: the 505 protocol rejection for the SPDY probe. Any
    // more would mean a handler turned hostile input into an internal error.
    assert_eq!(
        doc.path("requests.status_5xx").and_then(Json::as_f64),
        Some(1.0),
        "malformed input must never be an internal server error: {metrics}"
    );
}

#[test]
fn plan_search_returns_frontier_and_caches() {
    let server = test_server();
    let addr = server.local_addr();
    let path = "/v1/plan/search?domain=resnet&accel=v100,a100&micro=1,2&days=7";
    let (s1, c1, b1) = get(addr, path);
    let (s2, c2, b2) = get(addr, path);
    assert_eq!((s1, s2), (200, 200), "{b1}");
    assert_eq!(c1.as_deref(), Some("miss"));
    assert_eq!(c2.as_deref(), Some("hit"));
    assert_eq!(b1, b2, "cached search must be byte-identical");

    let doc = Json::parse(&b1).expect("search JSON");
    assert!(
        matches!(doc.get("feasible"), Some(Json::Bool(true))),
        "{b1}"
    );
    let pareto = match doc.get("pareto") {
        Some(Json::Arr(points)) => points,
        other => panic!("pareto missing or not an array: {other:?}"),
    };
    assert!(!pareto.is_empty(), "{b1}");
    let feasible_count = doc
        .path("feasible_count")
        .and_then(Json::as_f64)
        .expect("feasible_count");
    assert!(pareto.len() as f64 <= feasible_count);
    let considered = doc
        .path("stats.considered")
        .and_then(Json::as_f64)
        .expect("considered");
    let evaluated = doc
        .path("stats.evaluated")
        .and_then(Json::as_f64)
        .expect("evaluated");
    assert!(evaluated <= considered, "{b1}");

    // The served argmin is exactly what the library's own search returns
    // for the same request.
    let req = analysis::PlanSearchRequest {
        domain: modelzoo::Domain::ImageClassification,
        accels: vec![
            (
                "v100".into(),
                roofline::Accelerator::by_key("v100").expect("v100"),
            ),
            (
                "a100".into(),
                roofline::Accelerator::by_key("a100").expect("a100"),
            ),
        ],
        subbatches: vec![modelzoo::Domain::ImageClassification.default_subbatch()],
        microbatches: vec![1, 2],
        target_epoch_days: 7.0,
        max_total_accelerators: 16_384,
    };
    let expect = analysis::plan_search(&req).best.expect("library feasible");
    assert_eq!(
        doc.path("best.accel").and_then(Json::as_str),
        Some(expect.accel_key.as_str())
    );
    assert_eq!(
        doc.path("best.plan.total_accelerators")
            .and_then(Json::as_f64),
        Some(expect.plan.total_accelerators as f64)
    );
    assert_eq!(
        doc.path("best.plan.step_seconds").and_then(Json::as_f64),
        Some(expect.plan.step_seconds)
    );
    assert_eq!(
        doc.path("best.plan.epoch_days").and_then(Json::as_f64),
        Some(expect.plan.epoch_days)
    );
}

#[test]
fn plan_endpoint_is_a_restriction_of_plan_search() {
    // `/v1/plan` must be exactly `/v1/plan/search` restricted to the
    // server's reference accelerator, the domain default subbatch, and
    // micro=2 — same enumeration, bit-identical plan JSON.
    let server = test_server();
    let addr = server.local_addr();
    for query in [
        "domain=resnet&accels=4096&days=7",
        "domain=wordlm&accels=16384&days=30",
        "domain=nmt&accels=512&days=0.02",
    ] {
        let (s1, _, plan_body) = get(addr, &format!("/v1/plan?{query}"));
        let (s2, _, search_body) =
            get(addr, &format!("/v1/plan/search?{query}&accel=v100&micro=2"));
        assert_eq!((s1, s2), (200, 200), "{query}: {plan_body} {search_body}");
        let plan_doc = Json::parse(&plan_body).expect("plan JSON");
        let search_doc = Json::parse(&search_body).expect("search JSON");
        assert_eq!(
            plan_doc.get("feasible"),
            search_doc.get("feasible"),
            "{query}"
        );
        let plan = plan_doc.get("plan").expect("plan field");
        match search_doc.path("best.plan") {
            Some(best) => assert_eq!(plan.render(), best.render(), "{query}"),
            None => assert!(matches!(plan, Json::Null), "{query}: {plan_body}"),
        }
    }
}

#[test]
fn plan_search_rejects_hostile_grids_with_structured_400s() {
    let server = test_server();
    let addr = server.local_addr();
    let rejects = [
        (
            "/v1/plan/search?domain=resnet&accel=k80",
            "unknown_accelerator",
        ),
        (
            "/v1/plan/search?domain=resnet&accel=v100,v100",
            "bad_parameter",
        ),
        (
            "/v1/plan/search?domain=resnet&accel=",
            "unknown_accelerator",
        ),
        ("/v1/plan/search?domain=resnet&subbatch=0", "bad_parameter"),
        (
            "/v1/plan/search?domain=resnet&subbatch=banana",
            "bad_parameter",
        ),
        (
            "/v1/plan/search?domain=resnet&subbatch=184467440737095516159999",
            "bad_parameter",
        ),
        ("/v1/plan/search?domain=resnet&micro=4,4", "bad_parameter"),
        (
            "/v1/plan/search?domain=resnet&micro=99999999",
            "bad_parameter",
        ),
        (
            "/v1/plan/search?domain=resnet&micro=1,2,3,4,5,6,7,8,9",
            "grid_too_large",
        ),
        (
            "/v1/plan/search?domain=resnet&subbatch=1,2,4,8,16&micro=1,2,4,8",
            "grid_too_large",
        ),
        ("/v1/plan/search?domain=resnet&days=0", "days_out_of_range"),
        (
            "/v1/plan/search?domain=resnet&days=inf",
            "days_out_of_range",
        ),
        (
            "/v1/plan/search?domain=resnet&accels=0",
            "accels_out_of_range",
        ),
        (
            "/v1/plan/search?domain=resnet&accels=99999999999",
            "accels_out_of_range",
        ),
        (
            "/v1/plan/search?domain=resnet&surprise=1",
            "unknown_parameter",
        ),
        ("/v1/plan/search?accel=v100", "missing_parameter"),
    ];
    for (path, code) in rejects {
        let (status, _, body) = get(addr, path);
        assert_eq!(status, 400, "{path}: {body}");
        let doc = Json::parse(&body).unwrap_or_else(|e| panic!("{path}: bad JSON ({e}): {body}"));
        assert_eq!(
            doc.get("error").and_then(Json::as_str),
            Some(code),
            "{path}: {body}"
        );
    }
    // All that hostility produced structured 4xx only — never a 5xx — and
    // the server still answers real queries.
    let (status, _, body) = get(addr, "/v1/plan/search?domain=resnet&accel=v100");
    assert_eq!(status, 200, "{body}");
    let (_, _, metrics) = get(addr, "/v1/metrics");
    let doc = Json::parse(&metrics).expect("metrics JSON");
    assert_eq!(
        doc.path("requests.status_5xx").and_then(Json::as_f64),
        Some(0.0),
        "hostile grids must never be internal errors: {metrics}"
    );
    assert_eq!(
        doc.path("requests.status_4xx").and_then(Json::as_f64),
        Some(rejects.len() as f64),
        "{metrics}"
    );
}

#[test]
fn head_requests_elide_the_body() {
    let server = test_server();
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"HEAD /v1/healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("head");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.is_empty(), "HEAD must not carry a body: {body:?}");
    // Content-length still reflects the would-be body.
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .and_then(|v| v.parse().ok())
        .expect("content-length");
    assert!(len > 0);
}

#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let mut server = test_server();
    let addr = server.local_addr();
    let (status, _, _) = get(addr, "/v1/healthz");
    assert_eq!(status, 200);
    server.shutdown();
    // New connections are refused (or reset) once the listener is gone.
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    assert!(
        refused.is_err() || {
            // Accept loop may leave the socket in a transient state; a
            // request on it must not succeed.
            let mut s = refused.expect("connected");
            let _ = s.write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\n");
            let mut out = Vec::new();
            let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = s.read_to_end(&mut out);
            out.is_empty()
        },
        "server answered after shutdown"
    );
}

fn arb_domain() -> impl Strategy<Value = modelzoo::Domain> {
    prop_oneof![
        Just(modelzoo::Domain::WordLm),
        Just(modelzoo::Domain::CharLm),
        Just(modelzoo::Domain::Nmt),
        Just(modelzoo::Domain::Speech),
        Just(modelzoo::Domain::ImageClassification),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The memoized path returns exactly what a fresh computation returns:
    /// for randomized small configs, the cached second response is
    /// byte-identical to the first, and its numbers agree with calling the
    /// analysis layer directly.
    #[test]
    fn cache_hit_equals_fresh_computation(
        domain in arb_domain(),
        params in 1_000_000u64..20_000_000,
        subbatch_pow in 0u32..6,
    ) {
        let subbatch = 1u64 << subbatch_pow;
        let server = test_server();
        let addr = server.local_addr();
        let path = format!("/v1/characterize?domain={}&params={params}&subbatch={subbatch}", domain.key());
        let (s1, c1, fresh) = get(addr, &path);
        let (s2, c2, cached) = get(addr, &path);
        prop_assert_eq!((s1, s2), (200, 200));
        prop_assert_eq!(c1.as_deref(), Some("miss"));
        prop_assert_eq!(c2.as_deref(), Some("hit"));
        prop_assert_eq!(&fresh, &cached);

        let doc = Json::parse(&cached).expect("JSON");
        let got_params = doc.path("point.params").and_then(Json::as_f64).expect("params");
        let cfg = modelzoo::ModelConfig::default_for(domain).with_target_params(params);
        let expect = analysis::characterize(&cfg, subbatch);
        prop_assert_eq!(got_params, expect.params);
        let got_flops = doc.path("point.flops_per_step").and_then(Json::as_f64).expect("flops");
        // JSON round-trips f64 exactly (integral or {:?} formatting).
        prop_assert_eq!(got_flops, expect.flops_per_step);
    }
}
