//! The symbolic sweep engine: characterization sweeps evaluated as closed
//! forms instead of per-point graph rebuilds.
//!
//! A Figure 7–10 sweep evaluates N configurations that differ only in one
//! width hyperparameter. The brute-force path rebuilds the training graph and
//! re-derives every cost expression N times. The engine instead:
//!
//! 1. builds the **family** graph once per structural family — the training
//!    graph with the swept width left as a free symbol
//!    ([`modelzoo::WIDTH_SYM`]), with repeated subgraphs folded by
//!    [`cgraph::fold_classes`] inside `stats()`;
//! 2. per configuration, substitutes the integer width into the cached
//!    symbolic stats and per-tensor element expressions — an **exact**
//!    rational-arithmetic substitution, not a float evaluation;
//! 3. per sweep point, binds the subbatch symbol and evaluates the closed
//!    form; the footprint simulation runs on the family graph against the
//!    substituted size table.
//!
//! Everything symbolic is held as hash-consed [`ExprId`]s: family stats and
//! element counts are [`InternedGraphStats`] / id vectors, substitution goes
//! through the `symath` bind memo (one exact substitution per distinct
//! `(expression, width)` pair process-wide), and evaluation executes the
//! per-id compiled stack programs.
//!
//! Every number produced this way is **bit-identical** to
//! [`characterize`](crate::characterize): substitution commutes with the
//! builders' ring operations on widths, so step 2 reproduces the concrete
//! build's canonical expressions; compiled programs replay the tree
//! evaluator's exact f64 operation order; and the footprint simulation sees
//! the same graph structure and the same byte sizes. The golden equivalence
//! suite (`tests/golden_sweep.rs`) asserts this with `==` on every field.
//!
//! The per-configuration **instance cache is LRU-bounded** (the family cache
//! is not: there are only a handful of structural families, but a
//! long-running server sweeps unboundedly many widths). The eviction
//! discipline mirrors `serve`'s memo cache: a monotone tick, touch on use,
//! evict the smallest tick while over capacity.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use cgraph::{footprint_with_plan, FootprintPlan, InPlacePolicy, InternedGraphStats, Scheduler};
use modelzoo::{ModelConfig, ModelGraph, BATCH_SYM};
use rayon::prelude::*;
use symath::{batch_program, Bindings, ExprId};

use crate::characterize::CharacterizationPoint;
use crate::lru::LruCache;

/// Default bound on cached per-configuration instances.
pub const DEFAULT_INSTANCE_CAPACITY: usize = 1024;

/// One structural family: the width-symbolic training graph and its cost
/// expressions, shared by every configuration in a sweep.
struct Family {
    model: ModelGraph,
    /// Folded symbolic stats over the batch and width symbols.
    stats: InternedGraphStats,
    /// Deduplicated element-count expressions: an unrolled graph repeats the
    /// same tensor shapes across timesteps/blocks, so the thousands of
    /// per-tensor expressions collapse to a handful of distinct ones —
    /// dedup is an id comparison now, not a tree hash.
    uniq_elems: Vec<ExprId>,
    /// Per tensor (indexed like `model.graph.tensors()`): which entry of
    /// `uniq_elems` counts its elements, and its element size in bytes.
    elem_slot: Vec<(u32, u64)>,
    /// Size-independent footprint extraction of the family graph: built once,
    /// priced against every configuration's size table.
    plan: FootprintPlan,
}

/// One configuration: the family expressions with the width substituted,
/// leaving only the batch symbol free.
struct Instance {
    family: Arc<Family>,
    stats: InternedGraphStats,
    uniq_elems: Vec<ExprId>,
}

/// A cache of width-symbolic model families and their per-configuration
/// instantiations. Cheap to share across threads; sweeps call
/// [`characterize`](FamilyEngine::characterize) from rayon workers.
pub struct FamilyEngine {
    families: Mutex<HashMap<String, Arc<Family>>>,
    instances: Mutex<LruCache<Arc<Instance>>>,
}

impl Default for FamilyEngine {
    fn default() -> FamilyEngine {
        FamilyEngine::with_instance_capacity(DEFAULT_INSTANCE_CAPACITY)
    }
}

impl FamilyEngine {
    /// A fresh, empty engine (cold caches — what the sweep benchmark times).
    pub fn new() -> FamilyEngine {
        FamilyEngine::default()
    }

    /// An engine whose instance cache holds at most `capacity` entries.
    pub fn with_instance_capacity(capacity: usize) -> FamilyEngine {
        FamilyEngine {
            families: Mutex::new(HashMap::new()),
            instances: Mutex::new(LruCache::new(capacity)),
        }
    }

    /// The process-wide engine: families built by any sweep are reused by
    /// later sweeps and by the query server.
    pub fn global() -> &'static FamilyEngine {
        static GLOBAL: OnceLock<FamilyEngine> = OnceLock::new();
        GLOBAL.get_or_init(FamilyEngine::new)
    }

    fn family(&self, cfg: &ModelConfig) -> Arc<Family> {
        let key = cfg.family_key();
        if let Some(f) = self.families.lock().expect("poisoned").get(&key) {
            return Arc::clone(f);
        }
        // Built outside the lock: concurrent misses may build twice, but the
        // results are identical and the first insert wins.
        let model = obs::time("modelzoo.build_family", || cfg.build_family_training());
        let stats = obs::time("engine.family_stats", || model.graph.stats_interned());
        let mut uniq_elems: Vec<ExprId> = Vec::new();
        let mut slot_of: HashMap<ExprId, u32> = HashMap::new();
        let elem_slot = model
            .graph
            .tensors()
            .iter()
            .map(|t| {
                let e = t.shape.elements_id();
                let slot = *slot_of.entry(e).or_insert_with(|| {
                    uniq_elems.push(e);
                    (uniq_elems.len() - 1) as u32
                });
                (slot, t.dtype.size_bytes())
            })
            .collect();
        let plan = obs::time("engine.family_plan", || FootprintPlan::new(&model.graph));
        let family = Arc::new(Family {
            model,
            stats,
            uniq_elems,
            elem_slot,
            plan,
        });
        Arc::clone(
            self.families
                .lock()
                .expect("poisoned")
                .entry(key)
                .or_insert(family),
        )
    }

    fn instance_key(cfg: &ModelConfig) -> String {
        let mut key = cfg.family_key();
        for (sym, v) in cfg.family_widths().iter() {
            key.push_str(&format!(";{sym}={v}"));
        }
        key
    }

    fn instance(&self, cfg: &ModelConfig) -> Arc<Instance> {
        let widths = cfg.family_widths();
        let key = FamilyEngine::instance_key(cfg);
        if let Some(hit) = self.instances.lock().expect("poisoned").get(&key) {
            return hit;
        }
        let family = self.family(cfg);
        let stats = family.stats.bind_all(&widths);
        let uniq_elems = family
            .uniq_elems
            .iter()
            .map(|e| e.bind_all(&widths))
            .collect();
        let instance = Arc::new(Instance {
            family,
            stats,
            uniq_elems,
        });
        self.instances
            .lock()
            .expect("poisoned")
            .insert(key, instance)
    }

    /// Symbolic counterpart of [`crate::characterize`]: the same
    /// [`CharacterizationPoint`], bit-for-bit, from the cached closed forms.
    pub fn characterize(&self, cfg: &ModelConfig, subbatch: u64) -> CharacterizationPoint {
        let _span = obs::span("analysis.characterize_symbolic")
            .with_arg("domain", cfg.domain().key())
            .with_arg("subbatch", subbatch);
        let inst = self.instance(cfg);
        let bindings = Bindings::new().with(BATCH_SYM, subbatch as f64);
        let n = inst.stats.eval(&bindings).expect("all symbols bound");
        // Mirrors `cgraph::tensor_sizes` exactly: per-tensor rounded element
        // count times the element size, with each distinct element
        // expression evaluated once.
        let uniq: Vec<u64> = inst
            .uniq_elems
            .iter()
            .map(|e| e.eval_u64(&bindings).expect("all symbols bound"))
            .collect();
        let sizes: Vec<u64> = inst
            .family
            .elem_slot
            .iter()
            .map(|&(slot, db)| uniq[slot as usize] * db)
            .collect();
        let fp = footprint_with_plan(
            &inst.family.plan,
            &sizes,
            Scheduler::Best,
            InPlacePolicy::Never,
        );
        CharacterizationPoint {
            params: n.params,
            subbatch,
            flops_per_step: n.flops,
            flops_per_sample: n.flops / subbatch as f64,
            bytes_per_step: n.bytes,
            op_intensity: n.flops / n.bytes,
            footprint_bytes: fp.peak_bytes as f64,
            seq_len: inst.family.model.seq_len,
        }
    }

    /// Price one instance at several subbatch sizes through the batched
    /// register VM: one grid evaluation covers the three stats roots and
    /// every distinct element-count expression across all points (shared
    /// sub-expressions computed once per point, not once per root), then one
    /// footprint simulation per point against the cached family plan.
    ///
    /// Bit-identical to calling [`characterize`](FamilyEngine::characterize)
    /// per subbatch: the batched VM replays each root's stack program
    /// per-point in the same f64 operation order, and the element rounding
    /// below mirrors [`ExprId::eval_u64`].
    fn characterize_instance(
        &self,
        inst: &Instance,
        subbatches: &[u64],
    ) -> Vec<CharacterizationPoint> {
        if subbatches.is_empty() {
            return Vec::new();
        }
        let mut roots = Vec::with_capacity(3 + inst.uniq_elems.len());
        roots.push(inst.stats.params);
        roots.push(inst.stats.flops);
        roots.push(inst.stats.bytes);
        roots.extend_from_slice(&inst.uniq_elems);
        let prog = batch_program(&roots);
        let points: Vec<Bindings> = subbatches
            .iter()
            .map(|&b| Bindings::new().with(BATCH_SYM, b as f64))
            .collect();
        let grid = prog.eval_grid(&points).expect("grid is non-empty");
        let val =
            |root: usize, p: usize| -> f64 { *grid[root][p].as_ref().expect("all symbols bound") };
        // `ExprId::eval_u64`'s rounding, applied to the batched value.
        let as_u64 = |v: f64| -> u64 {
            assert!(
                v.is_finite() && v >= -0.5,
                "expression evaluated to non-representable u64: {v}"
            );
            v.round().max(0.0) as u64
        };
        subbatches
            .iter()
            .enumerate()
            .map(|(p, &subbatch)| {
                let params = val(0, p);
                let flops = val(1, p);
                let bytes = val(2, p);
                let uniq: Vec<u64> = (0..inst.uniq_elems.len())
                    .map(|j| as_u64(val(3 + j, p)))
                    .collect();
                let sizes: Vec<u64> = inst
                    .family
                    .elem_slot
                    .iter()
                    .map(|&(slot, db)| uniq[slot as usize] * db)
                    .collect();
                let fp = footprint_with_plan(
                    &inst.family.plan,
                    &sizes,
                    Scheduler::Best,
                    InPlacePolicy::Never,
                );
                CharacterizationPoint {
                    params,
                    subbatch,
                    flops_per_step: flops,
                    flops_per_sample: flops / subbatch as f64,
                    bytes_per_step: bytes,
                    op_intensity: flops / bytes,
                    footprint_bytes: fp.peak_bytes as f64,
                    seq_len: inst.family.model.seq_len,
                }
            })
            .collect()
    }

    /// Characterize a batch of `(configuration, subbatch)` points. Jobs that
    /// share a configuration are grouped onto one instance and priced in a
    /// single batched-VM grid evaluation ([`characterize_instance`]); groups
    /// run on the rayon pool. Output order matches input order, so results
    /// are deterministic — and bit-identical to calling
    /// [`characterize`](FamilyEngine::characterize) per job.
    ///
    /// [`characterize_instance`]: FamilyEngine::characterize_instance
    pub fn characterize_many(&self, jobs: &[(ModelConfig, u64)]) -> Vec<CharacterizationPoint> {
        // One instance plus its (input index, subbatch) rows.
        type Group = (Arc<Instance>, Vec<(usize, u64)>);
        let _span = obs::span("analysis.characterize_many").with_arg("jobs", jobs.len() as u64);
        let mut order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, Group> = HashMap::new();
        for (i, (cfg, b)) in jobs.iter().enumerate() {
            let key = FamilyEngine::instance_key(cfg);
            let entry = match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(e.key().clone());
                    e.insert((self.instance(cfg), Vec::new()))
                }
            };
            entry.1.push((i, *b));
        }
        let grouped: Vec<Group> = order
            .iter()
            .map(|k| groups.remove(k).expect("grouped by key"))
            .collect();
        obs::recorder().counter("analysis.batch_groups", grouped.len() as f64);
        let mut out: Vec<Option<CharacterizationPoint>> = vec![None; jobs.len()];
        let results: Vec<Vec<(usize, CharacterizationPoint)>> = grouped
            .par_iter()
            .map(|(inst, rows)| {
                let subbatches: Vec<u64> = rows.iter().map(|&(_, b)| b).collect();
                rows.iter()
                    .map(|&(i, _)| i)
                    .zip(self.characterize_instance(inst, &subbatches))
                    .collect()
            })
            .collect();
        for (i, p) in results.into_iter().flatten() {
            out[i] = Some(p);
        }
        out.into_iter()
            .map(|p| p.expect("every job priced"))
            .collect()
    }

    /// Labels consumed per batch element by `cfg`'s family graph — the
    /// slope of `samples_per_step(b)`. Width-independent, so the cached
    /// family answers without building a concrete instance.
    pub fn labels_per_sample(&self, cfg: &ModelConfig) -> u64 {
        self.family(cfg).model.labels_per_sample
    }

    /// Number of family graphs currently cached.
    pub fn families_built(&self) -> usize {
        self.families.lock().expect("poisoned").len()
    }

    /// Number of per-configuration instances currently cached.
    pub fn instances_cached(&self) -> usize {
        self.instances.lock().expect("poisoned").len()
    }

    /// Bound on the instance cache.
    pub fn instance_capacity(&self) -> usize {
        self.instances.lock().expect("poisoned").capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modelzoo::Domain;

    #[test]
    fn engine_matches_brute_force_bitwise() {
        let engine = FamilyEngine::new();
        let cfg = ModelConfig::default_for(Domain::WordLm)
            .with_seq_len(6)
            .with_target_params(2_000_000);
        let brute = crate::characterize(&cfg, 16);
        let fast = engine.characterize(&cfg, 16);
        assert_eq!(brute, fast);
    }

    #[test]
    fn one_family_build_serves_a_whole_sweep() {
        let engine = FamilyEngine::new();
        for target in [1_000_000u64, 2_000_000, 4_000_000] {
            let cfg = ModelConfig::default_for(Domain::Nmt)
                .with_seq_len(4)
                .with_target_params(target);
            engine.characterize(&cfg, 8);
        }
        assert_eq!(engine.families_built(), 1);
    }

    #[test]
    fn instance_cache_is_bounded_lru() {
        let engine = FamilyEngine::with_instance_capacity(2);
        for target in [1_000_000u64, 2_000_000, 4_000_000, 8_000_000] {
            let cfg = ModelConfig::default_for(Domain::WordLm)
                .with_seq_len(4)
                .with_target_params(target);
            engine.characterize(&cfg, 8);
        }
        assert_eq!(engine.instances_cached(), 2);
        assert_eq!(engine.instance_capacity(), 2);
        // Eviction must not change results: recompute an evicted width.
        let cfg = ModelConfig::default_for(Domain::WordLm)
            .with_seq_len(4)
            .with_target_params(1_000_000);
        let again = engine.characterize(&cfg, 8);
        let brute = crate::characterize(&cfg, 8);
        assert_eq!(again, brute);
    }

    #[test]
    fn characterize_many_matches_one_by_one() {
        let engine = FamilyEngine::new();
        let jobs: Vec<(ModelConfig, u64)> = [1_000_000u64, 3_000_000]
            .iter()
            .flat_map(|&t| {
                [8u64, 16].iter().map(move |&b| {
                    (
                        ModelConfig::default_for(Domain::CharLm)
                            .with_seq_len(4)
                            .with_target_params(t),
                        b,
                    )
                })
            })
            .collect();
        let batch = engine.characterize_many(&jobs);
        for (job, point) in jobs.iter().zip(&batch) {
            assert_eq!(*point, engine.characterize(&job.0, job.1));
        }
    }
}
