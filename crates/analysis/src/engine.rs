//! The symbolic sweep engine: characterization sweeps evaluated as closed
//! forms instead of per-point graph rebuilds.
//!
//! A Figure 7–10 sweep evaluates N configurations that differ only in one
//! width hyperparameter. The brute-force path rebuilds the training graph and
//! re-derives every cost expression N times. The engine instead:
//!
//! 1. builds the **family** graph once per structural family — the training
//!    graph with the swept width left as a free symbol
//!    ([`modelzoo::WIDTH_SYM`]), with repeated subgraphs folded by
//!    [`cgraph::fold_classes`] inside `stats()`;
//! 2. per configuration, substitutes the integer width into the cached
//!    symbolic stats and per-tensor element expressions — an **exact**
//!    rational-arithmetic substitution, not a float evaluation;
//! 3. per sweep point, binds the subbatch symbol and evaluates the closed
//!    form; the footprint simulation runs on the family graph against the
//!    substituted size table.
//!
//! Everything symbolic is held as hash-consed [`ExprId`]s: family stats and
//! element counts are [`InternedGraphStats`] / id vectors, substitution goes
//! through the `symath` bind memo (one exact substitution per distinct
//! `(expression, width)` pair process-wide), and evaluation executes the
//! per-id compiled stack programs.
//!
//! Every number produced this way is **bit-identical** to
//! [`characterize`](crate::characterize): substitution commutes with the
//! builders' ring operations on widths, so step 2 reproduces the concrete
//! build's canonical expressions; compiled programs replay the tree
//! evaluator's exact f64 operation order; and the footprint simulation sees
//! the same graph structure and the same byte sizes. The golden equivalence
//! suite (`tests/golden_sweep.rs`) asserts this with `==` on every field.
//!
//! The per-configuration **instance cache is LRU-bounded** (the family cache
//! is not: there are only a handful of structural families, but a
//! long-running server sweeps unboundedly many widths). The eviction
//! discipline mirrors `serve`'s memo cache: a monotone tick, touch on use,
//! evict the smallest tick while over capacity.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use cgraph::{footprint_with_sizes, InPlacePolicy, InternedGraphStats, Scheduler};
use modelzoo::{ModelConfig, ModelGraph, BATCH_SYM};
use rayon::prelude::*;
use symath::{Bindings, ExprId};

use crate::characterize::CharacterizationPoint;
use crate::lru::LruCache;

/// Default bound on cached per-configuration instances.
pub const DEFAULT_INSTANCE_CAPACITY: usize = 1024;

/// One structural family: the width-symbolic training graph and its cost
/// expressions, shared by every configuration in a sweep.
struct Family {
    model: ModelGraph,
    /// Folded symbolic stats over the batch and width symbols.
    stats: InternedGraphStats,
    /// Deduplicated element-count expressions: an unrolled graph repeats the
    /// same tensor shapes across timesteps/blocks, so the thousands of
    /// per-tensor expressions collapse to a handful of distinct ones —
    /// dedup is an id comparison now, not a tree hash.
    uniq_elems: Vec<ExprId>,
    /// Per tensor (indexed like `model.graph.tensors()`): which entry of
    /// `uniq_elems` counts its elements, and its element size in bytes.
    elem_slot: Vec<(u32, u64)>,
}

/// One configuration: the family expressions with the width substituted,
/// leaving only the batch symbol free.
struct Instance {
    family: Arc<Family>,
    stats: InternedGraphStats,
    uniq_elems: Vec<ExprId>,
}

/// A cache of width-symbolic model families and their per-configuration
/// instantiations. Cheap to share across threads; sweeps call
/// [`characterize`](FamilyEngine::characterize) from rayon workers.
pub struct FamilyEngine {
    families: Mutex<HashMap<String, Arc<Family>>>,
    instances: Mutex<LruCache<Arc<Instance>>>,
}

impl Default for FamilyEngine {
    fn default() -> FamilyEngine {
        FamilyEngine::with_instance_capacity(DEFAULT_INSTANCE_CAPACITY)
    }
}

impl FamilyEngine {
    /// A fresh, empty engine (cold caches — what the sweep benchmark times).
    pub fn new() -> FamilyEngine {
        FamilyEngine::default()
    }

    /// An engine whose instance cache holds at most `capacity` entries.
    pub fn with_instance_capacity(capacity: usize) -> FamilyEngine {
        FamilyEngine {
            families: Mutex::new(HashMap::new()),
            instances: Mutex::new(LruCache::new(capacity)),
        }
    }

    /// The process-wide engine: families built by any sweep are reused by
    /// later sweeps and by the query server.
    pub fn global() -> &'static FamilyEngine {
        static GLOBAL: OnceLock<FamilyEngine> = OnceLock::new();
        GLOBAL.get_or_init(FamilyEngine::new)
    }

    fn family(&self, cfg: &ModelConfig) -> Arc<Family> {
        let key = cfg.family_key();
        if let Some(f) = self.families.lock().expect("poisoned").get(&key) {
            return Arc::clone(f);
        }
        // Built outside the lock: concurrent misses may build twice, but the
        // results are identical and the first insert wins.
        let model = obs::time("modelzoo.build_family", || cfg.build_family_training());
        let stats = obs::time("engine.family_stats", || model.graph.stats_interned());
        let mut uniq_elems: Vec<ExprId> = Vec::new();
        let mut slot_of: HashMap<ExprId, u32> = HashMap::new();
        let elem_slot = model
            .graph
            .tensors()
            .iter()
            .map(|t| {
                let e = t.shape.elements_id();
                let slot = *slot_of.entry(e).or_insert_with(|| {
                    uniq_elems.push(e);
                    (uniq_elems.len() - 1) as u32
                });
                (slot, t.dtype.size_bytes())
            })
            .collect();
        let family = Arc::new(Family {
            model,
            stats,
            uniq_elems,
            elem_slot,
        });
        Arc::clone(
            self.families
                .lock()
                .expect("poisoned")
                .entry(key)
                .or_insert(family),
        )
    }

    fn instance(&self, cfg: &ModelConfig) -> Arc<Instance> {
        let widths = cfg.family_widths();
        let mut key = cfg.family_key();
        for (sym, v) in widths.iter() {
            key.push_str(&format!(";{sym}={v}"));
        }
        if let Some(hit) = self.instances.lock().expect("poisoned").get(&key) {
            return hit;
        }
        let family = self.family(cfg);
        let stats = family.stats.bind_all(&widths);
        let uniq_elems = family
            .uniq_elems
            .iter()
            .map(|e| e.bind_all(&widths))
            .collect();
        let instance = Arc::new(Instance {
            family,
            stats,
            uniq_elems,
        });
        self.instances
            .lock()
            .expect("poisoned")
            .insert(key, instance)
    }

    /// Symbolic counterpart of [`crate::characterize`]: the same
    /// [`CharacterizationPoint`], bit-for-bit, from the cached closed forms.
    pub fn characterize(&self, cfg: &ModelConfig, subbatch: u64) -> CharacterizationPoint {
        let _span = obs::span("analysis.characterize_symbolic")
            .with_arg("domain", cfg.domain().key())
            .with_arg("subbatch", subbatch);
        let inst = self.instance(cfg);
        let bindings = Bindings::new().with(BATCH_SYM, subbatch as f64);
        let n = inst.stats.eval(&bindings).expect("all symbols bound");
        // Mirrors `cgraph::tensor_sizes` exactly: per-tensor rounded element
        // count times the element size, with each distinct element
        // expression evaluated once.
        let uniq: Vec<u64> = inst
            .uniq_elems
            .iter()
            .map(|e| e.eval_u64(&bindings).expect("all symbols bound"))
            .collect();
        let sizes: Vec<u64> = inst
            .family
            .elem_slot
            .iter()
            .map(|&(slot, db)| uniq[slot as usize] * db)
            .collect();
        let fp = footprint_with_sizes(
            &inst.family.model.graph,
            &sizes,
            Scheduler::Best,
            InPlacePolicy::Never,
        );
        CharacterizationPoint {
            params: n.params,
            subbatch,
            flops_per_step: n.flops,
            flops_per_sample: n.flops / subbatch as f64,
            bytes_per_step: n.bytes,
            op_intensity: n.flops / n.bytes,
            footprint_bytes: fp.peak_bytes as f64,
            seq_len: inst.family.model.seq_len,
        }
    }

    /// Characterize a batch of `(configuration, subbatch)` points, with
    /// per-configuration instantiation parallelized over the rayon pool.
    /// Output order matches input order (the shim's `par_iter` collect is
    /// order-preserving), so results are deterministic.
    pub fn characterize_many(&self, jobs: &[(ModelConfig, u64)]) -> Vec<CharacterizationPoint> {
        let _span = obs::span("analysis.characterize_many").with_arg("jobs", jobs.len() as u64);
        jobs.par_iter()
            .map(|(cfg, b)| self.characterize(cfg, *b))
            .collect()
    }

    /// Labels consumed per batch element by `cfg`'s family graph — the
    /// slope of `samples_per_step(b)`. Width-independent, so the cached
    /// family answers without building a concrete instance.
    pub fn labels_per_sample(&self, cfg: &ModelConfig) -> u64 {
        self.family(cfg).model.labels_per_sample
    }

    /// Number of family graphs currently cached.
    pub fn families_built(&self) -> usize {
        self.families.lock().expect("poisoned").len()
    }

    /// Number of per-configuration instances currently cached.
    pub fn instances_cached(&self) -> usize {
        self.instances.lock().expect("poisoned").len()
    }

    /// Bound on the instance cache.
    pub fn instance_capacity(&self) -> usize {
        self.instances.lock().expect("poisoned").capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modelzoo::Domain;

    #[test]
    fn engine_matches_brute_force_bitwise() {
        let engine = FamilyEngine::new();
        let cfg = ModelConfig::default_for(Domain::WordLm)
            .with_seq_len(6)
            .with_target_params(2_000_000);
        let brute = crate::characterize(&cfg, 16);
        let fast = engine.characterize(&cfg, 16);
        assert_eq!(brute, fast);
    }

    #[test]
    fn one_family_build_serves_a_whole_sweep() {
        let engine = FamilyEngine::new();
        for target in [1_000_000u64, 2_000_000, 4_000_000] {
            let cfg = ModelConfig::default_for(Domain::Nmt)
                .with_seq_len(4)
                .with_target_params(target);
            engine.characterize(&cfg, 8);
        }
        assert_eq!(engine.families_built(), 1);
    }

    #[test]
    fn instance_cache_is_bounded_lru() {
        let engine = FamilyEngine::with_instance_capacity(2);
        for target in [1_000_000u64, 2_000_000, 4_000_000, 8_000_000] {
            let cfg = ModelConfig::default_for(Domain::WordLm)
                .with_seq_len(4)
                .with_target_params(target);
            engine.characterize(&cfg, 8);
        }
        assert_eq!(engine.instances_cached(), 2);
        assert_eq!(engine.instance_capacity(), 2);
        // Eviction must not change results: recompute an evicted width.
        let cfg = ModelConfig::default_for(Domain::WordLm)
            .with_seq_len(4)
            .with_target_params(1_000_000);
        let again = engine.characterize(&cfg, 8);
        let brute = crate::characterize(&cfg, 8);
        assert_eq!(again, brute);
    }

    #[test]
    fn characterize_many_matches_one_by_one() {
        let engine = FamilyEngine::new();
        let jobs: Vec<(ModelConfig, u64)> = [1_000_000u64, 3_000_000]
            .iter()
            .flat_map(|&t| {
                [8u64, 16].iter().map(move |&b| {
                    (
                        ModelConfig::default_for(Domain::CharLm)
                            .with_seq_len(4)
                            .with_target_params(t),
                        b,
                    )
                })
            })
            .collect();
        let batch = engine.characterize_many(&jobs);
        for (job, point) in jobs.iter().zip(&batch) {
            assert_eq!(*point, engine.characterize(&job.0, job.1));
        }
    }
}
