//! The symbolic sweep engine: characterization sweeps evaluated as closed
//! forms instead of per-point graph rebuilds.
//!
//! A Figure 7–10 sweep evaluates N configurations that differ only in one
//! width hyperparameter. The brute-force path rebuilds the training graph and
//! re-derives every cost expression N times. The engine instead:
//!
//! 1. builds the **family** graph once per structural family — the training
//!    graph with the swept width left as a free symbol
//!    ([`modelzoo::WIDTH_SYM`]), with repeated subgraphs folded by
//!    [`cgraph::fold_classes`] inside `stats()`;
//! 2. per configuration, substitutes the integer width into the cached
//!    symbolic stats and per-tensor element expressions — an **exact**
//!    rational-arithmetic substitution (`Expr::bind_all`), not a float
//!    evaluation;
//! 3. per sweep point, binds the subbatch symbol and evaluates the closed
//!    form; the footprint simulation runs on the family graph against the
//!    substituted size table.
//!
//! Every number produced this way is **bit-identical** to
//! [`characterize`](crate::characterize): substitution commutes with the
//! builders' ring operations on widths, so step 2 reproduces the concrete
//! build's canonical expressions, and the footprint simulation sees the same
//! graph structure and the same byte sizes. The golden equivalence suite
//! (`tests/golden_sweep.rs`) asserts this with `==` on every field.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use cgraph::{footprint_with_sizes, GraphStats, InPlacePolicy, Scheduler};
use modelzoo::{ModelConfig, ModelGraph, BATCH_SYM};
use symath::{Bindings, Expr};

use crate::characterize::CharacterizationPoint;

/// One structural family: the width-symbolic training graph and its cost
/// expressions, shared by every configuration in a sweep.
struct Family {
    model: ModelGraph,
    /// Folded symbolic stats over the batch and width symbols.
    stats: GraphStats,
    /// Deduplicated element-count expressions: an unrolled graph repeats the
    /// same tensor shapes across timesteps/blocks, so the thousands of
    /// per-tensor expressions collapse to a handful of distinct ones.
    /// Substitution and evaluation are pure functions of expression
    /// structure, so sharing one bind/eval per distinct expression is exact.
    uniq_elems: Vec<Expr>,
    /// Per tensor (indexed like `model.graph.tensors()`): which entry of
    /// `uniq_elems` counts its elements, and its element size in bytes.
    elem_slot: Vec<(u32, u64)>,
}

/// One configuration: the family expressions with the width substituted,
/// leaving only the batch symbol free.
struct Instance {
    family: Arc<Family>,
    stats: GraphStats,
    uniq_elems: Vec<Expr>,
}

/// A cache of width-symbolic model families and their per-configuration
/// instantiations. Cheap to share across threads; sweeps call
/// [`characterize`](FamilyEngine::characterize) from rayon workers.
#[derive(Default)]
pub struct FamilyEngine {
    families: Mutex<HashMap<String, Arc<Family>>>,
    instances: Mutex<HashMap<String, Arc<Instance>>>,
}

fn bind_stats(stats: &GraphStats, widths: &Bindings) -> GraphStats {
    GraphStats {
        flops: stats.flops.bind_all(widths),
        flops_forward: stats.flops_forward.bind_all(widths),
        flops_backward: stats.flops_backward.bind_all(widths),
        flops_update: stats.flops_update.bind_all(widths),
        bytes: stats.bytes.bind_all(widths),
        bytes_read: stats.bytes_read.bind_all(widths),
        bytes_written: stats.bytes_written.bind_all(widths),
        params: stats.params.bind_all(widths),
        io: stats.io.bind_all(widths),
    }
}

impl FamilyEngine {
    /// A fresh, empty engine (cold caches — what the sweep benchmark times).
    pub fn new() -> FamilyEngine {
        FamilyEngine::default()
    }

    /// The process-wide engine: families built by any sweep are reused by
    /// later sweeps and by the query server.
    pub fn global() -> &'static FamilyEngine {
        static GLOBAL: OnceLock<FamilyEngine> = OnceLock::new();
        GLOBAL.get_or_init(FamilyEngine::new)
    }

    fn family(&self, cfg: &ModelConfig) -> Arc<Family> {
        let key = cfg.family_key();
        if let Some(f) = self.families.lock().expect("poisoned").get(&key) {
            return Arc::clone(f);
        }
        // Built outside the lock: concurrent misses may build twice, but the
        // results are identical and the first insert wins.
        let model = obs::time("modelzoo.build_family", || cfg.build_family_training());
        let stats = obs::time("engine.family_stats", || model.graph.stats());
        let mut uniq_elems: Vec<Expr> = Vec::new();
        let mut slot_of: HashMap<Expr, u32> = HashMap::new();
        let elem_slot = model
            .graph
            .tensors()
            .iter()
            .map(|t| {
                let e = t.shape.elements();
                let slot = *slot_of.entry(e.clone()).or_insert_with(|| {
                    uniq_elems.push(e);
                    (uniq_elems.len() - 1) as u32
                });
                (slot, t.dtype.size_bytes())
            })
            .collect();
        let family = Arc::new(Family {
            model,
            stats,
            uniq_elems,
            elem_slot,
        });
        Arc::clone(
            self.families
                .lock()
                .expect("poisoned")
                .entry(key)
                .or_insert(family),
        )
    }

    fn instance(&self, cfg: &ModelConfig) -> Arc<Instance> {
        let widths = cfg.family_widths();
        let mut key = cfg.family_key();
        for (sym, v) in widths.iter() {
            key.push_str(&format!(";{sym}={v}"));
        }
        if let Some(i) = self.instances.lock().expect("poisoned").get(&key) {
            return Arc::clone(i);
        }
        let family = self.family(cfg);
        let stats = bind_stats(&family.stats, &widths);
        let uniq_elems = family
            .uniq_elems
            .iter()
            .map(|e| e.bind_all(&widths))
            .collect();
        let instance = Arc::new(Instance {
            family,
            stats,
            uniq_elems,
        });
        Arc::clone(
            self.instances
                .lock()
                .expect("poisoned")
                .entry(key)
                .or_insert(instance),
        )
    }

    /// Symbolic counterpart of [`crate::characterize`]: the same
    /// [`CharacterizationPoint`], bit-for-bit, from the cached closed forms.
    pub fn characterize(&self, cfg: &ModelConfig, subbatch: u64) -> CharacterizationPoint {
        let _span = obs::span("analysis.characterize_symbolic")
            .with_arg("domain", cfg.domain().key())
            .with_arg("subbatch", subbatch);
        let inst = self.instance(cfg);
        let bindings = Bindings::new().with(BATCH_SYM, subbatch as f64);
        let n = inst.stats.eval(&bindings).expect("all symbols bound");
        // Mirrors `cgraph::tensor_sizes` exactly: per-tensor rounded element
        // count times the element size, with each distinct element
        // expression evaluated once.
        let uniq: Vec<u64> = inst
            .uniq_elems
            .iter()
            .map(|e| e.eval_u64(&bindings).expect("all symbols bound"))
            .collect();
        let sizes: Vec<u64> = inst
            .family
            .elem_slot
            .iter()
            .map(|&(slot, db)| uniq[slot as usize] * db)
            .collect();
        let fp = footprint_with_sizes(
            &inst.family.model.graph,
            &sizes,
            Scheduler::Best,
            InPlacePolicy::Never,
        );
        CharacterizationPoint {
            params: n.params,
            subbatch,
            flops_per_step: n.flops,
            flops_per_sample: n.flops / subbatch as f64,
            bytes_per_step: n.bytes,
            op_intensity: n.flops / n.bytes,
            footprint_bytes: fp.peak_bytes as f64,
            seq_len: inst.family.model.seq_len,
        }
    }

    /// Number of family graphs currently cached.
    pub fn families_built(&self) -> usize {
        self.families.lock().expect("poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modelzoo::Domain;

    #[test]
    fn engine_matches_brute_force_bitwise() {
        let engine = FamilyEngine::new();
        let cfg = ModelConfig::default_for(Domain::WordLm)
            .with_seq_len(6)
            .with_target_params(2_000_000);
        let brute = crate::characterize(&cfg, 16);
        let fast = engine.characterize(&cfg, 16);
        assert_eq!(brute, fast);
    }

    #[test]
    fn one_family_build_serves_a_whole_sweep() {
        let engine = FamilyEngine::new();
        for target in [1_000_000u64, 2_000_000, 4_000_000] {
            let cfg = ModelConfig::default_for(Domain::Nmt)
                .with_seq_len(4)
                .with_target_params(target);
            engine.characterize(&cfg, 8);
        }
        assert_eq!(engine.families_built(), 1);
    }
}
