//! SLO plan search over the accelerator registry for a served model.
//!
//! Glue between the inference characterization pipeline and
//! [`parsim::infer_search`]: build one [`parsim::InferProfile`] per
//! (accelerator, decode batch) from the symbolic
//! [`InferEngine`](crate::InferEngine) sweep (batched through
//! `characterize_grid`, so the model math runs once per batch size, not once
//! per device) and roofline timing — then hand the space to the pruned
//! search. The serving analogue of [`plan_search`](crate::plan_search).

use parsim::{InferProfile, InferSearchResult, InferSearchSpace, SloTarget};
use roofline::{roofline_time, Accelerator};

use crate::plansearch::PLAN_USABLE_MEM_FRACTION;
use crate::{InferConfig, InferEngine};

/// What to search over for one served model.
#[derive(Clone, Debug)]
pub struct InferPlanRequest {
    /// The served configuration.
    pub config: InferConfig,
    /// Accelerators to rank, as `(registry key, configuration)` pairs.
    pub accels: Vec<(String, Accelerator)>,
    /// Decode batch-size candidates.
    pub batches: Vec<u64>,
    /// Prompt length (prefill tokens per sequence; sets TTFT).
    pub prompt: u64,
    /// Decode context length the KV cache is sized for.
    pub context: u64,
    /// The latency SLO.
    pub slo: SloTarget,
    /// Aggregate fleet throughput demand, tokens/s.
    pub target_tokens_per_s: f64,
    /// Hard cap on total accelerators (= replicas).
    pub max_total_accelerators: u64,
}

impl InferPlanRequest {
    /// Search the full registry over a power-of-four decode batch ladder,
    /// like `/v1/infer/plan`'s defaults.
    pub fn registry_default(
        config: InferConfig,
        prompt: u64,
        context: u64,
        slo: SloTarget,
        target_tokens_per_s: f64,
        max_total: u64,
    ) -> Self {
        InferPlanRequest {
            config,
            accels: Accelerator::registry()
                .into_iter()
                .map(|(k, a)| (k.to_string(), a))
                .collect(),
            batches: vec![1, 4, 16, 64, 256],
            prompt,
            context,
            slo,
            target_tokens_per_s,
            max_total_accelerators: max_total,
        }
    }
}

/// Build the joint [`InferSearchSpace`] for a request: each batch size is
/// characterized once through the symbolic engine, then re-priced per
/// accelerator by the roofline (prefill and decode separately). Memory per
/// replica is [`InferPoint::serving_bytes`](crate::InferPoint::serving_bytes)
/// — weights plus the batch's KV cache at the requested context length.
pub fn infer_search_space(req: &InferPlanRequest) -> InferSearchSpace {
    let _span = obs::span("analysis.infer_search_space")
        .with_arg("accels", req.accels.len() as u64)
        .with_arg("batches", req.batches.len() as u64);
    let grid: Vec<(u64, u64)> = req.batches.iter().map(|&b| (b, req.context)).collect();
    let points = InferEngine::global().characterize_grid(&req.config, req.prompt, &grid);
    let mut profiles = Vec::with_capacity(req.accels.len() * points.len());
    for (key, accel) in &req.accels {
        for point in &points {
            let prefill = roofline_time(point.prefill_flops, point.prefill_bytes, accel);
            let decode = roofline_time(point.decode_flops, point.decode_bytes, accel);
            profiles.push(InferProfile {
                accel_key: key.clone(),
                accel: accel.clone(),
                batch: point.batch,
                prefill_seconds: prefill.seconds,
                decode_step_seconds: decode.seconds,
                mem_bytes: point.serving_bytes(),
            });
        }
    }
    InferSearchSpace {
        profiles,
        replica_candidates: parsim::pow2_candidates(req.max_total_accelerators),
        max_total_accelerators: req.max_total_accelerators,
        usable_mem_fraction: PLAN_USABLE_MEM_FRACTION,
        slo: req.slo,
        target_tokens_per_s: req.target_tokens_per_s,
    }
}

/// Run the pruned SLO plan search for a request.
pub fn infer_plan(req: &InferPlanRequest) -> InferSearchResult {
    parsim::infer_search(&infer_search_space(req))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_request() -> InferPlanRequest {
        InferPlanRequest::registry_default(
            InferConfig::default(),
            512,
            1024,
            SloTarget {
                p99_token_seconds: 0.050,
                ttft_seconds: 0.500,
            },
            20_000.0,
            64,
        )
    }

    #[test]
    fn registry_search_is_feasible_and_matches_naive() {
        let req = default_request();
        let space = infer_search_space(&req);
        assert_eq!(
            space.profiles.len(),
            req.accels.len() * req.batches.len(),
            "one profile per (accelerator, batch)"
        );
        let result = parsim::infer_search(&space);
        assert_eq!(result.feasible, parsim::enumerate_infer_naive(&space));
        let best = result.best.expect("a feasible serving plan exists");
        assert!(best.p99_token_seconds <= req.slo.p99_token_seconds);
        assert!(best.ttft_seconds <= req.slo.ttft_seconds);
        assert!(best.tokens_per_s >= req.target_tokens_per_s);
        assert!(best.total_accelerators <= req.max_total_accelerators);
    }

    #[test]
    fn argmin_replicas_are_minimal_on_the_ladder() {
        // Hand-check the argmin: no smaller replica count on the pow2 ladder
        // can meet the throughput demand with the chosen profile.
        let req = default_request();
        let space = infer_search_space(&req);
        let result = parsim::infer_search(&space);
        let best = result.best.expect("feasible");
        let per_replica = best.tokens_per_s / best.replicas as f64;
        if best.replicas > 1 {
            assert!(
                (best.replicas / 2) as f64 * per_replica < req.target_tokens_per_s,
                "half the replicas would already meet the demand"
            );
        }
    }

    #[test]
    fn faster_memory_serves_tokens_faster() {
        // Decode is memory-bound, so at equal batch the A100's step beats
        // the V100's and the H100's beats the A100's.
        let space = infer_search_space(&default_request());
        let step = |k: &str, b: u64| {
            space
                .profiles
                .iter()
                .find(|p| p.accel_key == k && p.batch == b)
                .expect("registry profile")
                .decode_step_seconds
        };
        assert!(step("a100", 64) < step("v100", 64));
        assert!(step("h100", 64) < step("a100", 64));
    }
}
