//! `analysis` — the characterization and projection pipeline of Hestness et
//! al. (PPoPP 2019), assembled from the workspace substrates:
//!
//! * [`characterize`]/[`sweep_domain`] — Figures 7–10 measurements over
//!   [`modelzoo`] graphs via [`cgraph`]'s cost model (rayon-parallel).
//! * [`FamilyEngine`] — the symbolic sweep engine: one width-symbolic family
//!   graph per domain, folded cost classes, exact per-point substitution —
//!   bit-identical to the brute-force walk, an order of magnitude faster.
//! * [`fit_trends`] — the Table 2 asymptotic coefficients (γ, λ, µ, δ).
//! * [`subbatch_analysis`] — the §5.2.1 / Figure 11 subbatch selection.
//! * [`frontier_row`]/[`table3`] — the Table 3 frontier training
//!   requirements, combining [`scaling`] projections with [`roofline`]
//!   timing.
//! * [`word_lm_case_study`] — the §6 / Table 5 parallelization case study on
//!   top of [`parsim`].
//! * [`hardware_sensitivity`] — the §6.2.3 design-space exploration: which
//!   hardware resource helps which workload.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod casestudy;
mod characterize;
mod engine;
mod frontier;
mod infer;
mod inferplan;
mod lru;
mod plansearch;
mod sensitivity;
mod subbatch;
mod trends;
mod verify;

pub use casestudy::{lstm_p_config, word_lm_case_study, CaseStudy, CaseStudyRow};
pub use characterize::{
    characterize, characterize_averaged, sweep_domain, sweep_domain_batches, CharacterizationPoint,
};
pub use engine::FamilyEngine;
pub use frontier::{frontier_row, table3, FrontierRow};
pub use infer::{
    characterize_infer, kv_cache_expr, kv_cache_id, serving_case_study, InferConfig, InferEngine,
    InferPoint, ServingCaseStudy, ServingRow, KV_DTYPE_BYTES,
};
pub use inferplan::{infer_plan, infer_search_space, InferPlanRequest};
pub use plansearch::{
    plan_search, plan_search_space, synthetic_stages, PlanSearchRequest, PLAN_USABLE_MEM_FRACTION,
};
pub use sensitivity::{hardware_sensitivity, hardware_variants, HardwareVariant, SensitivityPoint};
pub use subbatch::{fig11_batches, subbatch_analysis, SubbatchAnalysis, SubbatchPoint};
pub use trends::{fit_domain_trends, fit_trends, DomainTrends};
pub use verify::{verify_first_order, ErrorStats, VerificationReport};
