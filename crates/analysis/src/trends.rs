//! Asymptotic trend fits (paper §4.2–4.5, Table 2): extract γ, λ, µ, δ from
//! characterization sweeps.

use modelzoo::Domain;
use scaling::{fit_access_model, fit_proportional};
use serde::{Deserialize, Serialize};

use crate::characterize::CharacterizationPoint;

/// The paper's first-order per-domain requirement model (one Table 2 row):
///
/// * FLOPs per sample:      `c_t(p) ≈ γ·p`
/// * bytes per step:        `a_t(p,b) ≈ λ·p + µ·b·√p`
/// * operational intensity: `γ·b·√p / ((λ/√p→)·… )` — derived from the above
/// * minimal footprint:     `f_t(p) ≈ δ·p`
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DomainTrends {
    /// FLOPs per parameter per sample (training step, all phases).
    pub gamma: f64,
    /// Weight-traffic coefficient, bytes per parameter.
    pub lambda: f64,
    /// Activation-traffic coefficient, bytes per `b·√p`.
    pub mu: f64,
    /// Footprint bytes per parameter.
    pub delta: f64,
}

impl DomainTrends {
    /// Predicted FLOPs per training step at `p` parameters and subbatch `b`.
    pub fn flops(&self, p: f64, b: f64) -> f64 {
        self.gamma * p * b
    }

    /// Predicted bytes accessed per training step.
    pub fn bytes(&self, p: f64, b: f64) -> f64 {
        self.lambda * p + self.mu * b * p.sqrt()
    }

    /// Predicted operational intensity (FLOP/B) — the Table 2 closed form
    /// `b·√p / (c₁·√p + c₂·b)` with `c₁ = λ/γ` and `c₂ = µ/γ`.
    pub fn op_intensity(&self, p: f64, b: f64) -> f64 {
        self.flops(p, b) / self.bytes(p, b)
    }

    /// Intensity limit as `p → ∞` at fixed `b`: `γ·b / λ`.
    pub fn intensity_limit_in_p(&self, b: f64) -> f64 {
        self.gamma * b / self.lambda
    }

    /// Intensity limit as `b → ∞` at fixed `p`: `γ·√p / µ`.
    pub fn intensity_limit_in_b(&self, p: f64) -> f64 {
        self.gamma * p.sqrt() / self.mu
    }

    /// Predicted minimal footprint, bytes.
    pub fn footprint(&self, p: f64) -> f64 {
        self.delta * p
    }
}

/// Fit the Table 2 coefficients from sweep points. The sweep must vary both
/// model size and subbatch (use `sweep_domain_batches`); footprint and FLOPs
/// use the largest models, where the asymptotic laws hold.
pub fn fit_trends(points: &[CharacterizationPoint]) -> DomainTrends {
    assert!(points.len() >= 4, "need a sweep to fit trends");
    // γ from per-sample FLOPs vs params.
    let ps: Vec<f64> = points.iter().map(|p| p.params).collect();
    let flops: Vec<f64> = points.iter().map(|p| p.flops_per_sample).collect();
    let gamma = fit_proportional(&ps, &flops);
    // λ, µ from the two-term access model.
    let access: Vec<(f64, f64, f64)> = points
        .iter()
        .map(|p| (p.params, p.subbatch as f64, p.bytes_per_step))
        .collect();
    let (lambda, mu) = fit_access_model(&access);
    // δ from footprint vs params — use batch-independent component by taking
    // the smallest-batch points (weights dominate large models).
    let min_b = points.iter().map(|p| p.subbatch).min().expect("nonempty");
    let fp_pts: Vec<&CharacterizationPoint> =
        points.iter().filter(|p| p.subbatch == min_b).collect();
    let fps: Vec<f64> = fp_pts.iter().map(|p| p.footprint_bytes).collect();
    let fp_params: Vec<f64> = fp_pts.iter().map(|p| p.params).collect();
    let delta = fit_proportional(&fp_params, &fps);
    DomainTrends {
        gamma,
        lambda,
        mu,
        delta,
    }
}

/// Fit Table 2 for one domain by sweeping it (convenience wrapper used by
/// the bench harness).
pub fn fit_domain_trends(
    domain: Domain,
    lo_params: u64,
    hi_params: u64,
    n_points: usize,
    subbatches: &[u64],
) -> DomainTrends {
    let pts = crate::characterize::sweep_domain_batches(
        domain, lo_params, hi_params, n_points, subbatches,
    );
    fit_trends(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::sweep_domain_batches;

    fn wordlm_trends() -> DomainTrends {
        // Fit at large scale: the paper notes the √p form only holds once
        // the hidden dimension dominates the embedding dimension, and the
        // Table 2 asymptotes are explicitly large-model limits.
        let pts = sweep_domain_batches(
            Domain::WordLm,
            300_000_000,
            3_000_000_000,
            3,
            &[16, 64, 128],
        );
        fit_trends(&pts)
    }

    #[test]
    fn wordlm_gamma_is_about_6q() {
        // Table 2: 481 FLOPs/param at q = 80 (≈ 6q: forward 2, backward 4,
        // per unroll step). Our graphs include small pointwise overheads.
        let t = wordlm_trends();
        assert!(
            t.gamma > 380.0 && t.gamma < 620.0,
            "gamma = {} (paper: 481)",
            t.gamma
        );
    }

    #[test]
    fn wordlm_lambda_in_paper_band() {
        // Table 2: 1755 bytes/param (weights re-read every unroll step).
        let t = wordlm_trends();
        assert!(
            t.lambda > 700.0 && t.lambda < 2600.0,
            "lambda = {} (paper: 1755)",
            t.lambda
        );
    }

    #[test]
    fn wordlm_footprint_delta_in_paper_band() {
        // Table 2: 11.94 bytes/param minimal footprint.
        let t = wordlm_trends();
        assert!(
            t.delta > 8.0 && t.delta < 25.0,
            "delta = {} (paper: 11.94)",
            t.delta
        );
    }

    #[test]
    fn predictions_interpolate_measurements() {
        let pts = sweep_domain_batches(Domain::WordLm, 300_000_000, 3_000_000_000, 3, &[16, 128]);
        let t = fit_trends(&pts);
        for p in &pts {
            let pred = t.bytes(p.params, p.subbatch as f64);
            let rel = (pred - p.bytes_per_step).abs() / p.bytes_per_step;
            // The paper calls the two-term form "a good approximation …
            // with a small caveat": terms like the b·q·v output-layer
            // traffic fit neither basis function, so interpolation error
            // up to ~50% at the extremes is expected.
            assert!(rel < 0.5, "bytes prediction off by {rel}");
        }
    }

    #[test]
    fn intensity_limits_are_consistent() {
        let t = DomainTrends {
            gamma: 481.0,
            lambda: 1755.0,
            mu: 30784.0,
            delta: 11.94,
        };
        // At huge p and fixed b, intensity → γb/λ.
        let lim = t.intensity_limit_in_p(128.0);
        let near = t.op_intensity(1e16, 128.0);
        assert!((near / lim - 1.0).abs() < 0.05);
        // At huge b and fixed p, intensity → γ√p/µ.
        let lim_b = t.intensity_limit_in_b(23.8e9);
        let near_b = t.op_intensity(23.8e9, 1e12);
        assert!((near_b / lim_b - 1.0).abs() < 0.05);
    }
}
