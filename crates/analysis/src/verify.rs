//! First-order-model verification (paper §4.1 / Appendix A): the paper
//! states its concise formulas are cross-checked with "high-fidelity
//! modeling" — in Catamount, full symbolic graph evaluation. This module is
//! that check: fit the Table 2 trends on one grid of models, then measure a
//! *different* grid exactly through the graph IR and report the prediction
//! error.

use modelzoo::Domain;
use serde::Serialize;

use crate::characterize::{characterize, CharacterizationPoint};
use crate::trends::DomainTrends;

/// Prediction-error summary of one quantity.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ErrorStats {
    /// Mean relative error over the verification grid.
    pub mean_rel: f64,
    /// Worst relative error.
    pub max_rel: f64,
}

impl ErrorStats {
    fn from_errors(errors: &[f64]) -> ErrorStats {
        assert!(!errors.is_empty());
        ErrorStats {
            mean_rel: errors.iter().sum::<f64>() / errors.len() as f64,
            max_rel: errors.iter().fold(0.0f64, |a, &b| a.max(b)),
        }
    }
}

/// Verification report: first-order predictions vs exact graph measurement.
#[derive(Clone, Debug, Serialize)]
pub struct VerificationReport {
    /// The domain verified.
    #[serde(skip)]
    pub domain: Domain,
    /// FLOPs-per-step prediction error (`γ·p·b` vs measured).
    pub flops: ErrorStats,
    /// Bytes-per-step prediction error (`λp + µb√p` vs measured).
    pub bytes: ErrorStats,
    /// Footprint prediction error (`δ·p` vs measured).
    pub footprint: ErrorStats,
    /// Points measured.
    pub points: usize,
}

/// Verify fitted `trends` against exact measurements at the given
/// `(params, subbatch)` grid points.
pub fn verify_first_order(
    domain: Domain,
    trends: &DomainTrends,
    grid: &[(u64, u64)],
) -> VerificationReport {
    assert!(!grid.is_empty(), "verification grid must be non-empty");
    let measurements: Vec<CharacterizationPoint> = grid
        .iter()
        .map(|&(params, batch)| {
            let cfg = modelzoo::ModelConfig::default_for(domain).with_target_params(params);
            characterize(&cfg, batch)
        })
        .collect();
    let rel = |pred: f64, meas: f64| (pred - meas).abs() / meas.abs().max(f64::MIN_POSITIVE);
    let flops: Vec<f64> = measurements
        .iter()
        .map(|m| rel(trends.flops(m.params, m.subbatch as f64), m.flops_per_step))
        .collect();
    let bytes: Vec<f64> = measurements
        .iter()
        .map(|m| rel(trends.bytes(m.params, m.subbatch as f64), m.bytes_per_step))
        .collect();
    let footprint: Vec<f64> = measurements
        .iter()
        .map(|m| rel(trends.footprint(m.params), m.footprint_bytes))
        .collect();
    VerificationReport {
        domain,
        flops: ErrorStats::from_errors(&flops),
        bytes: ErrorStats::from_errors(&bytes),
        footprint: ErrorStats::from_errors(&footprint),
        points: measurements.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trends::fit_domain_trends;

    #[test]
    fn wordlm_first_order_predicts_within_bands() {
        // Fit on one grid; verify on strictly larger, unseen models.
        let trends = fit_domain_trends(Domain::WordLm, 300_000_000, 2_000_000_000, 3, &[32, 128]);
        let report = verify_first_order(
            Domain::WordLm,
            &trends,
            &[(2_500_000_000, 64), (4_000_000_000, 128)],
        );
        assert_eq!(report.points, 2);
        assert!(report.flops.max_rel < 0.10, "flops err {:?}", report.flops);
        assert!(report.bytes.max_rel < 0.30, "bytes err {:?}", report.bytes);
        assert!(
            report.footprint.max_rel < 0.40,
            "footprint err {:?}",
            report.footprint
        );
    }

    #[test]
    fn errors_grow_when_extrapolating_into_the_wrong_regime() {
        // Trends fitted at frontier scale mispredict tiny embedding-
        // dominated models — the paper's own caveat about the √p form.
        let trends = fit_domain_trends(Domain::WordLm, 300_000_000, 2_000_000_000, 3, &[32, 128]);
        let small = verify_first_order(Domain::WordLm, &trends, &[(5_000_000, 32)]);
        let large = verify_first_order(Domain::WordLm, &trends, &[(2_500_000_000, 32)]);
        assert!(small.flops.max_rel > large.flops.max_rel);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_grid() {
        let trends = DomainTrends {
            gamma: 481.0,
            lambda: 1755.0,
            mu: 30784.0,
            delta: 11.94,
        };
        let _ = verify_first_order(Domain::WordLm, &trends, &[]);
    }
}
