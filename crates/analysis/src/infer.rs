//! The inference workload family: prefill/decode characterization with
//! symbolic KV-cache accounting.
//!
//! Training characterization prices one step of `fwd + autodiff + update`;
//! serving the same model prices two very different forward-only phases
//! (see [`modelzoo::build_transformer_prefill_dims`] /
//! [`modelzoo::build_transformer_decode_dims`]):
//!
//! * **prefill** — the prompt pass. Training-like matmul shapes,
//!   compute-bound, sets time-to-first-token.
//! * **decode** — one token per sequence per step. Weight and KV-cache
//!   reads dominate; arithmetic intensity collapses to O(1) FLOP/byte and
//!   the accelerator's memory bandwidth, not its peak FLOP/s, prices the
//!   step.
//!
//! The [`InferEngine`] mirrors [`FamilyEngine`](crate::FamilyEngine): one
//! **symbolic family build** per structural configuration (vocab, layers,
//! MLP width, tying) with batch, context length, prompt length, head count,
//! and head dimension left free; per request, the width symbols are
//! substituted **exactly** (`bind_all`, memoized) and the closed forms are
//! evaluated per batch via the compiled stack programs. Every number is
//! **bit-identical** to the brute-force path ([`characterize_infer`]) that
//! rebuilds concrete graphs per point — the builders combine dimensions with
//! ring operations only, so substitution commutes with building.
//!
//! The KV-cache footprint is the interned expression
//! `2 · layers · b · ctx · heads · head_dim · dtype_bytes`
//! ([`kv_cache_expr`]) in exactly the four request symbols, so KV memory
//! sweeps for free alongside the graph stats: one `bind_all` per distinct
//! `(ctx, heads, head_dim)`, one compiled eval per batch.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use cgraph::InternedForwardStats;
use modelzoo::{
    batch, build_transformer_decode_dims, build_transformer_prefill_dims, TransformerConfig,
    BATCH_SYM, CTX_SYM, HEADS_SYM, HEAD_DIM_SYM, PROMPT_SYM,
};
use rayon::prelude::*;
use roofline::{roofline_time, Accelerator, Bound};
use serde::{Deserialize, Serialize};
use symath::{batch_program, Bindings, Expr, ExprId};

use crate::engine::DEFAULT_INSTANCE_CAPACITY;
use crate::lru::LruCache;

/// Bytes per KV-cache element (the builders cache K/V in f32).
pub const KV_DTYPE_BYTES: u64 = 4;

/// Structural configuration of the served Transformer.
///
/// `heads`/`head_dim` are carried as numbers here but enter the symbolic
/// family as free symbols ([`HEADS_SYM`], [`HEAD_DIM_SYM`]) with
/// `d_model = heads · head_dim`; the structural family key covers only the
/// fields that change the graph's shape-independent structure.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InferConfig {
    /// Vocabulary size.
    pub vocab: u64,
    /// Attention head count.
    pub heads: u64,
    /// Per-head dimension (`d_model = heads · head_dim`).
    pub head_dim: u64,
    /// Decoder layers.
    pub layers: u64,
    /// MLP expansion factor.
    pub ff_mult: u64,
    /// Tie the embedding with the output projection.
    pub tied_embedding: bool,
}

impl Default for InferConfig {
    fn default() -> InferConfig {
        InferConfig {
            vocab: 40_000,
            heads: 16,
            head_dim: 64,
            layers: 12,
            ff_mult: 4,
            tied_embedding: true,
        }
    }
}

impl InferConfig {
    /// Model width `d = heads · head_dim`.
    pub fn d_model(&self) -> u64 {
        self.heads * self.head_dim
    }

    /// The equivalent training-side config (seq_len/d_model are overridden
    /// by the inference builders' dims arguments).
    pub fn transformer(&self) -> TransformerConfig {
        TransformerConfig {
            vocab: self.vocab,
            d_model: self.d_model(),
            layers: self.layers,
            seq_len: 1,
            ff_mult: self.ff_mult,
            tied_embedding: self.tied_embedding,
        }
    }

    /// Serving parameter count (decode graph: trunk + output head).
    pub fn param_formula(&self) -> u64 {
        self.transformer().param_formula()
    }

    /// Key of the structural family: every field that changes graph
    /// structure rather than a swept width.
    pub fn family_key(&self) -> String {
        format!(
            "infer;v={};l={};ff={};tied={}",
            self.vocab, self.layers, self.ff_mult, self.tied_embedding
        )
    }
}

/// The KV-cache footprint of a decode step, symbolic in all four request
/// dimensions: `2 · layers · b · ctx · heads · head_dim · 4` bytes (K and V,
/// f32, per layer). Only `layers` is structural.
pub fn kv_cache_expr(layers: u64) -> Expr {
    Expr::int(2)
        * Expr::int(layers as i128)
        * batch()
        * Expr::sym(CTX_SYM)
        * Expr::sym(HEADS_SYM)
        * Expr::sym(HEAD_DIM_SYM)
        * Expr::int(KV_DTYPE_BYTES as i128)
}

/// Interned form of [`kv_cache_expr`] — the id the engine caches and
/// compiled-evals per sweep point.
pub fn kv_cache_id(layers: u64) -> ExprId {
    kv_cache_expr(layers).interned()
}

/// One characterized serving point: a `(batch, prompt, context)` evaluation
/// of a model's prefill and decode phases.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InferPoint {
    /// Decode batch size (concurrent sequences).
    pub batch: u64,
    /// Prompt length (prefill tokens per sequence).
    pub prompt: u64,
    /// Decode context length (prompt + generated so far, current token
    /// included).
    pub context: u64,
    /// Serving parameter count.
    pub params: f64,
    /// Resident weight bytes (f32).
    pub weight_bytes: f64,
    /// Resident KV-cache bytes across the batch at this context length.
    pub kv_cache_bytes: f64,
    /// Prefill-phase algorithmic FLOPs (whole batch).
    pub prefill_flops: f64,
    /// Prefill-phase algorithmic bytes.
    pub prefill_bytes: f64,
    /// Prefill operational intensity, FLOP/B.
    pub prefill_intensity: f64,
    /// Decode-step algorithmic FLOPs (whole batch, one token each).
    pub decode_flops: f64,
    /// Decode-step algorithmic bytes (weights + KV stream + activations).
    pub decode_bytes: f64,
    /// Decode operational intensity, FLOP/B.
    pub decode_intensity: f64,
}

impl InferPoint {
    /// Resident serving memory: weights plus the KV cache. Decode-step
    /// activations are a few `b·d` vectors — noise next to either term —
    /// and are deliberately excluded from the capacity model.
    pub fn serving_bytes(&self) -> f64 {
        self.weight_bytes + self.kv_cache_bytes
    }
}

/// One structural family: symbolic prefill/decode builds and the KV-cache
/// expression, shared by every `(batch, prompt, ctx, heads, head_dim)`
/// request against the same structure.
struct InferFamily {
    prefill: InternedForwardStats,
    decode: InternedForwardStats,
    kv: ExprId,
}

/// A family with `(prompt, ctx, heads, head_dim)` substituted exactly;
/// only the batch symbol remains free.
struct InferInstance {
    prefill: InternedForwardStats,
    decode: InternedForwardStats,
    kv: ExprId,
}

/// The symbolic inference sweep engine (see the module docs).
pub struct InferEngine {
    families: Mutex<HashMap<String, Arc<InferFamily>>>,
    instances: Mutex<LruCache<Arc<InferInstance>>>,
}

impl Default for InferEngine {
    fn default() -> InferEngine {
        InferEngine::with_instance_capacity(DEFAULT_INSTANCE_CAPACITY)
    }
}

impl InferEngine {
    /// A fresh, empty engine (cold caches).
    pub fn new() -> InferEngine {
        InferEngine::default()
    }

    /// An engine whose instance cache holds at most `capacity` entries.
    pub fn with_instance_capacity(capacity: usize) -> InferEngine {
        InferEngine {
            families: Mutex::new(HashMap::new()),
            instances: Mutex::new(LruCache::new(capacity)),
        }
    }

    /// The process-wide engine, shared by sweeps and the query server.
    pub fn global() -> &'static InferEngine {
        static GLOBAL: OnceLock<InferEngine> = OnceLock::new();
        GLOBAL.get_or_init(InferEngine::new)
    }

    fn family(&self, cfg: &InferConfig) -> Arc<InferFamily> {
        let key = cfg.family_key();
        if let Some(f) = self.families.lock().expect("poisoned").get(&key) {
            return Arc::clone(f);
        }
        // Built outside the lock: concurrent misses may build twice, but the
        // results are identical and the first insert wins.
        let tcfg = cfg.transformer();
        let d = Expr::sym(HEADS_SYM) * Expr::sym(HEAD_DIM_SYM);
        let (prefill, decode) = obs::time("modelzoo.build_infer_family", || {
            (
                build_transformer_prefill_dims(&tcfg, Expr::sym(PROMPT_SYM), d.clone()),
                build_transformer_decode_dims(&tcfg, Expr::sym(CTX_SYM), d),
            )
        });
        let family = Arc::new(InferFamily {
            prefill: prefill
                .graph
                .stats_interned()
                .forward_view()
                .expect("prefill graph is forward-only"),
            decode: decode
                .graph
                .stats_interned()
                .forward_view()
                .expect("decode graph is forward-only"),
            kv: kv_cache_id(cfg.layers),
        });
        Arc::clone(
            self.families
                .lock()
                .expect("poisoned")
                .entry(key)
                .or_insert(family),
        )
    }

    fn instance(&self, cfg: &InferConfig, prompt: u64, context: u64) -> Arc<InferInstance> {
        let key = format!(
            "{};p={prompt};ctx={context};h={};hd={}",
            cfg.family_key(),
            cfg.heads,
            cfg.head_dim
        );
        if let Some(hit) = self.instances.lock().expect("poisoned").get(&key) {
            return hit;
        }
        let family = self.family(cfg);
        let widths = Bindings::new()
            .with(PROMPT_SYM, prompt as f64)
            .with(CTX_SYM, context as f64)
            .with(HEADS_SYM, cfg.heads as f64)
            .with(HEAD_DIM_SYM, cfg.head_dim as f64);
        let instance = Arc::new(InferInstance {
            prefill: family.prefill.bind_all(&widths),
            decode: family.decode.bind_all(&widths),
            kv: family.kv.bind_all(&widths),
        });
        self.instances
            .lock()
            .expect("poisoned")
            .insert(key, instance)
    }

    /// Symbolic counterpart of [`characterize_infer`]: the same
    /// [`InferPoint`], bit-for-bit, from the cached closed forms.
    pub fn characterize(
        &self,
        cfg: &InferConfig,
        infer_batch: u64,
        prompt: u64,
        context: u64,
    ) -> InferPoint {
        let _span = obs::span("analysis.characterize_infer_symbolic")
            .with_arg("batch", infer_batch)
            .with_arg("context", context);
        let inst = self.instance(cfg, prompt, context);
        let bindings = Bindings::new().with(BATCH_SYM, infer_batch as f64);
        let prefill = inst.prefill.eval(&bindings).expect("all symbols bound");
        let decode = inst.decode.eval(&bindings).expect("all symbols bound");
        let kv = inst.kv.eval(&bindings).expect("all symbols bound");
        InferPoint {
            batch: infer_batch,
            prompt,
            context,
            params: decode.params,
            weight_bytes: 4.0 * decode.params,
            kv_cache_bytes: kv,
            prefill_flops: prefill.flops,
            prefill_bytes: prefill.bytes,
            prefill_intensity: prefill.operational_intensity(),
            decode_flops: decode.flops,
            decode_bytes: decode.bytes,
            decode_intensity: decode.operational_intensity(),
        }
    }

    /// Price one instance at several batch sizes through the batched
    /// register VM: the six closed forms an [`InferPoint`] reads evaluate
    /// across all batches in one grid pass. Bit-identical to
    /// [`characterize`](InferEngine::characterize) per batch — same per-root
    /// f64 operation order, and the intensity ratios divide the same values.
    fn characterize_instance(
        &self,
        inst: &InferInstance,
        prompt: u64,
        context: u64,
        batches: &[u64],
    ) -> Vec<InferPoint> {
        if batches.is_empty() {
            return Vec::new();
        }
        let roots = [
            inst.decode.params,
            inst.prefill.flops,
            inst.prefill.bytes,
            inst.decode.flops,
            inst.decode.bytes,
            inst.kv,
        ];
        let prog = batch_program(&roots);
        let points: Vec<Bindings> = batches
            .iter()
            .map(|&b| Bindings::new().with(BATCH_SYM, b as f64))
            .collect();
        let grid = prog.eval_grid(&points).expect("grid is non-empty");
        let val =
            |root: usize, p: usize| -> f64 { *grid[root][p].as_ref().expect("all symbols bound") };
        batches
            .iter()
            .enumerate()
            .map(|(p, &batch)| {
                let params = val(0, p);
                let prefill_flops = val(1, p);
                let prefill_bytes = val(2, p);
                let decode_flops = val(3, p);
                let decode_bytes = val(4, p);
                InferPoint {
                    batch,
                    prompt,
                    context,
                    params,
                    weight_bytes: 4.0 * params,
                    kv_cache_bytes: val(5, p),
                    prefill_flops,
                    prefill_bytes,
                    prefill_intensity: prefill_flops / prefill_bytes,
                    decode_flops,
                    decode_bytes,
                    decode_intensity: decode_flops / decode_bytes,
                }
            })
            .collect()
    }

    /// Characterize a `(batch, context)` grid at one prompt length. Rows
    /// sharing a context share an instance and are priced in one batched-VM
    /// pass ([`characterize_instance`]); contexts run on the rayon pool.
    /// Output order matches input order, so results are deterministic — and
    /// bit-identical to calling [`characterize`](InferEngine::characterize)
    /// per row.
    ///
    /// [`characterize_instance`]: InferEngine::characterize_instance
    pub fn characterize_grid(
        &self,
        cfg: &InferConfig,
        prompt: u64,
        grid: &[(u64, u64)],
    ) -> Vec<InferPoint> {
        let _span = obs::span("analysis.characterize_infer_grid").with_arg("jobs", grid.len());
        let mut order: Vec<u64> = Vec::new();
        let mut groups: HashMap<u64, Vec<(usize, u64)>> = HashMap::new();
        for (i, &(b, ctx)) in grid.iter().enumerate() {
            let rows = groups.entry(ctx).or_insert_with(|| {
                order.push(ctx);
                Vec::new()
            });
            rows.push((i, b));
        }
        let grouped: Vec<(u64, Vec<(usize, u64)>)> = order
            .iter()
            .map(|ctx| (*ctx, groups.remove(ctx).expect("grouped by context")))
            .collect();
        let mut out: Vec<Option<InferPoint>> = vec![None; grid.len()];
        let results: Vec<Vec<(usize, InferPoint)>> = grouped
            .par_iter()
            .map(|(ctx, rows)| {
                let inst = self.instance(cfg, prompt, *ctx);
                let batches: Vec<u64> = rows.iter().map(|&(_, b)| b).collect();
                rows.iter()
                    .map(|&(i, _)| i)
                    .zip(self.characterize_instance(&inst, prompt, *ctx, &batches))
                    .collect()
            })
            .collect();
        for (i, p) in results.into_iter().flatten() {
            out[i] = Some(p);
        }
        out.into_iter()
            .map(|p| p.expect("every row priced"))
            .collect()
    }

    /// Number of family builds currently cached.
    pub fn families_built(&self) -> usize {
        self.families.lock().expect("poisoned").len()
    }

    /// Number of per-`(prompt, ctx, heads, head_dim)` instances cached.
    pub fn instances_cached(&self) -> usize {
        self.instances.lock().expect("poisoned").len()
    }

    /// Bound on the instance cache.
    pub fn instance_capacity(&self) -> usize {
        self.instances.lock().expect("poisoned").capacity()
    }
}

/// The brute-force oracle: build concrete prefill/decode graphs for this
/// exact `(batch, prompt, context)` point and walk their costs directly.
/// [`InferEngine::characterize`] must reproduce this bit-for-bit.
pub fn characterize_infer(
    cfg: &InferConfig,
    infer_batch: u64,
    prompt: u64,
    context: u64,
) -> InferPoint {
    let _span = obs::span("analysis.characterize_infer")
        .with_arg("batch", infer_batch)
        .with_arg("context", context);
    let tcfg = cfg.transformer();
    let d = cfg.d_model();
    let bindings = Bindings::new().with(BATCH_SYM, infer_batch as f64);
    let prefill = build_transformer_prefill_dims(&tcfg, prompt, d)
        .graph
        .stats_interned()
        .forward_view()
        .expect("prefill graph is forward-only")
        .eval(&bindings)
        .expect("bound");
    let decode = build_transformer_decode_dims(&tcfg, context, d)
        .graph
        .stats_interned()
        .forward_view()
        .expect("decode graph is forward-only")
        .eval(&bindings)
        .expect("bound");
    // Direct product, no symbolics: every factor and every partial product
    // is an integer far below 2^53, so this is exact — and therefore
    // bit-identical to the engine's compiled evaluation of the interned
    // KV expression (which computes the same integer).
    let kv = 2.0
        * cfg.layers as f64
        * infer_batch as f64
        * context as f64
        * cfg.heads as f64
        * cfg.head_dim as f64
        * KV_DTYPE_BYTES as f64;
    InferPoint {
        batch: infer_batch,
        prompt,
        context,
        params: decode.params,
        weight_bytes: 4.0 * decode.params,
        kv_cache_bytes: kv,
        prefill_flops: prefill.flops,
        prefill_bytes: prefill.bytes,
        prefill_intensity: prefill.operational_intensity(),
        decode_flops: decode.flops,
        decode_bytes: decode.bytes,
        decode_intensity: decode.operational_intensity(),
    }
}

/// One row of the serving case study: a decode batch size priced on a fixed
/// accelerator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct ServingRow {
    /// Decode batch size.
    pub batch: u64,
    /// Prefill seconds (whole batch, roofline).
    pub prefill_seconds: f64,
    /// Time to first token: prefill + one decode step.
    pub ttft_seconds: f64,
    /// One decode step, seconds (one token per sequence).
    pub decode_step_seconds: f64,
    /// Binding resource of the decode step.
    pub decode_bound: Bound,
    /// Decode arithmetic intensity, FLOP/B.
    pub decode_intensity: f64,
    /// Aggregate decode throughput, tokens/s.
    pub tokens_per_s: f64,
    /// Decode-phase algorithmic FLOP utilization.
    pub decode_flop_utilization: f64,
    /// Resident memory (weights + KV), GB.
    pub serving_gb: f64,
}

/// Table-5-style serving case study: one model, one accelerator, a batch
/// ladder showing the decode phase pinned to the memory roof.
#[derive(Clone, Debug, Serialize)]
pub struct ServingCaseStudy {
    /// The served configuration.
    pub config: InferConfig,
    /// Serving parameter count.
    pub params: f64,
    /// Prompt length used for prefill/TTFT rows.
    pub prompt: u64,
    /// Decode context length.
    pub context: u64,
    /// The accelerator's achievable ridge point, FLOP/B — intensities below
    /// it price off memory bandwidth.
    pub ridge_point: f64,
    /// Rows in ascending batch order.
    pub rows: Vec<ServingRow>,
}

/// Run the serving case study for `cfg` on `accel`: sweep the decode batch
/// ladder and price both phases with the roofline. The decode phase stays
/// **memory-bound** at every batch size — batching amortizes the weight
/// stream but grows the KV stream in lockstep, so intensity never climbs
/// over the ridge the way training steps do.
pub fn serving_case_study(
    cfg: &InferConfig,
    accel: &Accelerator,
    prompt: u64,
    context: u64,
    batches: &[u64],
) -> ServingCaseStudy {
    let _span = obs::span("analysis.serving_case_study").with_arg("batches", batches.len());
    let engine = InferEngine::global();
    let rows = batches
        .iter()
        .map(|&b| {
            let p = engine.characterize(cfg, b, prompt, context);
            let prefill = roofline_time(p.prefill_flops, p.prefill_bytes, accel);
            let decode = roofline_time(p.decode_flops, p.decode_bytes, accel);
            ServingRow {
                batch: b,
                prefill_seconds: prefill.seconds,
                ttft_seconds: prefill.seconds + decode.seconds,
                decode_step_seconds: decode.seconds,
                decode_bound: decode.bound,
                decode_intensity: p.decode_intensity,
                tokens_per_s: b as f64 / decode.seconds,
                decode_flop_utilization: decode.flop_utilization,
                serving_gb: p.serving_bytes() / 1e9,
            }
        })
        .collect();
    let params = engine
        .characterize(cfg, batches.first().copied().unwrap_or(1), prompt, context)
        .params;
    ServingCaseStudy {
        config: *cfg,
        params,
        prompt,
        context,
        ridge_point: accel.achievable_ridge_point(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> InferConfig {
        InferConfig {
            vocab: 2000,
            heads: 4,
            head_dim: 16,
            layers: 3,
            ff_mult: 4,
            tied_embedding: true,
        }
    }

    #[test]
    fn engine_matches_brute_force_bitwise() {
        let engine = InferEngine::new();
        let cfg = small();
        for (b, p, ctx) in [(1u64, 8u64, 8u64), (4, 16, 48), (32, 8, 512)] {
            let brute = characterize_infer(&cfg, b, p, ctx);
            let fast = engine.characterize(&cfg, b, p, ctx);
            assert_eq!(brute, fast, "b={b} p={p} ctx={ctx}");
        }
    }

    #[test]
    fn one_family_build_serves_a_whole_grid() {
        let engine = InferEngine::new();
        let cfg = small();
        let grid: Vec<(u64, u64)> = [1u64, 4, 16]
            .iter()
            .flat_map(|&b| [32u64, 64, 128].iter().map(move |&c| (b, c)))
            .collect();
        let points = engine.characterize_grid(&cfg, 16, &grid);
        assert_eq!(engine.families_built(), 1);
        assert_eq!(points.len(), grid.len());
        for (i, &(b, ctx)) in grid.iter().enumerate() {
            assert_eq!(points[i], engine.characterize(&cfg, b, 16, ctx));
        }
        // heads·head_dim sweeps reuse the same family too.
        let wider = InferConfig {
            heads: 8,
            head_dim: 32,
            ..cfg
        };
        engine.characterize(&wider, 4, 16, 64);
        assert_eq!(engine.families_built(), 1);
    }

    #[test]
    fn instance_cache_is_bounded_lru() {
        let engine = InferEngine::with_instance_capacity(2);
        let cfg = small();
        for ctx in [32u64, 64, 128, 256] {
            engine.characterize(&cfg, 4, 16, ctx);
        }
        assert_eq!(engine.instances_cached(), 2);
        assert_eq!(engine.instance_capacity(), 2);
        // Eviction must not change results.
        let again = engine.characterize(&cfg, 4, 16, 32);
        assert_eq!(again, characterize_infer(&cfg, 4, 16, 32));
    }

    #[test]
    fn kv_cache_matches_decode_graph_io() {
        // The decode graph's IO is the token ids plus the streamed KV inputs,
        // so kv_cache_bytes must equal io minus the 4-byte token per
        // sequence — the interned expression and the graph agree.
        let cfg = small();
        let tcfg = cfg.transformer();
        let (b, ctx) = (8u64, 96u64);
        let io = build_transformer_decode_dims(&tcfg, ctx, cfg.d_model())
            .graph
            .stats_interned()
            .forward_view()
            .unwrap()
            .eval(&Bindings::new().with(BATCH_SYM, b as f64))
            .unwrap()
            .io;
        let p = characterize_infer(&cfg, b, 16, ctx);
        assert_eq!(p.kv_cache_bytes, io - 4.0 * b as f64);
    }

    #[test]
    fn params_match_closed_form() {
        for tied in [true, false] {
            let cfg = InferConfig {
                tied_embedding: tied,
                ..small()
            };
            let p = characterize_infer(&cfg, 1, 8, 8);
            assert_eq!(p.params, cfg.param_formula() as f64, "tied = {tied}");
        }
    }

    #[test]
    fn case_study_decode_is_memory_bound_below_ridge() {
        let accel = Accelerator::v100_like();
        let study = serving_case_study(
            &InferConfig::default(),
            &accel,
            512,
            1024,
            &[1, 4, 16, 64, 256],
        );
        assert_eq!(study.rows.len(), 5);
        for row in &study.rows {
            assert_eq!(
                row.decode_bound,
                Bound::Memory,
                "decode must price off memory bandwidth at batch {}",
                row.batch
            );
            assert!(
                row.decode_intensity < study.ridge_point,
                "batch {}: intensity {:.2} not below ridge {:.2}",
                row.batch,
                row.decode_intensity,
                study.ridge_point
            );
            assert!(row.ttft_seconds > row.prefill_seconds);
        }
        // Batching buys throughput (weight reads amortize)...
        assert!(study.rows[4].tokens_per_s > 4.0 * study.rows[0].tokens_per_s);
        // ...at a per-step latency cost.
        assert!(study.rows[4].decode_step_seconds > study.rows[0].decode_step_seconds);
    }
}
