//! Characterization sweeps: build training graphs across model sizes and
//! measure algorithmic FLOPs, bytes, operational intensity, and minimal
//! memory footprint (paper §4, Figures 7–10).

use cgraph::{footprint, Scheduler};
use modelzoo::{Domain, ModelConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One measured point of a characterization sweep.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationPoint {
    /// Trainable parameters.
    pub params: f64,
    /// Subbatch size the point was profiled with.
    pub subbatch: u64,
    /// Algorithmic FLOPs per training step.
    pub flops_per_step: f64,
    /// FLOPs per training step per batch element (Figure 7's y-axis).
    pub flops_per_sample: f64,
    /// Algorithmic bytes accessed per step (Figure 8).
    pub bytes_per_step: f64,
    /// Operational intensity, FLOP/B (Figure 9).
    pub op_intensity: f64,
    /// Minimal memory footprint in bytes (Figure 10).
    pub footprint_bytes: f64,
    /// Recurrent unroll length used.
    pub seq_len: u64,
}

/// Characterize one configuration at one subbatch size.
pub fn characterize(cfg: &ModelConfig, subbatch: u64) -> CharacterizationPoint {
    let _span = obs::span("analysis.characterize")
        .with_arg("domain", cfg.domain().key())
        .with_arg("subbatch", subbatch);
    let model = obs::time("modelzoo.build_training", || cfg.build_training());
    let bindings = model.bindings_with_batch(subbatch);
    let n = model
        .graph
        .stats()
        .eval(&bindings)
        .expect("all symbols bound");
    let fp = footprint(&model.graph, &bindings, Scheduler::Best).expect("all symbols bound");
    CharacterizationPoint {
        params: n.params,
        subbatch,
        flops_per_step: n.flops,
        flops_per_sample: n.flops / subbatch as f64,
        bytes_per_step: n.bytes,
        op_intensity: n.flops / n.bytes,
        footprint_bytes: fp.peak_bytes as f64,
        seq_len: model.seq_len,
    }
}

/// Characterize a configuration averaged over several sampled unroll
/// lengths, mirroring the paper's 100–500 profiled steps with per-step
/// sequence-length variation (§4.1). Lengths are drawn uniformly from
/// `[q/2, 3q/2]` around the configuration's nominal length with a fixed
/// seed for reproducibility.
pub fn characterize_averaged(
    cfg: &ModelConfig,
    subbatch: u64,
    length_samples: usize,
    seed: u64,
) -> CharacterizationPoint {
    assert!(length_samples >= 1);
    if matches!(cfg.domain(), Domain::ImageClassification) || length_samples == 1 {
        return characterize(cfg, subbatch);
    }
    let nominal = match cfg {
        ModelConfig::WordLm(c) => c.seq_len,
        ModelConfig::CharLm(c) => c.seq_len,
        ModelConfig::Nmt(c) => c.src_len,
        ModelConfig::Speech(c) => c.audio_len,
        ModelConfig::Resnet(_) => unreachable!(),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let lengths: Vec<u64> = (0..length_samples)
        .map(|_| rng.gen_range(nominal / 2..=nominal + nominal / 2).max(2))
        .collect();
    let points: Vec<CharacterizationPoint> = lengths
        .par_iter()
        .map(|&q| characterize(&cfg.with_seq_len(q), subbatch))
        .collect();
    let n = points.len() as f64;
    let mean = |f: fn(&CharacterizationPoint) -> f64| points.iter().map(f).sum::<f64>() / n;
    CharacterizationPoint {
        params: mean(|p| p.params),
        subbatch,
        flops_per_step: mean(|p| p.flops_per_step),
        flops_per_sample: mean(|p| p.flops_per_sample),
        bytes_per_step: mean(|p| p.bytes_per_step),
        op_intensity: mean(|p| p.flops_per_step) / mean(|p| p.bytes_per_step),
        footprint_bytes: mean(|p| p.footprint_bytes),
        seq_len: nominal,
    }
}

/// Sweep a domain across log-spaced parameter targets at its default
/// subbatch (Figures 7–10 x-axes). Points are computed in parallel through
/// the [`FamilyEngine`](crate::FamilyEngine): one width-symbolic family
/// build per domain, then exact substitution per point — bit-identical to
/// calling [`characterize`] per configuration, but without the N rebuilds.
pub fn sweep_domain(
    domain: Domain,
    lo_params: u64,
    hi_params: u64,
    n_points: usize,
) -> Vec<CharacterizationPoint> {
    let _span = obs::span("analysis.sweep_domain")
        .with_arg("domain", domain.key())
        .with_arg("points", n_points);
    let subbatch = domain.default_subbatch();
    let configs = modelzoo::sweep_configs(domain, lo_params, hi_params, n_points);
    let jobs: Vec<(ModelConfig, u64)> = configs.iter().map(|c| (*c, subbatch)).collect();
    let engine = crate::FamilyEngine::global();
    let mut points = engine.characterize_many(&jobs);
    points.sort_by(|a, b| a.params.partial_cmp(&b.params).expect("finite"));
    obs::recorder().counter("analysis.sweep_points", points.len() as f64);
    points
}

/// Sweep a domain at several subbatch sizes (needed to fit the two-term
/// access model `a(p,b) = λp + µb√p`). Uses the symbolic engine: each
/// configuration's closed form is substituted once and evaluated at every
/// subbatch.
pub fn sweep_domain_batches(
    domain: Domain,
    lo_params: u64,
    hi_params: u64,
    n_points: usize,
    subbatches: &[u64],
) -> Vec<CharacterizationPoint> {
    let _span = obs::span("analysis.sweep_domain_batches")
        .with_arg("domain", domain.key())
        .with_arg("points", n_points)
        .with_arg("subbatches", subbatches.len());
    let configs = modelzoo::sweep_configs(domain, lo_params, hi_params, n_points);
    let jobs: Vec<(ModelConfig, u64)> = configs
        .iter()
        .flat_map(|c| subbatches.iter().map(move |&b| (*c, b)))
        .collect();
    crate::FamilyEngine::global().characterize_many(&jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_grow_linearly_with_params_wordlm() {
        // Figure 7: per-sample FLOPs linear in parameter count above ~30M.
        let points = sweep_domain(Domain::WordLm, 20_000_000, 200_000_000, 3);
        assert_eq!(points.len(), 3);
        let ratio0 = points[0].flops_per_sample / points[0].params;
        let ratio2 = points[2].flops_per_sample / points[2].params;
        // FLOPs/param approaches a constant: within 35% across a 10× sweep.
        assert!((ratio0 / ratio2 - 1.0).abs() < 0.35, "{ratio0} vs {ratio2}");
    }

    #[test]
    fn intensity_levels_off_with_model_size() {
        // Figure 9: at fixed subbatch, intensity approaches an asymptote.
        let points = sweep_domain(Domain::Nmt, 20_000_000, 200_000_000, 3);
        let spread = points[2].op_intensity / points[0].op_intensity;
        assert!(spread < 1.6, "intensity should flatten, spread {spread}");
    }

    #[test]
    fn footprint_grows_with_model_size() {
        let points = sweep_domain(Domain::CharLm, 10_000_000, 100_000_000, 3);
        assert!(points
            .windows(2)
            .all(|w| w[1].footprint_bytes > w[0].footprint_bytes));
    }

    #[test]
    fn averaged_characterization_is_reproducible() {
        let cfg = ModelConfig::default_for(Domain::WordLm).with_target_params(5_000_000);
        let a = characterize_averaged(&cfg, 16, 4, 42);
        let b = characterize_averaged(&cfg, 16, 4, 42);
        assert_eq!(a.flops_per_step, b.flops_per_step);
        // A different seed gives (slightly) different unrolls.
        let c = characterize_averaged(&cfg, 16, 4, 43);
        assert_ne!(a.flops_per_step, c.flops_per_step);
    }

    #[test]
    fn resnet_ignores_length_sampling() {
        let cfg =
            ModelConfig::default_for(Domain::ImageClassification).with_target_params(5_000_000);
        let mut small = match cfg {
            ModelConfig::Resnet(c) => c,
            _ => unreachable!(),
        };
        small.image = 64;
        let cfg = ModelConfig::Resnet(small);
        let a = characterize_averaged(&cfg, 4, 5, 1);
        let b = characterize(&cfg, 4);
        assert_eq!(a.flops_per_step, b.flops_per_step);
    }
}
