//! Plan search over the accelerator registry for a domain's frontier model.
//!
//! Glue between the characterization pipeline and [`parsim::search`]: build
//! one [`parsim::CandidateProfile`] per (accelerator, subbatch) from the
//! scaling projection, the symbolic [`FamilyEngine`](crate::FamilyEngine)
//! stats (batched through `characterize_many`, so profile characterization
//! runs on the rayon pool), and roofline timing — then hand the space to
//! the pruned search.

use modelzoo::{Domain, ModelConfig};
use parsim::{CandidateProfile, CommConfig, SearchResult, SearchSpace, Stage, WorkerStep};
use roofline::{roofline_time, Accelerator};
use scaling::scaling_for;

use crate::FamilyEngine;

/// What to search over for one domain.
#[derive(Clone, Debug)]
pub struct PlanSearchRequest {
    /// The domain whose frontier-scale model is being planned.
    pub domain: Domain,
    /// Accelerators to rank, as `(registry key, configuration)` pairs.
    pub accels: Vec<(String, Accelerator)>,
    /// Per-worker subbatch candidates.
    pub subbatches: Vec<u64>,
    /// In-flight microbatch candidates for pipeline variants.
    pub microbatches: Vec<u64>,
    /// Epoch deadline, days.
    pub target_epoch_days: f64,
    /// Hard cap on total accelerators.
    pub max_total_accelerators: u64,
}

impl PlanSearchRequest {
    /// Search the full registry at the domain's default subbatch with
    /// 2-microbatch pipelining, like `/v1/plan`'s defaults.
    pub fn registry_default(domain: Domain, target_epoch_days: f64, max_total: u64) -> Self {
        PlanSearchRequest {
            domain,
            accels: Accelerator::registry()
                .into_iter()
                .map(|(k, a)| (k.to_string(), a))
                .collect(),
            subbatches: vec![domain.default_subbatch()],
            microbatches: vec![2],
            target_epoch_days,
            max_total_accelerators: max_total,
        }
    }
}

/// The usable-memory fraction the server plans against (swap threshold).
pub const PLAN_USABLE_MEM_FRACTION: f64 = 0.8;

/// Split a footprint into just enough equal layer stages that one stage
/// fits comfortably (90% of usable) in `usable` bytes of memory — the same
/// synthetic stage construction `/v1/plan` has always used, now shared by
/// every profile of the search.
pub fn synthetic_stages(footprint_bytes: f64, usable: f64) -> Vec<Stage> {
    let n_stages = ((footprint_bytes / (usable * 0.9)).ceil() as usize).max(1);
    (0..n_stages)
        .map(|i| Stage {
            name: format!("stage{i}"),
            weight_bytes: footprint_bytes * 0.5 / n_stages as f64,
            activation_bytes: footprint_bytes * 0.5 / n_stages as f64,
        })
        .collect()
}

/// Build the joint [`SearchSpace`] for a request: the frontier-scale model
/// of the domain, characterized once per subbatch through the symbolic
/// engine, costed per accelerator by the roofline.
pub fn plan_search_space(req: &PlanSearchRequest) -> SearchSpace {
    let _span = obs::span("analysis.plan_search_space")
        .with_arg("domain", req.domain.key())
        .with_arg("accels", req.accels.len() as u64)
        .with_arg("subbatches", req.subbatches.len() as u64);
    let projection = scaling_for(req.domain).project();
    let cfg = ModelConfig::default_for(req.domain)
        .with_target_params(projection.target_params.round() as u64);
    let engine = FamilyEngine::global();
    let labels_per_sample = engine.labels_per_sample(&cfg);
    // One symbolic characterization per subbatch, batched over the rayon
    // pool; each accelerator then re-prices the same point via its own
    // roofline, so the expensive model math is not repeated per device.
    let jobs: Vec<(ModelConfig, u64)> = req.subbatches.iter().map(|&b| (cfg, b)).collect();
    let points = engine.characterize_many(&jobs);
    let mut profiles = Vec::with_capacity(req.accels.len() * points.len());
    for (key, accel) in &req.accels {
        let usable = accel.mem_capacity * PLAN_USABLE_MEM_FRACTION;
        for point in &points {
            let step_time = roofline_time(point.flops_per_step, point.bytes_per_step, accel);
            profiles.push(CandidateProfile {
                accel_key: key.clone(),
                accel: accel.clone(),
                subbatch: point.subbatch,
                step: WorkerStep {
                    compute_seconds: step_time.seconds,
                    alg_flops: point.flops_per_step,
                    // f32 weights under SGD: one gradient word per parameter.
                    gradient_bytes: 4.0 * point.params,
                    samples_per_step: (point.subbatch * labels_per_sample) as f64,
                },
                footprint_bytes: point.footprint_bytes,
                stages: synthetic_stages(point.footprint_bytes, usable),
            });
        }
    }
    SearchSpace {
        profiles,
        dataset_samples: projection.target_data_samples,
        target_epoch_days: req.target_epoch_days,
        usable_mem_fraction: PLAN_USABLE_MEM_FRACTION,
        worker_candidates: parsim::pow2_candidates(req.max_total_accelerators),
        microbatch_candidates: req.microbatches.clone(),
        max_total_accelerators: req.max_total_accelerators,
        hop_overhead: CommConfig::default().hop_overhead,
    }
}

/// Run the pruned plan search for a request.
pub fn plan_search(req: &PlanSearchRequest) -> SearchResult {
    parsim::search(&plan_search_space(req))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_stages_fit_and_cover() {
        let usable = 25.6e9;
        let stages = synthetic_stages(113.8e9, usable);
        assert!(stages.len() > 1);
        let total: f64 = stages
            .iter()
            .map(|s| s.weight_bytes + s.activation_bytes)
            .sum();
        assert!((total - 113.8e9).abs() < 1.0, "stages cover the footprint");
        for s in &stages {
            assert!(s.weight_bytes + s.activation_bytes <= usable * 0.9 + 1.0);
        }
        assert_eq!(synthetic_stages(1e9, usable).len(), 1);
    }

    #[test]
    fn resnet_registry_search_is_feasible_and_consistent() {
        let req = PlanSearchRequest::registry_default(Domain::ImageClassification, 7.0, 16_384);
        let space = plan_search_space(&req);
        assert_eq!(space.profiles.len(), 4, "one profile per registry part");
        let result = parsim::search(&space);
        assert_eq!(result.feasible, parsim::enumerate_naive(&space));
        let best = result.best.expect("a 7-day ResNet plan exists");
        assert!(best.plan.epoch_days <= 7.0);
        // Faster parts can't be absent from the frontier: with every other
        // dimension shared, at least one non-V100 point must survive.
        assert!(result.feasible.iter().any(|p| p.accel_key != "v100"));
    }

    #[test]
    fn newer_accelerator_never_plans_slower_per_step() {
        // Same model, same subbatch: the A100 profile's roofline step time
        // is no worse than the V100's, so its best feasible plan at equal
        // worker count steps at least as fast.
        let req = PlanSearchRequest::registry_default(Domain::ImageClassification, 30.0, 4_096);
        let space = plan_search_space(&req);
        let by_key = |k: &str| {
            space
                .profiles
                .iter()
                .find(|p| p.accel_key == k)
                .expect("registry profile")
        };
        assert!(by_key("a100").step.compute_seconds <= by_key("v100").step.compute_seconds);
        assert!(by_key("h100").step.compute_seconds <= by_key("a100").step.compute_seconds);
    }
}
