//! Subbatch-size selection (paper §5.2.1, Figure 11).
//!
//! The training-step costs are affine in the subbatch `b`
//! (`F(b) = f₁·b + f₀`, `A(b) = a₁·b + a₀`), so the whole sweep is computed
//! from one symbolically-built graph evaluated at different bindings. Three
//! points of interest:
//!
//! * **ridge match** (blue): `b` where graph-level operational intensity
//!   equals the accelerator's achievable ridge point;
//! * **chosen** (orange): the smallest power of two whose per-sample step
//!   time is within 5% of the asymptotic minimum — the paper's
//!   "smallest subbatch that minimizes training-step time per sample",
//!   which lands ≈1.5× above the ridge match for recurrent models;
//! * **saturation** (green): smallest power of two reaching 95% of the
//!   intensity limit `f₁/a₁`.

use cgraph::{footprint_with_sizes, InPlacePolicy, Scheduler};
use modelzoo::{ModelConfig, ModelGraph};
use roofline::{roofline_time, Accelerator};
use serde::{Deserialize, Serialize};
use symath::Expr;

/// One subbatch sample of Figure 11.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubbatchPoint {
    /// Subbatch size.
    pub batch: u64,
    /// Graph-level operational intensity, FLOP/B.
    pub op_intensity: f64,
    /// Roofline step time, seconds.
    pub step_seconds: f64,
    /// Step time per batch element, seconds (Figure 11's right axis).
    pub sec_per_sample: f64,
    /// Minimal memory footprint at this subbatch, bytes (None when footprint
    /// simulation was skipped for speed).
    pub footprint_bytes: Option<f64>,
}

/// The Figure 11 sweep plus the three points of interest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubbatchAnalysis {
    /// Power-of-two sweep points.
    pub points: Vec<SubbatchPoint>,
    /// Continuous `b` where intensity crosses the achievable ridge point
    /// (None if intensity exceeds the ridge even at `b = 1` or never
    /// reaches it).
    pub ridge_match: Option<f64>,
    /// The selected subbatch (orange point).
    pub chosen: u64,
    /// Intensity-saturation subbatch (green point).
    pub saturation: u64,
    /// Asymptotic intensity limit `f₁/a₁`.
    pub intensity_limit: f64,
}

/// Affine coefficients of an expression in the batch symbol:
/// `e(b) = slope·b + intercept`, extracted exactly from the symbolic form.
fn affine_in_batch(expr: &Expr, _model: &ModelGraph) -> (f64, f64) {
    let sym = symath::Symbol::new(modelzoo::BATCH_SYM);
    let coeffs = expr
        .coefficients_in(sym)
        .expect("graph costs are polynomial in the batch symbol");
    let empty = symath::Bindings::new();
    let mut slope = 0.0;
    let mut intercept = 0.0;
    for (power, coeff) in &coeffs {
        let v = coeff
            .eval(&empty)
            .expect("coefficients are batch-free constants");
        if power.is_zero() {
            intercept = v;
        } else if power.is_one() {
            slope = v;
        } else {
            panic!("graph cost is not affine in the batch symbol: b^{power} term");
        }
    }
    (slope, intercept)
}

/// Run the Figure 11 analysis for one model configuration.
///
/// `batches` are the sweep points (typically powers of two). Footprints are
/// simulated only when `with_footprints` (the simulation is the expensive
/// part at frontier scale).
pub fn subbatch_analysis(
    cfg: &ModelConfig,
    batches: &[u64],
    accel: &Accelerator,
    with_footprints: bool,
) -> SubbatchAnalysis {
    assert!(!batches.is_empty());
    let model = cfg.build_training();
    let stats = model.graph.stats();
    let (f1, f0) = affine_in_batch(&stats.flops, &model);
    let (a1, a0) = affine_in_batch(&stats.bytes, &model);
    assert!(f1 > 0.0 && a1 > 0.0);
    let intensity_limit = f1 / a1;

    // Per-tensor element closed forms, extracted once; each footprint point
    // binds the batch symbol instead of re-walking the graph (the exact
    // rounding `cgraph::tensor_sizes` performs).
    let size_exprs: Option<Vec<(Expr, u64)>> = with_footprints.then(|| {
        model
            .graph
            .tensors()
            .iter()
            .map(|t| (t.shape.elements(), t.dtype.size_bytes()))
            .collect()
    });

    let eval_point = |b: u64| -> SubbatchPoint {
        let bf = b as f64;
        let flops = f1 * bf + f0;
        let bytes = a1 * bf + a0;
        let t = roofline_time(flops, bytes, accel);
        let fp = size_exprs.as_ref().map(|exprs| {
            let bindings = model.bindings_with_batch(b);
            let sizes: Vec<u64> = exprs
                .iter()
                .map(|(e, db)| e.eval_u64(&bindings).expect("bound") * db)
                .collect();
            footprint_with_sizes(&model.graph, &sizes, Scheduler::Best, InPlacePolicy::Never)
                .peak_bytes as f64
        });
        SubbatchPoint {
            batch: b,
            op_intensity: flops / bytes,
            step_seconds: t.seconds,
            sec_per_sample: t.seconds / bf,
            footprint_bytes: fp,
        }
    };

    let points: Vec<SubbatchPoint> = batches.iter().map(|&b| eval_point(b)).collect();

    // Ridge match: solve (f1·b + f0)/(a1·b + a0) = R.
    let ridge = accel.achievable_ridge_point();
    let denom = f1 - ridge * a1;
    let ridge_match = if denom > 0.0 {
        let b = (ridge * a0 - f0) / denom;
        if b >= 1.0 {
            Some(b)
        } else {
            None // intensity already above the ridge at b = 1
        }
    } else {
        None // intensity never reaches the ridge
    };

    // Chosen: smallest sweep batch whose per-sample time is within 5% of the
    // asymptotic per-sample minimum max(f1/…, a1/…).
    let asymptote = (f1 / accel.achievable_flops()).max(a1 / accel.achievable_bw());
    let chosen = points
        .iter()
        .find(|p| p.sec_per_sample <= 1.05 * asymptote)
        .map(|p| p.batch)
        .unwrap_or_else(|| points.last().expect("nonempty").batch);

    // Saturation: smallest sweep batch at 95% of the intensity limit.
    let saturation = points
        .iter()
        .find(|p| p.op_intensity >= 0.95 * intensity_limit)
        .map(|p| p.batch)
        .unwrap_or_else(|| points.last().expect("nonempty").batch);

    SubbatchAnalysis {
        points,
        ridge_match,
        chosen,
        saturation,
        intensity_limit,
    }
}

/// The power-of-two sweep of Figure 11's x-axis: 1 … 262144.
pub fn fig11_batches() -> Vec<u64> {
    (0..=18).map(|i| 1u64 << i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use modelzoo::{Domain, WordLmConfig};

    fn frontier_wordlm() -> ModelConfig {
        // Table 3 scale (23.8B params) with the paper's 40k vocabulary.
        ModelConfig::WordLm(WordLmConfig::default()).with_target_params(23_800_000_000)
    }

    #[test]
    fn wordlm_chosen_subbatch_near_128() {
        // §5.2.1: "subbatch size settles at about 1.5× larger than the
        // ridge-point match", and Table 3 lists 128 for the word LM.
        let a = Accelerator::v100_like();
        let r = subbatch_analysis(&frontier_wordlm(), &fig11_batches(), &a, false);
        assert!(
            (64..=256).contains(&r.chosen),
            "chosen subbatch {} (paper: 128)",
            r.chosen
        );
        let ridge = r.ridge_match.expect("recurrent models cross the ridge");
        let ratio = r.chosen as f64 / ridge;
        assert!(
            (1.0..=3.0).contains(&ratio),
            "chosen/ridge = {ratio} (paper: ≈1.5)"
        );
    }

    #[test]
    fn intensity_increases_and_saturates_with_batch() {
        let a = Accelerator::v100_like();
        let r = subbatch_analysis(&frontier_wordlm(), &fig11_batches(), &a, false);
        for w in r.points.windows(2) {
            assert!(w[1].op_intensity >= w[0].op_intensity);
        }
        let last = r.points.last().expect("nonempty");
        assert!(last.op_intensity <= r.intensity_limit * 1.001);
        assert!(last.op_intensity >= 0.95 * r.intensity_limit);
        assert!(r.saturation > r.chosen / 8); // saturation comes later or near
    }

    #[test]
    fn per_sample_time_is_nonincreasing() {
        let a = Accelerator::v100_like();
        let r = subbatch_analysis(&frontier_wordlm(), &fig11_batches(), &a, false);
        for w in r.points.windows(2) {
            assert!(w[1].sec_per_sample <= w[0].sec_per_sample * 1.0001);
        }
    }

    #[test]
    fn resnet_is_compute_bound_at_tiny_subbatch() {
        // §5: "Even small batch sizes can expose sufficient operational
        // intensity" for CNNs — ridge match at single-digit subbatch.
        let a = Accelerator::v100_like();
        let cfg =
            ModelConfig::default_for(Domain::ImageClassification).with_target_params(732_000_000);
        let r = subbatch_analysis(&cfg, &[1, 2, 4, 8, 16, 32], &a, false);
        assert!(
            r.chosen <= 8,
            "ResNet chosen subbatch {} should be tiny",
            r.chosen
        );
    }

    #[test]
    fn footprints_grow_with_subbatch_when_requested() {
        let a = Accelerator::v100_like();
        let cfg = ModelConfig::default_for(Domain::WordLm).with_target_params(10_000_000);
        let r = subbatch_analysis(&cfg, &[1, 8, 64], &a, true);
        let fps: Vec<f64> = r
            .points
            .iter()
            .map(|p| p.footprint_bytes.expect("requested"))
            .collect();
        assert!(fps.windows(2).all(|w| w[1] > w[0]));
    }
}
