//! Frontier projection (paper Table 3): per-domain training requirements at
//! the target accuracy.

use cgraph::{footprint, Scheduler};
use modelzoo::{Domain, ModelConfig};
use roofline::{epoch_seconds, step_time, to_days, Accelerator, RooflineTime};
use scaling::scaling_for;
use serde::Serialize;

/// One row of Table 3.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FrontierRow {
    /// Domain label.
    pub domain_label: &'static str,
    /// Projected dataset size, samples (words / chars / word-pieces /
    /// images).
    pub data_samples: f64,
    /// Projected model parameters.
    pub params: f64,
    /// Parameters of the concrete model instance built to the projection.
    pub built_params: f64,
    /// Profiling subbatch size.
    pub subbatch: u64,
    /// Algorithmic TFLOPs per training step.
    pub tflops_per_step: f64,
    /// Algorithmic memory access per step, TB.
    pub mem_tb_per_step: f64,
    /// Minimal memory footprint, GB.
    pub min_mem_gb: f64,
    /// Roofline step time.
    pub step: RooflineTime,
    /// Days per epoch on one Table 4 accelerator.
    pub epoch_days: f64,
}

/// Compute one Table 3 row. Builds the frontier-scale model, so this is
/// seconds of work for the language domains.
pub fn frontier_row(domain: Domain, accel: &Accelerator) -> FrontierRow {
    let projection = scaling_for(domain).project();
    let cfg = ModelConfig::default_for(domain)
        .with_target_params(projection.target_params.round() as u64);
    let subbatch = domain.default_subbatch();
    let model = cfg.build_training();
    let bindings = model.bindings_with_batch(subbatch);
    let stats = model.graph.stats().eval(&bindings).expect("bound");
    let fp = footprint(&model.graph, &bindings, Scheduler::Best).expect("bound");
    let step = step_time(&stats, accel);
    let epoch = epoch_seconds(
        projection.target_data_samples,
        model.samples_per_step(subbatch),
        step.seconds,
    );
    FrontierRow {
        domain_label: domain.label(),
        data_samples: projection.target_data_samples,
        params: projection.target_params,
        built_params: stats.params,
        subbatch,
        tflops_per_step: stats.flops / 1e12,
        mem_tb_per_step: stats.bytes / 1e12,
        min_mem_gb: fp.peak_bytes as f64 / 1e9,
        step,
        epoch_days: to_days(epoch),
    }
}

/// All five Table 3 rows.
pub fn table3(accel: &Accelerator) -> Vec<FrontierRow> {
    Domain::ALL
        .iter()
        .map(|&d| frontier_row(d, accel))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_row_matches_paper_bands() {
        // Paper: 28 TFLOPs/step, 0.4 TB/step, 34 GB footprint, 2.3 s step,
        // 84 days/epoch. Loose bands: our ResNet instance is rebuilt from
        // the projection, not transcribed.
        let row = frontier_row(Domain::ImageClassification, &Accelerator::v100_like());
        assert!(
            row.tflops_per_step > 10.0 && row.tflops_per_step < 60.0,
            "tflops {}",
            row.tflops_per_step
        );
        assert!(
            row.step.seconds > 1.0 && row.step.seconds < 5.0,
            "step {}",
            row.step.seconds
        );
        assert!(
            row.epoch_days > 40.0 && row.epoch_days < 180.0,
            "epoch {}",
            row.epoch_days
        );
        assert!(
            row.min_mem_gb > 10.0 && row.min_mem_gb < 80.0,
            "mem {}",
            row.min_mem_gb
        );
    }

    #[test]
    fn speech_row_matches_paper_bands() {
        // Paper: 72 TFLOPs/step, 2.8 TB, 30 GB footprint, 5.8 s step.
        let row = frontier_row(Domain::Speech, &Accelerator::v100_like());
        assert!(
            row.tflops_per_step > 20.0 && row.tflops_per_step < 200.0,
            "tflops {}",
            row.tflops_per_step
        );
        assert!(
            row.min_mem_gb > 10.0 && row.min_mem_gb < 120.0,
            "mem {}",
            row.min_mem_gb
        );
    }

    #[test]
    fn word_lm_row_matches_paper_bands() {
        // Paper: 23.8B params, 1444 TFLOPs/step, 41.5 TB, 272 GB footprint,
        // 115 s step.
        let row = frontier_row(Domain::WordLm, &Accelerator::v100_like());
        assert!(
            (row.built_params / 23.8e9 - 1.0).abs() < 0.15,
            "params {:.3e}",
            row.built_params
        );
        assert!(
            row.tflops_per_step > 900.0 && row.tflops_per_step < 2100.0,
            "tflops {}",
            row.tflops_per_step
        );
        assert!(
            row.mem_tb_per_step > 20.0 && row.mem_tb_per_step < 70.0,
            "mem TB {}",
            row.mem_tb_per_step
        );
        assert!(
            row.min_mem_gb > 150.0 && row.min_mem_gb < 450.0,
            "footprint {}",
            row.min_mem_gb
        );
        assert!(
            row.step.seconds > 80.0 && row.step.seconds < 170.0,
            "step {}",
            row.step.seconds
        );
    }

    #[test]
    fn language_domains_dwarf_image_and_speech() {
        // The paper's headline segmentation: language epochs are years to
        // millennia; image and speech are months.
        let a = Accelerator::v100_like();
        let word = frontier_row(Domain::WordLm, &a);
        let image = frontier_row(Domain::ImageClassification, &a);
        let speech = frontier_row(Domain::Speech, &a);
        assert!(word.epoch_days > 20.0 * image.epoch_days.max(speech.epoch_days));
        // Language domains far exceed the 32 GB accelerator memory (paper:
        // 8–100×); speech and image press against it (paper: 30 and 34 GB;
        // our instances hold fewer transient buffers and land just under).
        assert!(
            word.min_mem_gb > 100.0,
            "word LM footprint {} GB should far exceed capacity",
            word.min_mem_gb
        );
        for row in [&image, &speech] {
            assert!(
                row.min_mem_gb > 15.0,
                "{}: {} GB should press against the 32 GB capacity",
                row.domain_label,
                row.min_mem_gb
            );
        }
    }
}
