//! The §6 word-LM case study (Table 5): step-by-step parallelization of a
//! frontier word LM from one accelerator to 2048.

use cgraph::{footprint, Scheduler, TensorKind};
use modelzoo::{build_word_lm, ModelGraph, WordLmConfig};
use parsim::{
    data_parallel_point, layer_parallel_plan, ring_allreduce_seconds, waterfill_largest_weight,
    CommConfig, Stage, WorkerStep,
};
use roofline::{per_op_step_time, step_time, to_days, Accelerator, CacheModel};
use serde::Serialize;

/// One optimization stage of Table 5.
#[derive(Clone, Debug, Serialize)]
pub struct CaseStudyRow {
    /// Stage label.
    pub stage: &'static str,
    /// Total accelerators.
    pub accelerators: u64,
    /// Global batch size (samples per step across the fleet).
    pub global_batch: u64,
    /// Memory required per accelerator, GB (max over stages when
    /// model-parallel).
    pub mem_per_accel_gb: f64,
    /// Per-stage footprints when layer-parallel (single entry otherwise).
    pub stage_footprints_gb: Vec<f64>,
    /// Days per epoch.
    pub days_per_epoch: f64,
    /// Algorithmic FLOP utilization.
    pub flop_utilization: f64,
}

/// Full Table 5 output.
#[derive(Clone, Debug, Serialize)]
pub struct CaseStudy {
    /// The LSTM-p configuration used.
    pub config: WordLmConfig,
    /// Trainable parameters of the model.
    pub params: f64,
    /// Words in the frontier dataset.
    pub dataset_words: f64,
    /// The optimization stages, in Table 5 order.
    pub rows: Vec<CaseStudyRow>,
}

/// The paper's algorithmically-optimized baseline (§6.1): Jozefowicz-style
/// big LSTM with projection and full vocabulary.
pub fn lstm_p_config() -> WordLmConfig {
    WordLmConfig {
        vocab: 793_471,
        hidden: 8192,
        layers: 2,
        seq_len: 80,
        projection: Some(1024),
        tied_embedding: false,
    }
}

fn gb(bytes: f64) -> f64 {
    bytes / 1e9
}

/// Partition the model's weights (and their gradients) into the paper's four
/// layer-parallel stages: embedding, the two recurrent layers, and the
/// projection + output head. Activations are attributed by which stage
/// produces them.
fn stages_from_graph(model: &ModelGraph, batch: u64) -> Vec<Stage> {
    let bindings = model.bindings_with_batch(batch);
    let mut weights = [0.0f64; 4];
    for t in model.graph.tensors() {
        if t.kind != TensorKind::Weight {
            continue;
        }
        let bytes = t.bytes_u64(&bindings).expect("bound") as f64 * 2.0; // + gradient
        let stage = if t.name.starts_with("embedding") {
            0
        } else if t.name.starts_with("lstm0") {
            1
        } else if t.name.starts_with("lstm1") {
            2
        } else {
            3 // projection, output, biases
        };
        weights[stage] += bytes;
    }
    // Activation memory: the non-persistent share of the footprint,
    // attributed to the stages that create it (recurrent layers and the
    // output head dominate; the embedding stage only gathers).
    let fp = footprint(&model.graph, &bindings, Scheduler::Best).expect("bound");
    let activations = (fp.peak_bytes as f64 - fp.persistent_bytes as f64).max(0.0);
    let act_share = [0.05, 0.325, 0.325, 0.30];
    ["embedding", "lstm0", "lstm1", "proj+out"]
        .into_iter()
        .enumerate()
        .map(|(i, name)| Stage {
            name: name.into(),
            weight_bytes: weights[i],
            activation_bytes: activations * act_share[i],
        })
        .collect()
}

/// Run the full Table 5 pipeline.
pub fn word_lm_case_study(accel: &Accelerator, comm: &CommConfig) -> CaseStudy {
    let _span = obs::span("analysis.case_study").with_arg("model", "lstm-p");
    let cfg = lstm_p_config();
    let subbatch = 128u64;
    let model = obs::time("modelzoo.build_training", || {
        build_word_lm(&cfg).into_training()
    });
    let bindings = model.bindings_with_batch(subbatch);
    let stats = model.graph.stats().eval(&bindings).expect("bound");
    let fp = footprint(&model.graph, &bindings, Scheduler::Best).expect("bound");
    let fp_gb = gb(fp.peak_bytes as f64);

    // The frontier word-LM dataset (Table 1 projection: ≈77B words).
    let dataset_words = scaling::scaling_for(modelzoo::Domain::WordLm)
        .project()
        .target_data_samples;
    let samples_per_step = model.samples_per_step(subbatch);
    let epoch_days = |step_seconds: f64, workers: u64| -> f64 {
        to_days(dataset_words / (workers as f64 * samples_per_step) * step_seconds)
    };

    let mut rows = Vec::new();

    // Row 1: best-case whole-graph roofline on one accelerator.
    let best = step_time(&stats, accel);
    rows.push(CaseStudyRow {
        stage: "Best-case (Roofline) Baseline",
        accelerators: 1,
        global_batch: subbatch,
        mem_per_accel_gb: fp_gb,
        stage_footprints_gb: vec![fp_gb],
        days_per_epoch: epoch_days(best.seconds, 1),
        flop_utilization: best.flop_utilization,
    });

    // Row 2: cache-hierarchy-aware per-op timing.
    let aware =
        per_op_step_time(&model.graph, &bindings, accel, CacheModel::PanelStream).expect("bound");
    rows.push(CaseStudyRow {
        stage: "Cache-hierarchy-aware Baseline",
        accelerators: 1,
        global_batch: subbatch,
        mem_per_accel_gb: fp_gb,
        stage_footprints_gb: vec![fp_gb],
        days_per_epoch: epoch_days(aware.seconds, 1),
        flop_utilization: aware.flop_utilization,
    });

    // Rows 3–4: data parallelism at 1024 and 512 workers.
    let worker = WorkerStep {
        compute_seconds: aware.seconds,
        alg_flops: stats.flops,
        gradient_bytes: 4.0 * stats.params,
        samples_per_step,
    };
    for (label, n) in [
        ("w/ Data Parallelism (Option 1)", 1024u64),
        ("w/ Data Parallelism (Option 2)", 512),
    ] {
        let p = data_parallel_point(&worker, n, dataset_words, accel, comm);
        rows.push(CaseStudyRow {
            stage: label,
            accelerators: n,
            global_batch: subbatch * n,
            mem_per_accel_gb: fp_gb,
            stage_footprints_gb: vec![fp_gb],
            days_per_epoch: p.epoch_days,
            flop_utilization: p.flop_utilization,
        });
    }

    // Row 5: add 4-way layer parallelism on top of the 512-worker option.
    let stages = stages_from_graph(&model, subbatch);
    let plan = layer_parallel_plan(&stages, aware.seconds, 2);
    // Emit the GPipe-style schedule into the trace so the Chrome export
    // shows the per-stage microbatch timeline in simulated time.
    let per_stage = aware.seconds / stages.len() as f64;
    let (_, pipe_events) = parsim::simulate_pipeline_traced(&vec![per_stage; stages.len()], 2);
    let rec = obs::recorder();
    for ev in parsim::pipeline_trace_events(&pipe_events) {
        rec.record_raw(ev);
    }
    // Each stage allreduces its own weights with its 512 peers concurrently;
    // the step pays the slowest stage's reduction.
    let comm_seconds = stages
        .iter()
        .map(|s| ring_allreduce_seconds(s.weight_bytes / 2.0, 512, comm))
        .fold(0.0, f64::max);
    let lp_step = plan.step_compute_seconds + comm_seconds;
    let lp_util = stats.flops / (lp_step * accel.peak_flops) / plan.accels_per_worker as f64;
    let footprints_gb: Vec<f64> = plan.stage_footprints.iter().map(|&b| gb(b)).collect();
    rows.push(CaseStudyRow {
        stage: "+ Layer Parallelism (4x)",
        accelerators: 512 * plan.accels_per_worker,
        global_batch: subbatch * 512,
        mem_per_accel_gb: footprints_gb.iter().fold(0.0, |a, &b| a.max(b)),
        stage_footprints_gb: footprints_gb,
        days_per_epoch: epoch_days(lp_step, 512),
        flop_utilization: lp_util,
    });

    // Row 6: shard the embedding across the other stages (waterfilled —
    // the paper's unequal three-piece split that equalizes footprints).
    let sharded = waterfill_largest_weight(&stages);
    let sharded_gb: Vec<f64> = sharded.iter().map(|&b| gb(b)).collect();
    rows.push(CaseStudyRow {
        stage: "+ Shard the Embedding Layer",
        accelerators: 512 * plan.accels_per_worker,
        global_batch: subbatch * 512,
        mem_per_accel_gb: sharded_gb.iter().fold(0.0, |a, &b| a.max(b)),
        stage_footprints_gb: sharded_gb,
        days_per_epoch: epoch_days(lp_step, 512),
        flop_utilization: lp_util,
    });

    CaseStudy {
        config: cfg,
        params: stats.params,
        dataset_words,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> CaseStudy {
        word_lm_case_study(&Accelerator::v100_like(), &CommConfig::default())
    }

    #[test]
    fn lstm_p_has_about_8b_params() {
        let s = study();
        assert!(
            (s.params / 8.4e9 - 1.0).abs() < 0.1,
            "params {:.3e}",
            s.params
        );
    }

    #[test]
    fn baseline_is_compute_bound_at_high_utilization() {
        let s = study();
        let base = &s.rows[0];
        assert!(
            (base.flop_utilization - 0.8).abs() < 0.05,
            "baseline utilization {}",
            base.flop_utilization
        );
        // Footprint exceeds one accelerator's 32 GB by far (paper: 113.8 GB).
        assert!(
            base.mem_per_accel_gb > 60.0 && base.mem_per_accel_gb < 220.0,
            "footprint {} GB",
            base.mem_per_accel_gb
        );
    }

    #[test]
    fn cache_awareness_cuts_utilization() {
        let s = study();
        let (base, aware) = (&s.rows[0], &s.rows[1]);
        // Paper: 80% → 46%. Our panel model lands in the same regime.
        assert!(aware.flop_utilization < 0.85 * base.flop_utilization);
        assert!(
            aware.flop_utilization > 0.30 && aware.flop_utilization < 0.70,
            "cache-aware utilization {}",
            aware.flop_utilization
        );
        assert!(aware.days_per_epoch > base.days_per_epoch);
    }

    #[test]
    fn data_parallelism_reaches_single_digit_days() {
        let s = study();
        let dp1024 = &s.rows[2];
        assert_eq!(dp1024.accelerators, 1024);
        assert!(
            dp1024.days_per_epoch < 10.0,
            "1024-worker epoch {} days",
            dp1024.days_per_epoch
        );
        // Utilization declines vs the single-accelerator cache-aware row.
        assert!(dp1024.flop_utilization < s.rows[1].flop_utilization);
    }

    #[test]
    fn layer_parallelism_trades_utilization_for_memory() {
        let s = study();
        let (dp512, lp) = (&s.rows[3], &s.rows[4]);
        assert_eq!(lp.accelerators, 2048);
        // Faster than 512-worker DP but far less efficient per accelerator.
        assert!(lp.days_per_epoch < dp512.days_per_epoch);
        assert!(lp.flop_utilization < 0.5 * dp512.flop_utilization);
        // Per-accelerator footprint shrinks vs the whole model.
        assert!(lp.mem_per_accel_gb < dp512.mem_per_accel_gb);
    }

    #[test]
    fn embedding_shard_evens_footprints_under_capacity_pressure() {
        let s = study();
        let (lp, sharded) = (&s.rows[4], &s.rows[5]);
        assert!(sharded.mem_per_accel_gb < lp.mem_per_accel_gb);
        // After sharding the spread across stages is small (paper:
        // {32,31,31,32} GB).
        let spread = |fps: &[f64]| {
            let max = fps.iter().fold(0.0f64, |a, &b| a.max(b));
            let min = fps.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            max / min
        };
        let after = spread(&sharded.stage_footprints_gb);
        let before = spread(&lp.stage_footprints_gb);
        // Paper: {60,17,17,32} GB → {32,31,31,32} GB. Waterfilling evens
        // all stages up to the fill level, so the residual spread comes only
        // from any stage whose base already exceeds the level.
        assert!(after < 1.35, "post-shard spread {after}");
        assert!(
            after < before,
            "sharding should even footprints: {before} -> {after}"
        );
        // Same schedule, same time.
        assert_eq!(sharded.days_per_epoch, lp.days_per_epoch);
    }
}
