//! Hardware design-space exploration (paper §6.2.3 and conclusion): which
//! accelerator resource — compute throughput, memory bandwidth, on-chip
//! cache, or memory capacity — actually helps each workload?
//!
//! The paper's recommendation is that large-scale RNN training wants
//! *memory capacity and on-chip caches*, running "counter to emerging
//! accelerator designs" that maximize compute-to-memory ratios. This module
//! prices a set of single-axis hardware upgrades against any model and
//! reports step time, utilization, swap pressure, and the model-parallel
//! ways needed to fit.

use cgraph::{footprint, Scheduler};
use modelzoo::ModelGraph;
use roofline::{
    min_shards_to_fit, per_op_step_time, swap_report, Accelerator, CacheModel, HostLink,
};
use serde::Serialize;

/// A named accelerator variant in the design space.
#[derive(Clone, Debug, Serialize)]
pub struct HardwareVariant {
    /// Short label ("2x compute").
    pub label: String,
    /// The configuration.
    pub accel: Accelerator,
}

/// The default single-axis upgrade sweep around the Table 4 baseline.
pub fn hardware_variants() -> Vec<HardwareVariant> {
    let base = Accelerator::v100_like();
    let mut v = vec![HardwareVariant {
        label: "baseline".into(),
        accel: base.clone(),
    }];
    let mut push = |label: &str, f: &dyn Fn(&mut Accelerator)| {
        let mut a = base.clone();
        f(&mut a);
        v.push(HardwareVariant {
            label: label.into(),
            accel: a,
        });
    };
    push("2x compute", &|a| a.peak_flops *= 2.0);
    push("2x bandwidth", &|a| a.peak_mem_bw *= 2.0);
    push("4x cache", &|a| a.cache_bytes *= 4.0);
    push("4x capacity", &|a| a.mem_capacity *= 4.0);
    push("all 2x", &|a| {
        a.peak_flops *= 2.0;
        a.peak_mem_bw *= 2.0;
        a.cache_bytes *= 2.0;
        a.mem_capacity *= 2.0;
    });
    v
}

/// Sensitivity of one model to one hardware variant.
#[derive(Clone, Debug, Serialize)]
pub struct SensitivityPoint {
    /// Variant label.
    pub label: String,
    /// Cache-aware per-op step time, seconds.
    pub step_seconds: f64,
    /// Algorithmic FLOP utilization.
    pub flop_utilization: f64,
    /// Speedup over the baseline variant.
    pub speedup: f64,
    /// Training-step footprint, GB (hardware-independent; repeated for
    /// report convenience).
    pub footprint_gb: f64,
    /// Model-parallel ways required to fit without swapping.
    pub min_shards: u64,
    /// Step slowdown if the model instead swapped to host memory.
    pub swap_slowdown: f64,
}

/// Evaluate `model` at subbatch `batch` across `variants`.
pub fn hardware_sensitivity(
    model: &ModelGraph,
    batch: u64,
    variants: &[HardwareVariant],
) -> Vec<SensitivityPoint> {
    assert!(!variants.is_empty());
    let bindings = model.bindings_with_batch(batch);
    let fp = footprint(&model.graph, &bindings, Scheduler::Best).expect("bound");
    let link = HostLink::default();
    let mut points = Vec::with_capacity(variants.len());
    let mut baseline_step = None;
    for v in variants {
        let t = per_op_step_time(&model.graph, &bindings, &v.accel, CacheModel::PanelStream)
            .expect("bound");
        let baseline = *baseline_step.get_or_insert(t.seconds);
        let swap = swap_report(fp.peak_bytes as f64, t.seconds, &v.accel, &link);
        points.push(SensitivityPoint {
            label: v.label.clone(),
            step_seconds: t.seconds,
            flop_utilization: t.flop_utilization,
            speedup: baseline / t.seconds,
            footprint_gb: fp.peak_bytes as f64 / 1e9,
            min_shards: min_shards_to_fit(fp.peak_bytes as f64, &v.accel, &link),
            swap_slowdown: swap.slowdown,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casestudy::lstm_p_config;
    use modelzoo::{Domain, ModelConfig};

    fn lstm_p() -> ModelGraph {
        ModelConfig::WordLm(lstm_p_config()).build_training()
    }

    fn point<'a>(pts: &'a [SensitivityPoint], label: &str) -> &'a SensitivityPoint {
        pts.iter()
            .find(|p| p.label == label)
            .expect("variant present")
    }

    #[test]
    fn capacity_upgrade_cuts_required_shards() {
        let pts = hardware_sensitivity(&lstm_p(), 128, &hardware_variants());
        let base = point(&pts, "baseline");
        let cap = point(&pts, "4x capacity");
        assert!(base.min_shards >= 4, "baseline shards {}", base.min_shards);
        assert!(
            cap.min_shards <= base.min_shards / 3,
            "4x capacity should cut shards: {} -> {}",
            base.min_shards,
            cap.min_shards
        );
        // Capacity does nothing for step time.
        assert!((cap.step_seconds - base.step_seconds).abs() < 1e-9);
    }

    #[test]
    fn compute_upgrade_helps_cnn_more_than_rnn() {
        // The paper's segmentation: CNNs can exploit compute-centric
        // designs; RNN steps are partly memory-bound, so doubling FLOP/s
        // buys them less.
        let variants = hardware_variants();
        let rnn = hardware_sensitivity(&lstm_p(), 128, &variants);
        let cnn_model = ModelConfig::default_for(Domain::ImageClassification)
            .with_target_params(100_000_000)
            .build_training();
        let cnn = hardware_sensitivity(&cnn_model, 32, &variants);
        let rnn_speedup = point(&rnn, "2x compute").speedup;
        let cnn_speedup = point(&cnn, "2x compute").speedup;
        assert!(
            cnn_speedup > rnn_speedup,
            "cnn {cnn_speedup} vs rnn {rnn_speedup}"
        );
    }

    #[test]
    fn bandwidth_upgrade_helps_rnn_more_than_cnn() {
        let variants = hardware_variants();
        let rnn = hardware_sensitivity(&lstm_p(), 128, &variants);
        let cnn_model = ModelConfig::default_for(Domain::ImageClassification)
            .with_target_params(100_000_000)
            .build_training();
        let cnn = hardware_sensitivity(&cnn_model, 32, &variants);
        let rnn_speedup = point(&rnn, "2x bandwidth").speedup;
        let cnn_speedup = point(&cnn, "2x bandwidth").speedup;
        assert!(
            rnn_speedup > cnn_speedup,
            "rnn {rnn_speedup} vs cnn {cnn_speedup}"
        );
    }

    #[test]
    fn balanced_upgrade_dominates_single_axes_for_step_time() {
        let pts = hardware_sensitivity(&lstm_p(), 128, &hardware_variants());
        let all = point(&pts, "all 2x");
        for label in ["2x compute", "2x bandwidth", "4x cache"] {
            let single = point(&pts, label);
            assert!(
                all.step_seconds <= single.step_seconds + 1e-12,
                "all-2x should dominate {label}"
            );
        }
    }

    #[test]
    fn swapping_is_priced_for_oversized_models() {
        let pts = hardware_sensitivity(&lstm_p(), 128, &hardware_variants());
        let base = point(&pts, "baseline");
        assert!(base.swap_slowdown > 1.3, "slowdown {}", base.swap_slowdown);
        let cap = point(&pts, "4x capacity");
        assert!(cap.swap_slowdown < base.swap_slowdown);
    }
}
