//! Small string-keyed LRU map shared by the sweep engines.
//!
//! The eviction discipline mirrors `serve`'s memo cache: a monotone tick,
//! touch on use, evict the smallest tick while over capacity. Family caches
//! are unbounded (there are only a handful of structural families) — this
//! bounds the per-configuration instance caches, which a long-running server
//! grows without limit otherwise.

use std::collections::HashMap;

struct Entry<V> {
    value: V,
    last_used: u64,
}

/// String-keyed LRU map holding cheaply-clonable values (`Arc`s in practice).
pub(crate) struct LruCache<V: Clone> {
    map: HashMap<String, Entry<V>>,
    tick: u64,
    capacity: usize,
}

impl<V: Clone> LruCache<V> {
    pub(crate) fn new(capacity: usize) -> LruCache<V> {
        LruCache {
            map: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
        }
    }

    /// Look up `key`, marking it most-recently-used on a hit.
    pub(crate) fn get(&mut self, key: &str) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.value.clone()
        })
    }

    /// Insert `value` under `key` unless a concurrent computation got there
    /// first (first insert wins — results are identical), then evict down to
    /// capacity. Returns the entry now cached under `key`.
    pub(crate) fn insert(&mut self, key: String, value: V) -> V {
        self.tick += 1;
        let tick = self.tick;
        let kept = self
            .map
            .entry(key)
            .or_insert(Entry {
                value,
                last_used: tick,
            })
            .value
            .clone();
        while self.map.len() > self.capacity {
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&victim);
        }
        kept
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }
}
