//! Golden bit-identity: compiled evaluation vs the tree walk on every
//! expression reachable from the five Figure 7–10 model families.
//!
//! The sweep engine answers characterization queries through `symath`'s
//! compiled stack programs ([`symath::ExprId::eval`]). This suite pins the
//! whole reachable expression surface — the nine [`cgraph`] stats totals,
//! their width-bound instances, and every tensor's element count — to the
//! reference tree evaluator, comparing `f64::to_bits` so a drift of even one
//! ULP fails.

use cgraph::InternedGraphStats;
use modelzoo::{Domain, ModelConfig};
use symath::{Bindings, ExprId};

/// Down-scaled structures (as in `modelzoo`'s family tests) so the training
/// graphs build quickly under the debug profile.
fn small(domain: Domain) -> ModelConfig {
    match domain {
        Domain::WordLm => ModelConfig::WordLm(modelzoo::WordLmConfig {
            vocab: 500,
            hidden: 48,
            layers: 2,
            seq_len: 5,
            projection: None,
            tied_embedding: true,
        }),
        Domain::CharLm => ModelConfig::CharLm(modelzoo::CharLmConfig {
            vocab: 60,
            hidden: 40,
            depth: 3,
            seq_len: 4,
        }),
        Domain::Nmt => ModelConfig::Nmt(modelzoo::NmtConfig {
            vocab: 400,
            hidden: 32,
            decoder_layers: 2,
            src_len: 4,
            tgt_len: 3,
        }),
        Domain::Speech => ModelConfig::Speech(modelzoo::SpeechConfig {
            features: 8,
            vocab: 20,
            hidden: 24,
            encoder_layers: 2,
            audio_len: 8,
            tgt_len: 3,
        }),
        Domain::ImageClassification => ModelConfig::Resnet(modelzoo::ResNetConfig {
            depth: modelzoo::ResNetDepth::D18,
            width: 16,
            image: 32,
            classes: 10,
        }),
    }
}

fn stats_ids(s: &InternedGraphStats) -> [(&'static str, ExprId); 9] {
    [
        ("flops", s.flops),
        ("flops_forward", s.flops_forward),
        ("flops_backward", s.flops_backward),
        ("flops_update", s.flops_update),
        ("bytes", s.bytes),
        ("bytes_read", s.bytes_read),
        ("bytes_written", s.bytes_written),
        ("params", s.params),
        ("io", s.io),
    ]
}

/// Assert compiled and tree evaluation of `id` agree to the bit under `env`.
fn assert_bit_identical(domain: Domain, what: &str, id: ExprId, env: &Bindings) {
    let compiled = id
        .eval(env)
        .unwrap_or_else(|e| panic!("{domain:?}/{what}: compiled eval failed: {e}"));
    let tree = id
        .expr()
        .eval(env)
        .unwrap_or_else(|e| panic!("{domain:?}/{what}: tree eval failed: {e}"));
    assert_eq!(
        compiled.to_bits(),
        tree.to_bits(),
        "{domain:?}/{what}: compiled {compiled:e} != tree {tree:e}"
    );
}

#[test]
fn compiled_eval_bit_identical_across_all_family_expressions() {
    for domain in Domain::ALL {
        let cfg = small(domain);
        let fam = cfg.build_family_training();
        let widths = cfg.family_widths();
        let mut env = widths.clone();
        env.set(modelzoo::BATCH_SYM, 7.0);

        // The nine family stats totals, width-symbolic.
        let stats = fam.graph.stats_interned();
        for (what, id) in stats_ids(&stats) {
            assert_bit_identical(domain, what, id, &env);
        }

        // The width-bound instance the engine caches per configuration.
        let bound = stats.bind_all(&widths);
        for (what, id) in stats_ids(&bound) {
            assert_bit_identical(domain, &format!("bound.{what}"), id, &env);
        }

        // Every tensor's element count — the expressions behind footprint
        // and working-set sizing.
        for t in fam.graph.tensors() {
            let elems = t.shape.elements_id();
            assert_bit_identical(domain, &format!("elems[{}]", t.name), elems, &env);
        }
    }
}

#[test]
fn batched_grid_eval_bit_identical_across_family_stats() {
    // The nine width-bound stats roots of every family, priced over a
    // subbatch grid (with a duplicate point) in one batched register-VM
    // pass, against the tree walk per (root, point).
    for domain in Domain::ALL {
        let cfg = small(domain);
        let fam = cfg.build_family_training();
        let bound = fam.graph.stats_interned().bind_all(&cfg.family_widths());
        let ids = stats_ids(&bound);
        let roots: Vec<ExprId> = ids.iter().map(|&(_, id)| id).collect();
        let prog = symath::batch_program(&roots);
        // A zero-width grid is a structured error, not a panic or an empty
        // table silently mistaken for success.
        assert!(matches!(
            prog.eval_grid(&[]),
            Err(symath::BatchError::EmptyGrid)
        ));
        let points: Vec<Bindings> = [1u64, 7, 32, 7]
            .iter()
            .map(|&b| Bindings::new().with(modelzoo::BATCH_SYM, b as f64))
            .collect();
        let grid = prog.eval_grid(&points).expect("non-empty grid");
        for (r, (what, id)) in ids.iter().enumerate() {
            for (p, env) in points.iter().enumerate() {
                let tree = id
                    .expr()
                    .eval(env)
                    .unwrap_or_else(|e| panic!("{domain:?}/{what}: tree eval failed: {e}"));
                let batched = *grid[r][p]
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{domain:?}/{what}: batched eval failed: {e}"));
                assert_eq!(
                    batched.to_bits(),
                    tree.to_bits(),
                    "{domain:?}/{what} point {p}: batched {batched:e} != tree {tree:e}"
                );
            }
        }
        // The duplicated subbatch must get a bitwise-duplicated column.
        for (r, (what, _)) in ids.iter().enumerate() {
            assert_eq!(grid[r][1], grid[r][3], "{domain:?}/{what} duplicate point");
        }
    }
}

#[test]
fn engine_points_match_brute_characterization_exactly() {
    // End-to-end: the engine's compiled path must reproduce the direct
    // per-config pipeline bit for bit (same fields the golden sweep pins).
    let engine = analysis::FamilyEngine::new();
    for domain in Domain::ALL {
        let cfg = small(domain);
        let b = domain.default_subbatch();
        let fast = engine.characterize(&cfg, b);
        let brute = analysis::characterize(&cfg, b);
        assert_eq!(fast.params.to_bits(), brute.params.to_bits(), "{domain:?}");
        assert_eq!(
            fast.flops_per_step.to_bits(),
            brute.flops_per_step.to_bits(),
            "{domain:?}"
        );
        assert_eq!(
            fast.flops_per_sample.to_bits(),
            brute.flops_per_sample.to_bits(),
            "{domain:?}"
        );
        assert_eq!(
            fast.bytes_per_step.to_bits(),
            brute.bytes_per_step.to_bits(),
            "{domain:?}"
        );
        assert_eq!(
            fast.op_intensity.to_bits(),
            brute.op_intensity.to_bits(),
            "{domain:?}"
        );
        assert_eq!(
            fast.footprint_bytes, brute.footprint_bytes,
            "{domain:?} footprint"
        );
        assert_eq!(fast.seq_len, brute.seq_len, "{domain:?} seq_len");
    }
}
