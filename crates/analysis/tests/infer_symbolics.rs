//! Property suite for the inference symbolics: the interned KV-cache
//! expression compiled-evaluates bit-identically to the direct f64 product
//! over a randomized (batch, ctx, heads, head_dim) grid, the symbolic
//! engine reproduces the brute-force concrete builds bit-for-bit, and
//! batch-amortized decode intensity is monotonically non-increasing in
//! context length.

use analysis::{characterize_infer, kv_cache_id, InferConfig, InferEngine, KV_DTYPE_BYTES};
use modelzoo::{BATCH_SYM, CTX_SYM, HEADS_SYM, HEAD_DIM_SYM};
use proptest::prelude::*;
use symath::Bindings;

/// Randomized serving shapes kept where the KV product's every partial
/// product is an integer below 2^53, so the direct f64 multiplication is
/// exact and order-independent — the precondition for bit-identity with
/// the compiled evaluation of the interned expression.
fn arb_shape() -> impl Strategy<Value = (u64, u64, u64, u64, u64)> {
    (
        1u64..32,    // layers
        1u64..512,   // batch
        1u64..16384, // ctx
        1u64..32,    // heads
        1u64..128,   // head_dim
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Compiled evaluation of the interned KV expression over the full
    /// 4-symbol grid == the direct f64 product, bit for bit.
    #[test]
    fn kv_expr_compiled_eval_is_bit_identical_to_direct_f64(
        (layers, batch, ctx, heads, head_dim) in arb_shape(),
    ) {
        let id = kv_cache_id(layers);
        let bindings = Bindings::new()
            .with(BATCH_SYM, batch as f64)
            .with(CTX_SYM, ctx as f64)
            .with(HEADS_SYM, heads as f64)
            .with(HEAD_DIM_SYM, head_dim as f64);
        let compiled = id.eval(&bindings).expect("all symbols bound");
        let direct = 2.0
            * layers as f64
            * batch as f64
            * ctx as f64
            * heads as f64
            * head_dim as f64
            * KV_DTYPE_BYTES as f64;
        prop_assert_eq!(compiled.to_bits(), direct.to_bits());
        // And partial binding (the engine's instance path: widths first,
        // batch at eval time) lands on the same bits.
        let widths = Bindings::new()
            .with(CTX_SYM, ctx as f64)
            .with(HEADS_SYM, heads as f64)
            .with(HEAD_DIM_SYM, head_dim as f64);
        let staged = id
            .bind_all(&widths)
            .eval(&Bindings::new().with(BATCH_SYM, batch as f64))
            .expect("batch bound");
        prop_assert_eq!(staged.to_bits(), direct.to_bits());
    }
}

fn arb_config() -> impl Strategy<Value = InferConfig> {
    (
        500u64..4000,
        prop_oneof![Just(1u64), Just(2), Just(4)],
        prop_oneof![Just(8u64), Just(16), Just(32)],
        1u64..5,
        prop_oneof![Just(2u64), Just(4)],
        proptest::bool::ANY,
    )
        .prop_map(
            |(vocab, heads, head_dim, layers, ff_mult, tied)| InferConfig {
                vocab,
                heads,
                head_dim,
                layers,
                ff_mult,
                tied_embedding: tied,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The symbolic engine == the brute-force concrete build at randomized
    /// configurations and points, `==` on every field.
    #[test]
    fn engine_matches_brute_force_at_random_points(
        cfg in arb_config(),
        batch_pow in 0u32..7,
        prompt in 1u64..64,
        extra_ctx in 0u64..256,
    ) {
        let batch = 1u64 << batch_pow;
        let ctx = prompt + extra_ctx;
        let brute = characterize_infer(&cfg, batch, prompt, ctx);
        let fast = InferEngine::global().characterize(&cfg, batch, prompt, ctx);
        prop_assert_eq!(brute, fast);
    }

    /// Batch-amortized decode intensity never rises with context length:
    /// more KV stream per token only dilutes the FLOP/byte ratio.
    #[test]
    fn decode_intensity_is_non_increasing_in_context(
        cfg in arb_config(),
        batch_pow in 1u32..7, // batch ≥ 2: the amortized regime
        prompt in 1u64..32,
    ) {
        let batch = 1u64 << batch_pow;
        let ladder: Vec<u64> = (0..8).map(|i| prompt + (4u64 << i)).collect();
        let grid: Vec<(u64, u64)> = ladder.iter().map(|&c| (batch, c)).collect();
        let points = InferEngine::global().characterize_grid(&cfg, prompt, &grid);
        for pair in points.windows(2) {
            prop_assert!(
                pair[1].decode_intensity <= pair[0].decode_intensity,
                "intensity rose with context: ctx {} -> {} gave {} -> {} (batch {batch})",
                pair[0].context,
                pair[1].context,
                pair[0].decode_intensity,
                pair[1].decode_intensity
            );
        }
        // (The decode ≪ prefill regime claim is asserted at realistic
        // prompt lengths in the unit/case-study tests; a 1-token prompt's
        // prefill is itself decode-like, so it is out of scope here.)
    }
}
