//! Golden equivalence suite for the symbolic sweep engine.
//!
//! The engine's contract is not "close": every `CharacterizationPoint` it
//! produces must equal the brute-force per-configuration walk **bit for
//! bit** — exact rational substitution into canonical expressions commutes
//! with the concrete builders, and the footprint simulation sees identical
//! byte sizes on an identical graph structure. These tests assert that with
//! `==` on `f64`s, across all five domains, a model-size grid, a subbatch
//! grid, and randomly drawn configurations.

use analysis::{characterize, CharacterizationPoint, FamilyEngine};
use modelzoo::{
    CharLmConfig, Domain, ModelConfig, NmtConfig, ResNetConfig, ResNetDepth, SpeechConfig,
    WordLmConfig,
};
use proptest::prelude::*;

/// Down-scaled sweep seed per domain: same structures the real sweeps use,
/// with short unrolls so the brute-force oracle stays fast.
fn seed(domain: Domain) -> ModelConfig {
    let q = match domain {
        Domain::CharLm => 6,
        Domain::Speech => 8,
        _ => 5,
    };
    ModelConfig::default_for(domain).with_seq_len(q)
}

fn assert_bit_identical(cfg: &ModelConfig, subbatch: u64, engine: &FamilyEngine) {
    let brute: CharacterizationPoint = characterize(cfg, subbatch);
    let fast = engine.characterize(cfg, subbatch);
    assert_eq!(
        brute, fast,
        "symbolic point diverges from brute force for {cfg:?} at subbatch {subbatch}"
    );
    // The same point through the batched register VM: a one-job grid is the
    // degenerate batch, and it must reproduce the per-point path exactly.
    let batched = engine.characterize_many(&[(*cfg, subbatch)]);
    assert_eq!(
        brute, batched[0],
        "batched point diverges from brute force for {cfg:?} at subbatch {subbatch}"
    );
}

#[test]
fn golden_grid_all_domains() {
    let engine = FamilyEngine::new();
    for domain in Domain::ALL {
        for target in [1_000_000u64, 4_000_000] {
            let cfg = seed(domain).with_target_params(target);
            for subbatch in [1u64, 16, 129] {
                assert_bit_identical(&cfg, subbatch, &engine);
            }
        }
        // The whole grid instantiated one family per domain.
        assert_eq!(
            engine.families_built(),
            1 + Domain::ALL
                .iter()
                .position(|d| *d == domain)
                .expect("domain in ALL")
        );
    }
}

#[test]
fn golden_wordlm_variants() {
    // The word LM has structural flags the other domains lack: weight tying
    // and the LSTM projection (a second swept width).
    let engine = FamilyEngine::new();
    let base = WordLmConfig {
        vocab: 800,
        hidden: 72,
        layers: 2,
        seq_len: 5,
        projection: None,
        tied_embedding: false,
    };
    let variants = [
        base,
        WordLmConfig {
            tied_embedding: true,
            ..base
        },
        WordLmConfig {
            projection: Some(9),
            ..base
        },
    ];
    for cfg in variants {
        assert_bit_identical(&ModelConfig::WordLm(cfg), 32, &engine);
    }
}

#[test]
fn batched_grids_scatter_to_input_order() {
    // Mixed domains, mixed subbatches, and verbatim duplicate jobs: the
    // batched path groups per configuration, prices each group in one grid
    // evaluation, and must scatter results back in input order.
    let engine = FamilyEngine::new();
    let mut jobs: Vec<(ModelConfig, u64)> = Vec::new();
    for domain in [Domain::WordLm, Domain::Nmt] {
        for target in [1_000_000u64, 4_000_000] {
            let cfg = seed(domain).with_target_params(target);
            for subbatch in [1u64, 16] {
                jobs.push((cfg, subbatch));
            }
        }
    }
    jobs.push(jobs[1]); // duplicate grid points share work, not results
    jobs.push(jobs[0]);
    let batch = engine.characterize_many(&jobs);
    assert_eq!(batch.len(), jobs.len());
    for (job, point) in jobs.iter().zip(&batch) {
        assert_eq!(*point, engine.characterize(&job.0, job.1));
    }
    assert_eq!(batch[batch.len() - 2], batch[1]);
    assert_eq!(batch[batch.len() - 1], batch[0]);
    // An empty job list degenerates to an empty answer, not an error.
    assert!(engine.characterize_many(&[]).is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn golden_random_wordlm(
        vocab in 100u64..2000,
        hidden in 8u64..128,
        layers in 1u64..4,
        seq_len in 2u64..8,
        tied in proptest::bool::ANY,
        subbatch in 1u64..200,
    ) {
        let cfg = ModelConfig::WordLm(WordLmConfig {
            vocab, hidden, layers, seq_len,
            projection: None,
            tied_embedding: tied,
        });
        assert_bit_identical(&cfg, subbatch, FamilyEngine::global());
    }

    #[test]
    fn golden_random_charlm(
        vocab in 30u64..120,
        hidden in 8u64..96,
        depth in 1u64..6,
        seq_len in 2u64..8,
        subbatch in 1u64..200,
    ) {
        let cfg = ModelConfig::CharLm(CharLmConfig { vocab, hidden, depth, seq_len });
        assert_bit_identical(&cfg, subbatch, FamilyEngine::global());
    }

    #[test]
    fn golden_random_nmt(
        vocab in 100u64..1500,
        hidden in 8u64..96,
        decoder_layers in 1u64..4,
        src_len in 2u64..6,
        tgt_len in 2u64..6,
        subbatch in 1u64..200,
    ) {
        let cfg = ModelConfig::Nmt(NmtConfig { vocab, hidden, decoder_layers, src_len, tgt_len });
        assert_bit_identical(&cfg, subbatch, FamilyEngine::global());
    }

    #[test]
    fn golden_random_speech(
        features in 4u64..40,
        vocab in 10u64..60,
        hidden in 8u64..64,
        encoder_layers in 1u64..4,
        audio_granules in 1u64..4,
        tgt_len in 2u64..5,
        subbatch in 1u64..200,
    ) {
        let audio_len = audio_granules * (1 << (encoder_layers - 1)) * 2;
        let cfg = ModelConfig::Speech(SpeechConfig {
            features, vocab, hidden, encoder_layers, audio_len, tgt_len,
        });
        assert_bit_identical(&cfg, subbatch, FamilyEngine::global());
    }

    #[test]
    fn golden_random_resnet(
        depth_idx in 0usize..5,
        width in 8u64..48,
        image in 5u64..8,
        classes in 10u64..200,
        subbatch in 1u64..64,
    ) {
        let depth = [
            ResNetDepth::D18,
            ResNetDepth::D34,
            ResNetDepth::D50,
            ResNetDepth::D101,
            ResNetDepth::D152,
        ][depth_idx];
        let cfg = ModelConfig::Resnet(ResNetConfig {
            depth,
            width,
            image: image * 32, // keep the spatial chain well-formed
            classes,
        });
        assert_bit_identical(&cfg, subbatch, FamilyEngine::global());
    }
}
