//! Differential harness for the three evaluators: the tree walk
//! ([`Expr::eval`]), the per-point stack VM ([`Program::eval`]), and the
//! batched register VM ([`batch_program`] + `eval_grid`).
//!
//! Every test generates random expression sets and random grids and asserts
//! **bitwise** agreement via `f64::to_bits` — not approximate closeness —
//! including NaN payloads (negative bases under fractional powers produce
//! NaNs, and all three evaluators must produce the *same* NaN) and the
//! error path (a partially-unbound point must name the same first-unbound
//! symbol from every evaluator, without contaminating bound points in the
//! same grid).

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use symath::{batch_program, Bindings, Expr, ExprId, Program, Rat, UnboundSymbol};

const SYMS: [&str; 4] = ["bq_a", "bq_b", "bq_c", "bq_d"];

/// Random expressions over four symbols, covering every opcode the VMs
/// implement: sums, products, integer and fractional powers, `max`, `min`,
/// and `ceil`.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i128..=20).prop_map(Expr::int),
        ((-9i128..=9), (1i128..=4)).prop_map(|(n, d)| Expr::rat(n, d)),
        (0usize..SYMS.len()).prop_map(|i| Expr::sym(SYMS[i])),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), 2i128..=3).prop_map(|(a, k)| a.pow(Rat::int(k))),
            // `pow` refuses fractional powers of exactly-negative constants
            // (a canonicalization invariant), so sqrt only shapes that are
            // safe to *build*: a bare symbol (whose runtime binding may
            // still be negative — that's the NaN path) or a max-clamped
            // subexpression.
            (0usize..SYMS.len()).prop_map(|i| Expr::sym(SYMS[i]).sqrt()),
            inner
                .clone()
                .prop_map(|a| Expr::max(vec![a, Expr::int(2)]).sqrt()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::max(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::min(vec![a, b])),
            inner.prop_map(Expr::ceil),
        ]
    })
}

/// A root set of 1–4 expressions. Duplicates are likely at this size, which
/// is the point: duplicate roots share one result register in the batched
/// program and must still report per-root results.
fn arb_roots() -> impl Strategy<Value = Vec<Expr>> {
    pvec(arb_expr(), 1..=4)
}

/// One grid point binding every symbol. Negative values feed fractional
/// powers and produce NaNs — deliberately: NaN bit patterns must survive
/// all three evaluators identically.
fn arb_full_point() -> impl Strategy<Value = Vec<f64>> {
    pvec(prop_oneof![-8.0f64..8.0, 0.25f64..64.0], SYMS.len())
}

/// One grid point that may leave symbols unbound.
fn arb_partial_point() -> impl Strategy<Value = Vec<Option<f64>>> {
    pvec(
        prop_oneof![
            (0.25f64..64.0).prop_map(Some),
            (-8.0f64..8.0).prop_map(Some),
            Just(None),
        ],
        SYMS.len(),
    )
}

fn to_bindings(vals: &[Option<f64>]) -> Bindings {
    let mut b = Bindings::new();
    for (i, v) in vals.iter().enumerate() {
        if let Some(v) = v {
            b = b.with(SYMS[i], *v);
        }
    }
    b
}

/// Bitwise comparison of evaluator outcomes: `Ok` values must share their
/// exact bit pattern (NaN payloads included), errors must name the same
/// symbol.
fn same_outcome(a: &Result<f64, UnboundSymbol>, b: &Result<f64, UnboundSymbol>) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => x.to_bits() == y.to_bits(),
        (Err(x), Err(y)) => x == y,
        _ => false,
    }
}

/// Evaluate `roots` over `points` through all three evaluators and assert
/// triple agreement per (root, point).
fn assert_triple_agreement(roots: &[Expr], points: &[Bindings]) {
    let ids: Vec<ExprId> = roots.iter().map(|e| e.interned()).collect();
    let batched = batch_program(&ids)
        .eval_grid(points)
        .expect("non-empty grid");
    prop_assert_eq!(batched.len(), roots.len());
    for (r, root) in roots.iter().enumerate() {
        let stack = Program::compile(root);
        prop_assert_eq!(batched[r].len(), points.len());
        for (p, b) in points.iter().enumerate() {
            let tree = root.eval(b);
            let compiled = stack.eval(b);
            prop_assert!(
                same_outcome(&tree, &compiled),
                "root {r} point {p}: tree {tree:?} vs stack {compiled:?} for {root}"
            );
            prop_assert!(
                same_outcome(&tree, &batched[r][p]),
                "root {r} point {p}: tree {tree:?} vs batched {:?} for {root}",
                batched[r][p]
            );
        }
    }
}

proptest! {
    /// Fully-bound grids: every (root, point) value is bit-identical across
    /// the tree walk, the stack VM, and the batched VM — including NaNs
    /// from negative bases under sqrt.
    #[test]
    fn bound_grids_agree_bitwise(roots in arb_roots(), grid in pvec(arb_full_point(), 1..=6)) {
        let points: Vec<Bindings> = grid
            .iter()
            .map(|vals| {
                let mut b = Bindings::new();
                for (i, v) in vals.iter().enumerate() {
                    b = b.with(SYMS[i], *v);
                }
                b
            })
            .collect();
        assert_triple_agreement(&roots, &points);
    }

    /// Partially-unbound grids: unbound points error with the same
    /// first-encountered symbol from every evaluator, and bound points in
    /// the same grid still evaluate bit-identically (no contamination from
    /// the masked placeholder columns).
    #[test]
    fn partially_unbound_grids_agree(roots in arb_roots(), grid in pvec(arb_partial_point(), 1..=6)) {
        let points: Vec<Bindings> = grid.iter().map(|v| to_bindings(v)).collect();
        assert_triple_agreement(&roots, &points);
    }

    /// A grid of duplicated points must yield identical outcomes at every
    /// copy — the SoA evaluation has no positional effects.
    #[test]
    fn duplicate_points_yield_identical_results(roots in arb_roots(), vals in arb_partial_point(), copies in 2usize..=5) {
        let points: Vec<Bindings> = (0..copies).map(|_| to_bindings(&vals)).collect();
        let ids: Vec<ExprId> = roots.iter().map(|e| e.interned()).collect();
        let batched = batch_program(&ids).eval_grid(&points).expect("non-empty grid");
        for row in &batched {
            for w in row.windows(2) {
                prop_assert!(same_outcome(&w[0], &w[1]), "{:?} vs {:?}", w[0], w[1]);
            }
        }
        assert_triple_agreement(&roots, &points);
    }
}

#[test]
fn empty_grid_is_a_structured_error() {
    let e = Expr::sym("bq_a") + Expr::int(1);
    let prog = batch_program(&[e.interned()]);
    assert!(matches!(
        prog.eval_grid(&[]),
        Err(symath::BatchError::EmptyGrid)
    ));
}

#[test]
fn nan_payloads_survive_batching() {
    // sqrt of a negative binding: the tree walk computes (-4)^0.5 = NaN via
    // powf; the batched VM must produce the identical NaN bits.
    let e = Expr::sym("bq_a").sqrt() * Expr::int(3) + Expr::sym("bq_b");
    let b = Bindings::new().with("bq_a", -4.0).with("bq_b", 1.5);
    let tree = e.eval(&b).unwrap();
    assert!(tree.is_nan());
    let grid = batch_program(&[e.interned()])
        .eval_grid(std::slice::from_ref(&b))
        .unwrap();
    let batched = *grid[0][0].as_ref().unwrap();
    assert!(batched.is_nan());
    assert_eq!(tree.to_bits(), batched.to_bits());
}
