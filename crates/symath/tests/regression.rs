//! Targeted regression and edge-case tests for the symbolic engine: the
//! exact expression shapes the compute-graph analyses produce.

use symath::{Bindings, Expr, Rat, Symbol};

#[test]
fn word_lm_cost_form_evaluates_exactly() {
    // c_fwd = q(16h²l + 2hv), the paper's §4.2 closed form.
    let (h, v, q, l) = (
        Expr::sym("rg_h"),
        Expr::sym("rg_v"),
        Expr::sym("rg_q"),
        Expr::sym("rg_l"),
    );
    let c = q.clone() * (Expr::int(16) * h.pow(Rat::TWO) * l.clone() + Expr::int(2) * &h * &v);
    let bind = Bindings::new()
        .with("rg_h", 8192.0)
        .with("rg_v", 793_471.0)
        .with("rg_q", 80.0)
        .with("rg_l", 2.0);
    let expected = 80.0 * (16.0 * 8192.0f64.powi(2) * 2.0 + 2.0 * 8192.0 * 793_471.0);
    assert_eq!(c.eval(&bind).unwrap(), expected);
}

#[test]
fn table2_intensity_form_builds_and_evaluates() {
    // b·√p / (3.65·√p + 64·b) — a non-polynomial quotient kept composite.
    let (b, p) = (Expr::sym("rg_b"), Expr::sym("rg_p"));
    let numer = b.clone() * p.sqrt();
    let denom = Expr::rat(365, 100) * p.sqrt() + Expr::int(64) * &b;
    let intensity = numer / denom;
    let bind = Bindings::new().with("rg_b", 128.0).with("rg_p", 23.8e9);
    let sp = 23.8e9f64.sqrt();
    let expected = 128.0 * sp / (3.65 * sp + 64.0 * 128.0);
    let got = intensity.eval(&bind).unwrap();
    assert!((got - expected).abs() < 1e-9 * expected);
}

#[test]
fn fractional_exponent_arithmetic() {
    let p = Expr::sym("rg_p2");
    // √p · √p = p and p^(3/2) / √p = p.
    assert_eq!(p.sqrt() * p.sqrt(), p);
    assert_eq!(p.pow(Rat::new(3, 2)) / p.sqrt(), p);
    // (4p)^(1/2) pulls the 4 out exactly.
    assert_eq!((Expr::int(4) * &p).sqrt(), Expr::int(2) * p.sqrt());
}

#[test]
fn nested_composite_substitution() {
    let (a, b) = (Expr::sym("rg_a"), Expr::sym("rg_b2"));
    // max(a, b) / (a + b), then substitute a := 2b.
    let e = Expr::max(vec![a.clone(), b.clone()]) / (a.clone() + b.clone());
    let subbed = e.subst(Symbol::new("rg_a"), &(Expr::int(2) * &b));
    let bind = Bindings::new().with("rg_b2", 5.0);
    // max(10, 5) / 15 = 2/3.
    assert!((subbed.eval(&bind).unwrap() - 2.0 / 3.0).abs() < 1e-12);
}

#[test]
fn ceil_interacts_with_arithmetic() {
    let x = Expr::sym("rg_x");
    let e = Expr::ceil(x.clone() / Expr::int(3)) * Expr::int(3);
    let bind = Bindings::new().with("rg_x", 10.0);
    assert_eq!(e.eval(&bind).unwrap(), 12.0);
    // Constant folding happens at construction.
    assert_eq!(Expr::ceil(Expr::rat(10, 3)), Expr::int(4));
}

#[test]
fn large_coefficients_stay_exact() {
    // A char-LM frontier-scale coefficient: 2·h²·(d+1) at h = 81_500.
    let e = Expr::int(2) * Expr::int(81_500).pow(Rat::TWO) * Expr::int(11);
    assert_eq!(e.as_const().unwrap().num(), 2 * 81_500i128 * 81_500 * 11);
}

#[test]
fn bind_all_then_as_const_roundtrip() {
    let (h, b) = (Expr::sym("rg_h3"), Expr::sym("rg_b3"));
    let e = Expr::int(16) * h.pow(Rat::TWO) + Expr::int(2) * &h * &b;
    let bound = e.bind_all(&Bindings::new().with("rg_h3", 100.0).with("rg_b3", 32.0));
    assert_eq!(bound.as_const().unwrap().num(), 160_000 + 6_400);
}

#[test]
#[should_panic(expected = "integer-valued")]
fn bind_all_rejects_fractional_values() {
    let h = Expr::sym("rg_h4");
    let _ = h.bind_all(&Bindings::new().with("rg_h4", 1.5));
}

#[test]
fn min_and_max_compose() {
    let (a, b) = (Expr::sym("rg_a5"), Expr::sym("rg_b5"));
    let clamp = Expr::min(vec![Expr::max(vec![a.clone(), Expr::int(0)]), b.clone()]);
    let eval = |av: f64, bv: f64| {
        clamp
            .eval(&Bindings::new().with("rg_a5", av).with("rg_b5", bv))
            .unwrap()
    };
    assert_eq!(eval(5.0, 10.0), 5.0);
    assert_eq!(eval(5.0, 3.0), 3.0);
    // Positivity convention means symbols are > 0, but eval itself is
    // agnostic; max with 0 still clips.
    assert_eq!(eval(0.5, 2.0), 0.5);
}

#[test]
fn display_roundtrips_representative_forms() {
    let p = Expr::sym("rg_p6");
    let b = Expr::sym("rg_b6");
    let forms = [
        Expr::int(1755) * &p + Expr::int(30784) * &b * p.sqrt(),
        (p.clone() + b.clone()).recip(),
        Expr::max(vec![p.clone() / Expr::int(2), b.clone()]),
    ];
    for f in &forms {
        let s = f.to_string();
        assert!(!s.is_empty());
        // Canonical form is deterministic: printing twice is identical.
        assert_eq!(s, f.to_string());
    }
}

#[test]
fn degree_guides_asymptotics() {
    let (h, b) = (Expr::sym("rg_h7"), Expr::sym("rg_b7"));
    let flops = Expr::int(16) * h.pow(Rat::TWO) * &b + Expr::int(2) * &h * &b;
    assert_eq!(flops.degree_in(Symbol::new("rg_h7")), Rat::TWO);
    assert_eq!(flops.degree_in(Symbol::new("rg_b7")), Rat::ONE);
}

#[test]
fn subtracting_composite_atoms_cancels() {
    let (a, b) = (Expr::sym("rg_a8"), Expr::sym("rg_b8"));
    let inv = (a.clone() + b.clone()).recip();
    let diff = inv.clone() * Expr::int(3) - inv.clone() * Expr::int(3);
    assert!(diff.is_zero());
    let partial = inv.clone() * Expr::int(3) - inv;
    let bind = Bindings::new().with("rg_a8", 1.0).with("rg_b8", 1.0);
    assert_eq!(partial.eval(&bind).unwrap(), 1.0);
}
