//! Property-based tests: algebraic laws of `Expr` checked both structurally
//! and against numeric evaluation.

use proptest::prelude::*;
use symath::{Bindings, Expr, Rat, Symbol};

const SYMS: [&str; 4] = ["pp_a", "pp_b", "pp_c", "pp_d"];

/// A small recursive expression generator over four fixed symbols with
/// integer coefficients. Depth-limited so test cases stay tractable.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i128..=20).prop_map(Expr::int),
        (0usize..SYMS.len()).prop_map(|i| Expr::sym(SYMS[i])),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), 2i128..=3).prop_map(|(a, k)| a.pow(Rat::int(k))),
        ]
    })
}

fn bindings() -> Bindings {
    // Positive values per the crate's positivity convention.
    Bindings::new()
        .with("pp_a", 2.0)
        .with("pp_b", 3.0)
        .with("pp_c", 5.0)
        .with("pp_d", 7.0)
}

fn close(x: f64, y: f64) -> bool {
    let scale = x.abs().max(y.abs()).max(1.0);
    (x - y).abs() <= 1e-6 * scale
}

proptest! {
    #[test]
    fn addition_commutes(a in arb_expr(), b in arb_expr()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn multiplication_commutes(a in arb_expr(), b in arb_expr()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn addition_associates(a in arb_expr(), b in arb_expr(), c in arb_expr()) {
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
    }

    #[test]
    fn multiplication_distributes(a in arb_expr(), b in arb_expr(), c in arb_expr()) {
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn subtraction_of_self_is_zero(a in arb_expr()) {
        prop_assert!((&a - &a).is_zero());
    }

    #[test]
    fn structural_ops_match_numeric_eval(a in arb_expr(), b in arb_expr()) {
        let env = bindings();
        let (va, vb) = (a.eval(&env).unwrap(), b.eval(&env).unwrap());
        prop_assert!(close((&a + &b).eval(&env).unwrap(), va + vb));
        prop_assert!(close((&a * &b).eval(&env).unwrap(), va * vb));
        prop_assert!(close((&a - &b).eval(&env).unwrap(), va - vb));
    }

    #[test]
    fn square_matches_eval(a in arb_expr()) {
        let env = bindings();
        let v = a.eval(&env).unwrap();
        prop_assert!(close(a.pow(Rat::TWO).eval(&env).unwrap(), v * v));
    }

    #[test]
    fn subst_then_eval_equals_eval_with_binding(a in arb_expr(), val in 1i128..50) {
        let env = bindings();
        let target = Symbol::new("pp_a");
        let substituted = a.subst(target, &Expr::int(val));
        let mut env2 = env.clone();
        env2.set("pp_a", val as f64);
        prop_assert!(close(
            substituted.eval(&env2).unwrap(),
            a.eval(&env2).unwrap()
        ));
        // The substituted expression must no longer mention pp_a.
        prop_assert!(!substituted.free_symbols().contains(&target));
    }

    #[test]
    fn free_symbols_subset_of_universe(a in arb_expr()) {
        let universe: std::collections::BTreeSet<Symbol> =
            SYMS.iter().map(|s| Symbol::new(s)).collect();
        prop_assert!(a.free_symbols().is_subset(&universe));
    }

    #[test]
    fn canonical_form_has_unique_terms(a in arb_expr(), b in arb_expr()) {
        // Adding then subtracting must return to the original expression —
        // normalization is stable.
        let roundtrip = (&a + &b) - &b;
        prop_assert_eq!(roundtrip, a);
    }

    #[test]
    fn max_is_idempotent_and_bounded(a in arb_expr(), b in arb_expr()) {
        let env = bindings();
        let m = Expr::max(vec![a.clone(), b.clone()]);
        let (va, vb) = (a.eval(&env).unwrap(), b.eval(&env).unwrap());
        let vm = m.eval(&env).unwrap();
        prop_assert!(close(vm, va.max(vb)));
    }

    #[test]
    fn display_is_reparseable_length(a in arb_expr()) {
        // Smoke property: rendering never panics and yields nonempty text.
        prop_assert!(!a.to_string().is_empty());
    }
}
