//! Property-based equivalence of the hash-consed algebra with the tree
//! algebra: every memoized `ExprId` operation must return the id of exactly
//! the expression the corresponding `Expr` operation builds, and compiled
//! evaluation must agree with the tree walk to the bit.

use proptest::prelude::*;
use symath::{Bindings, Expr, Rat};

const SYMS: [&str; 4] = ["ie_a", "ie_b", "ie_c", "ie_d"];

/// Same shape as the `properties.rs` generator, over a disjoint symbol set
/// so the shared interner table stays test-local.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i128..=20).prop_map(Expr::int),
        (0usize..SYMS.len()).prop_map(|i| Expr::sym(SYMS[i])),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), 2i128..=3).prop_map(|(a, k)| a.pow(Rat::int(k))),
        ]
    })
}

fn bindings() -> Bindings {
    // Integer values: `bind_all` requires exact integers, and these are the
    // sweep engine's actual use (widths, sequence lengths, batch sizes).
    Bindings::new()
        .with("ie_a", 2.0)
        .with("ie_b", 3.0)
        .with("ie_c", 5.0)
        .with("ie_d", 7.0)
}

proptest! {
    #[test]
    fn interned_add_equals_tree_add(a in arb_expr(), b in arb_expr()) {
        let sum = a.interned().add(b.interned());
        prop_assert_eq!(&*sum.expr(), &(&a + &b));
    }

    #[test]
    fn interned_mul_equals_tree_mul(a in arb_expr(), b in arb_expr()) {
        let prod = a.interned().mul(b.interned());
        prop_assert_eq!(&*prod.expr(), &(&a * &b));
    }

    #[test]
    fn interned_pow_equals_tree_pow(a in arb_expr(), k in 2i128..=4) {
        let powed = a.interned().pow(Rat::int(k));
        prop_assert_eq!(&*powed.expr(), &a.pow(Rat::int(k)));
    }

    #[test]
    fn interned_bind_all_equals_tree_bind_all(a in arb_expr()) {
        let env = bindings();
        let bound = a.interned().bind_all(&env);
        prop_assert_eq!(&*bound.expr(), &a.bind_all(&env));
    }

    #[test]
    fn compiled_eval_is_bit_identical_to_tree_eval(a in arb_expr()) {
        let env = bindings();
        let tree = a.eval(&env).unwrap();
        let compiled = a.interned().eval(&env).unwrap();
        prop_assert_eq!(compiled.to_bits(), tree.to_bits());
    }

    #[test]
    fn intern_view_reintern_is_identity(a in arb_expr()) {
        let id = a.interned();
        let view: Expr = id.into();
        prop_assert_eq!(view.interned(), id);
        // And a structurally equal rebuild lands on the same id.
        prop_assert_eq!((&a + &Expr::zero()).interned(), id);
    }

    #[test]
    fn equal_ids_iff_equal_expressions(a in arb_expr(), b in arb_expr()) {
        prop_assert_eq!(a.interned() == b.interned(), a == b);
    }

    #[test]
    fn operator_sugar_matches_methods(a in arb_expr(), b in arb_expr()) {
        let (ia, ib) = (a.interned(), b.interned());
        prop_assert_eq!(ia + ib, ia.add(ib));
        prop_assert_eq!(ia * ib, ia.mul(ib));
    }

    #[test]
    fn unbound_symbol_error_matches_tree(a in arb_expr()) {
        // Evaluate with an empty environment: if the tree walk fails, the
        // compiled program must fail naming the same symbol; if it succeeds
        // (constant expression), the compiled result must be bit-identical.
        let empty = Bindings::new();
        match (a.eval(&empty), a.interned().eval(&empty)) {
            (Ok(t), Ok(c)) => prop_assert_eq!(c.to_bits(), t.to_bits()),
            (Err(te), Err(ce)) => prop_assert_eq!(te, ce),
            (t, c) => prop_assert!(false, "tree {t:?} vs compiled {c:?}"),
        }
    }
}
