//! Depth-batched register-VM evaluation: one compiled program, many grid
//! points, structure-of-arrays.
//!
//! The per-point stack machine ([`Program`](crate::compile::Program))
//! replays the tree evaluator's
//! exact `f64` operation order for *one* binding set. Sweep grids evaluate
//! the same handful of expressions at hundreds of points, so the replay cost
//! is paid per point: instruction dispatch, slot resolution, and the stack
//! shuffle all scale with `points × instructions`. A [`BatchProgram`]
//! instead compiles a whole *set* of root expressions once into a single
//! register program and runs each opcode as a tight loop over the point
//! axis: every register is a flat `Vec<f64>` column of length `points`, so
//! dispatch is paid once per instruction and the inner loops are plain
//! slice arithmetic the compiler can vectorize.
//!
//! # Register discipline
//!
//! The builder walks each canonical expression exactly like the stack
//! compiler ([`crate::compile`]), but maps every stack position to a
//! register: a push at depth `d` becomes a write to register `d`, and a
//! binary stack op at depth `d` becomes `reg[d-1] ∘= reg[d]`. The operation
//! sequence *per point* is therefore identical to the stack machine's —
//! which is identical to the tree walk's — so results are **bit-identical**
//! (IEEE-754 arithmetic is deterministic).
//!
//! # Cross-expression CSE
//!
//! Every nested sub-expression unit (an `Atom::Expr` body, a `max`/`min`
//! argument, a `ceil` argument) is interned during compilation; the
//! interner's structural sharing makes "have I seen this subtree?" an id
//! lookup. A unit that occurs more than once across the root set is
//! computed the first time it is encountered, copied into a dedicated cache
//! register, and every later occurrence becomes a single [`Copy`]
//! instruction. Reuse is bit-identity-safe: the tree walk would recompute
//! the unit with the same deterministic operation sequence on the same
//! inputs, producing exactly the bits already sitting in the cache
//! register, and `Copy` moves bits without arithmetic.
//!
//! # Error semantics
//!
//! `Expr::eval` fails with the *first* unbound symbol in tree-walk
//! encounter order. The batch VM preserves this per `(root, point)` pair:
//! unbound slots are filled with a placeholder and masked, all columns are
//! computed anyway (every opcode is pointwise across the point axis, so a
//! masked point can never contaminate a bound one), and each affected
//! result is overwritten with the error naming the first unbound symbol in
//! that root's own slot order (taken from its per-point
//! [`Program`](crate::compile::Program), whose
//! slot order equals the tree walk's encounter order).
//!
//! [`Copy`]: BatchInstr::Copy

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::eval::{Bindings, UnboundSymbol};
use crate::expr::{Atom, Expr, Func};
use crate::intern::ExprId;
use crate::symbol::Symbol;

/// One register-VM operation. `dst`/`src` index register columns; every
/// arithmetic variant applies the stack machine's operation pointwise
/// across the point axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchInstr {
    /// `reg[dst][·] = val` (a pushed constant, broadcast to every point).
    Splat {
        /// Destination register.
        dst: u32,
        /// The constant.
        val: f64,
    },
    /// `reg[dst][·] = column of symbol slot` (a pushed symbol load).
    Load {
        /// Destination register.
        dst: u32,
        /// Symbol slot (indexes [`BatchProgram::symbols`]).
        slot: u32,
    },
    /// `reg[dst][i] *= reg[src][i].powf(exp)` — the stack machine's
    /// `PowMul`.
    PowMul {
        /// Accumulator register (the term value).
        dst: u32,
        /// Base register (the factor atom).
        src: u32,
        /// The factor's exponent.
        exp: f64,
    },
    /// `reg[dst][i] += reg[src][i]`.
    Add {
        /// Accumulator register.
        dst: u32,
        /// Addend register.
        src: u32,
    },
    /// `reg[dst][i] = reg[dst][i].max(reg[src][i])`.
    Max {
        /// Fold register.
        dst: u32,
        /// Argument register.
        src: u32,
    },
    /// `reg[dst][i] = reg[dst][i].min(reg[src][i])`.
    Min {
        /// Fold register.
        dst: u32,
        /// Argument register.
        src: u32,
    },
    /// `reg[dst][i] = reg[dst][i].ceil()`.
    Ceil {
        /// Register rounded in place.
        dst: u32,
    },
    /// `reg[dst][i] = reg[src][i]` — pure data movement (CSE reuse and
    /// root-result capture); never changes bits.
    Copy {
        /// Destination register.
        dst: u32,
        /// Source register.
        src: u32,
    },
}

/// A degenerate grid handed to [`BatchProgram::eval_grid`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// The point axis has zero width: an empty grid prices nothing and is
    /// almost always a caller bug, so it is rejected rather than answered
    /// with an empty table.
    EmptyGrid,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::EmptyGrid => write!(f, "batch grid has a zero-width point axis"),
        }
    }
}

impl std::error::Error for BatchError {}

/// A set of root expressions compiled into one register program with
/// cross-expression CSE (see the module docs).
#[derive(Clone, Debug)]
pub struct BatchProgram {
    instrs: Vec<BatchInstr>,
    /// Global load-slot table (union over roots, first-emission order).
    syms: Vec<Symbol>,
    /// Per requested root: the register its result lands in.
    result_reg: Vec<u32>,
    /// Per requested root: its symbols as global slot indices, in the
    /// root's own tree-walk encounter order (drives error reporting).
    root_syms: Vec<Vec<u32>>,
    /// Total register columns (stack bank + cache bank).
    regs: u32,
    /// `Copy` instructions that replaced a recomputation (CSE reuse).
    cse_reuses: u64,
}

/// Aggregate counters for every [`BatchProgram`] compiled or evaluated in
/// this process (reported by `symbench` and `/v1/metrics`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batch programs compiled (cache misses of [`batch_program`]).
    pub programs_compiled: u64,
    /// [`batch_program`] requests answered from the cache.
    pub program_cache_hits: u64,
    /// Instructions across all compiled programs.
    pub instructions: u64,
    /// Register columns across all compiled programs.
    pub registers: u64,
    /// Sub-expression reuses: `Copy`s that replaced a recomputation.
    pub cse_reuses: u64,
    /// `eval_grid` calls.
    pub evals: u64,
    /// Grid points evaluated, summed over all `eval_grid` calls.
    pub points: u64,
}

pub(crate) static BATCH_PROGRAMS_COMPILED: AtomicU64 = AtomicU64::new(0);
pub(crate) static BATCH_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static BATCH_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
static BATCH_REGISTERS: AtomicU64 = AtomicU64::new(0);
static BATCH_CSE_REUSES: AtomicU64 = AtomicU64::new(0);
static BATCH_EVALS: AtomicU64 = AtomicU64::new(0);
static BATCH_POINTS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide batch-VM counters.
pub fn batch_stats() -> BatchStats {
    BatchStats {
        programs_compiled: BATCH_PROGRAMS_COMPILED.load(Ordering::Relaxed),
        program_cache_hits: BATCH_CACHE_HITS.load(Ordering::Relaxed),
        instructions: BATCH_INSTRUCTIONS.load(Ordering::Relaxed),
        registers: BATCH_REGISTERS.load(Ordering::Relaxed),
        cse_reuses: BATCH_CSE_REUSES.load(Ordering::Relaxed),
        evals: BATCH_EVALS.load(Ordering::Relaxed),
        points: BATCH_POINTS.load(Ordering::Relaxed),
    }
}

/// A register reference during compilation, before the two banks are laid
/// out: stack registers mirror the stack machine's depth, cache registers
/// hold CSE'd values and root results.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Reg {
    Stack(u32),
    Cache(u32),
}

/// [`BatchInstr`] with unresolved [`Reg`] operands.
enum RawInstr {
    Splat(Reg, f64),
    Load(Reg, u32),
    PowMul(Reg, Reg, f64),
    Add(Reg, Reg),
    Max(Reg, Reg),
    Min(Reg, Reg),
    Ceil(Reg),
    Copy(Reg, Reg),
}

struct BatchCompiler {
    /// Occurrence count per interned sub-expression unit across all roots.
    counts: HashMap<ExprId, u32>,
    /// Cache register holding each already-computed unit's value.
    cached: HashMap<ExprId, Reg>,
    instrs: Vec<RawInstr>,
    syms: Vec<Symbol>,
    slot_of: HashMap<Symbol, u32>,
    depth: u32,
    stack_max: u32,
    cache_next: u32,
    cse_reuses: u64,
}

impl BatchCompiler {
    /// Pass 1: intern and count every sub-expression unit under `e`.
    fn count_expr(&mut self, e: &Expr) {
        for t in e.terms() {
            for (a, _) in &t.factors {
                match a {
                    Atom::Sym(_) => {}
                    Atom::Expr(inner) => self.count_unit(inner),
                    Atom::Func(Func::Max(args)) | Atom::Func(Func::Min(args)) => {
                        for x in args {
                            self.count_unit(x);
                        }
                    }
                    Atom::Func(Func::Ceil(x)) => self.count_unit(x),
                }
            }
        }
    }

    fn count_unit(&mut self, e: &Expr) {
        let id = ExprId::intern(e);
        *self.counts.entry(id).or_insert(0) += 1;
        self.count_expr(e);
    }

    fn slot(&mut self, s: Symbol) -> u32 {
        if let Some(&i) = self.slot_of.get(&s) {
            return i;
        }
        let i = self.syms.len() as u32;
        self.syms.push(s);
        self.slot_of.insert(s, i);
        i
    }

    /// Push a value-producing instruction writing the next stack register.
    fn push(&mut self, f: impl FnOnce(Reg) -> RawInstr) -> Reg {
        let dst = Reg::Stack(self.depth);
        self.depth += 1;
        self.stack_max = self.stack_max.max(self.depth);
        self.instrs.push(f(dst));
        dst
    }

    /// Pop the top stack register and fold it into the one beneath.
    fn fold(&mut self, f: impl FnOnce(Reg, Reg) -> RawInstr) {
        debug_assert!(self.depth >= 2);
        let src = Reg::Stack(self.depth - 1);
        let dst = Reg::Stack(self.depth - 2);
        self.depth -= 1;
        self.instrs.push(f(dst, src));
    }

    fn alloc_cache(&mut self) -> Reg {
        let r = Reg::Cache(self.cache_next);
        self.cache_next += 1;
        r
    }

    /// Mirror of `Compiler::expr`: same per-point operation order.
    fn expr(&mut self, e: &Expr) {
        self.push(|d| RawInstr::Splat(d, 0.0));
        for t in e.terms() {
            let coeff = t.coeff.to_f64();
            self.push(|d| RawInstr::Splat(d, coeff));
            for (a, exp) in &t.factors {
                self.atom(a);
                let exp = exp.to_f64();
                self.fold(|d, s| RawInstr::PowMul(d, s, exp));
            }
            self.fold(RawInstr::Add);
        }
    }

    fn atom(&mut self, a: &Atom) {
        match a {
            Atom::Sym(s) => {
                let slot = self.slot(*s);
                self.push(|d| RawInstr::Load(d, slot));
            }
            Atom::Expr(inner) => self.unit(inner),
            Atom::Func(Func::Max(args)) => {
                self.push(|d| RawInstr::Splat(d, f64::NEG_INFINITY));
                for x in args {
                    self.unit(x);
                    self.fold(RawInstr::Max);
                }
            }
            Atom::Func(Func::Min(args)) => {
                self.push(|d| RawInstr::Splat(d, f64::INFINITY));
                for x in args {
                    self.unit(x);
                    self.fold(RawInstr::Min);
                }
            }
            Atom::Func(Func::Ceil(x)) => {
                self.unit(x);
                let top = Reg::Stack(self.depth - 1);
                self.instrs.push(RawInstr::Ceil(top));
            }
        }
    }

    /// A CSE unit: reuse the cached column if this subtree was computed
    /// before, otherwise compute it (and cache it if it recurs).
    fn unit(&mut self, e: &Expr) {
        let id = ExprId::intern(e);
        if let Some(&reg) = self.cached.get(&id) {
            self.cse_reuses += 1;
            self.push(|d| RawInstr::Copy(d, reg));
            return;
        }
        self.expr(e);
        if self.counts.get(&id).copied().unwrap_or(0) >= 2 {
            let cache = self.alloc_cache();
            let top = Reg::Stack(self.depth - 1);
            self.instrs.push(RawInstr::Copy(cache, top));
            self.cached.insert(id, cache);
        }
    }

    /// Compile one root to a dedicated cache register (which doubles as its
    /// CSE entry, so duplicate roots and roots-as-subexpressions are free).
    fn root(&mut self, id: ExprId) -> Reg {
        if let Some(&reg) = self.cached.get(&id) {
            self.cse_reuses += 1;
            return reg;
        }
        debug_assert_eq!(self.depth, 0);
        self.expr(&id.expr());
        let result = self.alloc_cache();
        let top = Reg::Stack(self.depth - 1);
        self.instrs.push(RawInstr::Copy(result, top));
        self.depth -= 1;
        self.cached.insert(id, result);
        result
    }
}

impl BatchProgram {
    /// Compile `roots` into one register program with cross-expression CSE.
    /// Duplicate root ids share a result register.
    pub fn compile(roots: &[ExprId]) -> BatchProgram {
        let mut c = BatchCompiler {
            counts: HashMap::new(),
            cached: HashMap::new(),
            instrs: Vec::new(),
            syms: Vec::new(),
            slot_of: HashMap::new(),
            depth: 0,
            stack_max: 0,
            cache_next: 0,
            cse_reuses: 0,
        };
        for &r in roots {
            *c.counts.entry(r).or_insert(0) += 1;
            c.count_expr(&r.expr());
        }
        let result_regs: Vec<Reg> = roots.iter().map(|&r| c.root(r)).collect();
        debug_assert_eq!(c.depth, 0);

        // Lay out the banks: stack registers first, cache registers after.
        let stack_max = c.stack_max;
        let flat = |r: Reg| match r {
            Reg::Stack(i) => i,
            Reg::Cache(i) => stack_max + i,
        };
        let instrs: Vec<BatchInstr> = c
            .instrs
            .iter()
            .map(|i| match *i {
                RawInstr::Splat(d, v) => BatchInstr::Splat {
                    dst: flat(d),
                    val: v,
                },
                RawInstr::Load(d, slot) => BatchInstr::Load { dst: flat(d), slot },
                RawInstr::PowMul(d, s, e) => BatchInstr::PowMul {
                    dst: flat(d),
                    src: flat(s),
                    exp: e,
                },
                RawInstr::Add(d, s) => BatchInstr::Add {
                    dst: flat(d),
                    src: flat(s),
                },
                RawInstr::Max(d, s) => BatchInstr::Max {
                    dst: flat(d),
                    src: flat(s),
                },
                RawInstr::Min(d, s) => BatchInstr::Min {
                    dst: flat(d),
                    src: flat(s),
                },
                RawInstr::Ceil(d) => BatchInstr::Ceil { dst: flat(d) },
                RawInstr::Copy(d, s) => BatchInstr::Copy {
                    dst: flat(d),
                    src: flat(s),
                },
            })
            .collect();

        // Per-root symbol order for error reporting: the per-point program's
        // slot order is the tree walk's encounter order. Every symbol of
        // every root is loaded somewhere in the batch program (at its unit's
        // first computation), so the global table already covers it.
        let root_syms: Vec<Vec<u32>> = roots
            .iter()
            .map(|r| {
                r.program()
                    .symbols()
                    .iter()
                    .map(|&s| match c.slot_of.get(&s) {
                        Some(&slot) => slot,
                        None => {
                            let slot = c.syms.len() as u32;
                            c.syms.push(s);
                            c.slot_of.insert(s, slot);
                            slot
                        }
                    })
                    .collect()
            })
            .collect();

        let prog = BatchProgram {
            instrs,
            syms: c.syms,
            result_reg: result_regs.into_iter().map(flat).collect(),
            root_syms,
            regs: stack_max + c.cache_next,
            cse_reuses: c.cse_reuses,
        };
        BATCH_INSTRUCTIONS.fetch_add(prog.instrs.len() as u64, Ordering::Relaxed);
        BATCH_REGISTERS.fetch_add(prog.regs as u64, Ordering::Relaxed);
        BATCH_CSE_REUSES.fetch_add(prog.cse_reuses, Ordering::Relaxed);
        prog
    }

    /// Evaluate every root at every point in one pass.
    ///
    /// Returns, per root, one `Result` per point: bit-identical to running
    /// [`Expr::eval`] (or the per-point [`Program`](crate::compile::Program))
    /// on that root with that
    /// point's bindings — including which unbound symbol an error names. A
    /// zero-width point axis is rejected with [`BatchError::EmptyGrid`].
    #[allow(clippy::type_complexity)]
    pub fn eval_grid(
        &self,
        points: &[Bindings],
    ) -> Result<Vec<Vec<Result<f64, UnboundSymbol>>>, BatchError> {
        if points.is_empty() {
            return Err(BatchError::EmptyGrid);
        }
        BATCH_EVALS.fetch_add(1, Ordering::Relaxed);
        BATCH_POINTS.fetch_add(points.len() as u64, Ordering::Relaxed);
        let n = points.len();

        // Symbol columns, with unbound entries masked and placeholder-filled.
        // Every opcode is pointwise across the point axis, so a placeholder
        // can only ever flow into results of its own (masked) point.
        let n_syms = self.syms.len();
        let mut cols = vec![0.0f64; n_syms * n];
        let mut unbound = vec![false; n_syms * n];
        let mut any_unbound = false;
        for (si, &s) in self.syms.iter().enumerate() {
            for (p, b) in points.iter().enumerate() {
                match b.get(s) {
                    Some(v) => cols[si * n + p] = v,
                    None => {
                        unbound[si * n + p] = true;
                        any_unbound = true;
                    }
                }
            }
        }

        let mut regs = vec![0.0f64; self.regs as usize * n];
        for instr in &self.instrs {
            match *instr {
                BatchInstr::Splat { dst, val } => {
                    let d = dst as usize * n;
                    for v in &mut regs[d..d + n] {
                        *v = val;
                    }
                }
                BatchInstr::Load { dst, slot } => {
                    let d = dst as usize * n;
                    let s = slot as usize * n;
                    regs[d..d + n].copy_from_slice(&cols[s..s + n]);
                }
                BatchInstr::PowMul { dst, src, exp } => {
                    let (d, s) = split_regs(&mut regs, n, dst, src);
                    for i in 0..n {
                        d[i] *= s[i].powf(exp);
                    }
                }
                BatchInstr::Add { dst, src } => {
                    let (d, s) = split_regs(&mut regs, n, dst, src);
                    for i in 0..n {
                        d[i] += s[i];
                    }
                }
                BatchInstr::Max { dst, src } => {
                    let (d, s) = split_regs(&mut regs, n, dst, src);
                    for i in 0..n {
                        d[i] = d[i].max(s[i]);
                    }
                }
                BatchInstr::Min { dst, src } => {
                    let (d, s) = split_regs(&mut regs, n, dst, src);
                    for i in 0..n {
                        d[i] = d[i].min(s[i]);
                    }
                }
                BatchInstr::Ceil { dst } => {
                    let d = dst as usize * n;
                    for v in &mut regs[d..d + n] {
                        *v = v.ceil();
                    }
                }
                BatchInstr::Copy { dst, src } => {
                    let (d, s) = split_regs(&mut regs, n, dst, src);
                    d.copy_from_slice(s);
                }
            }
        }

        let results = self
            .result_reg
            .iter()
            .zip(&self.root_syms)
            .map(|(&reg, syms)| {
                let col = &regs[reg as usize * n..reg as usize * n + n];
                (0..n)
                    .map(|p| {
                        if any_unbound {
                            // First unbound symbol in this root's tree-walk
                            // encounter order, exactly like `Program::eval`'s
                            // up-front slot resolution.
                            for &slot in syms {
                                if unbound[slot as usize * n + p] {
                                    return Err(UnboundSymbol(self.syms[slot as usize]));
                                }
                            }
                        }
                        Ok(col[p])
                    })
                    .collect()
            })
            .collect();
        Ok(results)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True for an empty root set.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Register columns the VM allocates per evaluation.
    pub fn registers(&self) -> u32 {
        self.regs
    }

    /// `Copy` instructions that replaced a recomputation (CSE reuses).
    pub fn cse_reuses(&self) -> u64 {
        self.cse_reuses
    }

    /// Union of all roots' symbols (global slot order).
    pub fn symbols(&self) -> &[Symbol] {
        &self.syms
    }

    /// Number of root expressions (equals the compile input length).
    pub fn roots(&self) -> usize {
        self.result_reg.len()
    }
}

/// Disjoint `(dst, src)` column views into the register file.
fn split_regs(regs: &mut [f64], n: usize, dst: u32, src: u32) -> (&mut [f64], &[f64]) {
    debug_assert_ne!(dst, src, "stack discipline keeps operands disjoint");
    let (d, s) = (dst as usize * n, src as usize * n);
    if d < s {
        let (lo, hi) = regs.split_at_mut(s);
        (&mut lo[d..d + n], &hi[..n])
    } else {
        let (lo, hi) = regs.split_at_mut(d);
        let dst_slice = &mut hi[..n];
        (dst_slice, &lo[s..s + n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat::Rat;

    fn ids(exprs: &[Expr]) -> Vec<ExprId> {
        exprs.iter().map(|e| e.interned()).collect()
    }

    fn assert_grid_matches_tree(roots: &[Expr], points: &[Bindings]) {
        let prog = BatchProgram::compile(&ids(roots));
        let grid = prog.eval_grid(points).expect("nonempty grid");
        for (r, e) in roots.iter().enumerate() {
            for (p, b) in points.iter().enumerate() {
                let tree = e.eval(b);
                match (&grid[r][p], &tree) {
                    (Ok(got), Ok(want)) => {
                        assert_eq!(got.to_bits(), want.to_bits(), "root {r} point {p}")
                    }
                    (got, want) => assert_eq!(got, want, "root {r} point {p}"),
                }
            }
        }
    }

    #[test]
    fn polynomial_grid_matches_tree_bitwise() {
        let h = Expr::sym("bt_h");
        let q = Expr::sym("bt_q");
        let roots = [
            h.pow(2) * Expr::int(3) + &q + Expr::rat(1, 3),
            q.clone() * h.sqrt() + Expr::int(7),
        ];
        let points: Vec<Bindings> = [(1.0, 2.0), (17.0, 0.5), (1e9, 3.25)]
            .iter()
            .map(|&(a, b)| Bindings::new().with("bt_h", a).with("bt_q", b))
            .collect();
        assert_grid_matches_tree(&roots, &points);
    }

    #[test]
    fn shared_subexpressions_are_reused_not_recomputed() {
        let x = Expr::sym("bt_x");
        let shared = Expr::ceil((x.clone() + Expr::int(3)) / Expr::int(4));
        let a = shared.clone() * Expr::int(2);
        let b = shared.clone() + Expr::int(1);
        let prog = BatchProgram::compile(&ids(&[a.clone(), b.clone()]));
        assert!(prog.cse_reuses() > 0, "ceil unit must be CSE'd");
        let points = vec![
            Bindings::new().with("bt_x", 5.0),
            Bindings::new().with("bt_x", 1234.0),
        ];
        assert_grid_matches_tree(&[a, b], &points);
    }

    #[test]
    fn duplicate_roots_share_a_result_register() {
        let e = Expr::sym("bt_d") * Expr::int(3);
        let prog = BatchProgram::compile(&ids(&[e.clone(), e.clone()]));
        assert_eq!(prog.roots(), 2);
        let grid = prog
            .eval_grid(&[Bindings::new().with("bt_d", 9.0)])
            .unwrap();
        assert_eq!(grid[0][0], grid[1][0]);
        assert_eq!(grid[0][0], Ok(27.0));
    }

    #[test]
    fn unbound_points_error_without_contaminating_bound_ones() {
        let x = Expr::sym("bt_u");
        let y = Expr::sym("bt_v");
        let e = x.clone() * y.clone() + x.clone();
        let points = vec![
            Bindings::new().with("bt_u", 2.0).with("bt_v", 3.0),
            Bindings::new().with("bt_u", 2.0), // bt_v unbound
            Bindings::new(),                   // both unbound
        ];
        assert_grid_matches_tree(&[e], &points);
    }

    #[test]
    fn empty_grid_is_a_structured_error() {
        let e = Expr::sym("bt_e") + Expr::int(1);
        let prog = BatchProgram::compile(&ids(&[e]));
        assert_eq!(prog.eval_grid(&[]), Err(BatchError::EmptyGrid));
        assert!(BatchError::EmptyGrid.to_string().contains("zero-width"));
    }

    #[test]
    fn one_point_grid_degenerates_to_per_point_eval() {
        let e = Expr::max(vec![Expr::sym("bt_one"), Expr::int(4)]) * Expr::rat(7, 2);
        let b = Bindings::new().with("bt_one", 9.5);
        let prog = BatchProgram::compile(&ids(std::slice::from_ref(&e)));
        let grid = prog.eval_grid(std::slice::from_ref(&b)).unwrap();
        assert_eq!(
            grid[0][0].as_ref().unwrap().to_bits(),
            e.eval(&b).unwrap().to_bits()
        );
    }

    #[test]
    fn fractional_powers_match_stack_vm_bitwise() {
        let p = Expr::sym("bt_p");
        let e = p.pow(Rat::HALF) * Expr::int(5) + (p.clone() + Expr::int(1)).recip();
        let id = e.interned();
        let prog = BatchProgram::compile(&[id]);
        let b = Bindings::new().with("bt_p", 77.0);
        let grid = prog.eval_grid(std::slice::from_ref(&b)).unwrap();
        assert_eq!(
            grid[0][0].as_ref().unwrap().to_bits(),
            id.program().eval(&b).unwrap().to_bits()
        );
    }

    #[test]
    fn counters_advance_on_compile_and_eval() {
        let before = batch_stats();
        let e = Expr::sym("bt_ctr") + Expr::int(41);
        let prog = BatchProgram::compile(&ids(&[e]));
        let pts = vec![Bindings::new().with("bt_ctr", 1.0); 4];
        prog.eval_grid(&pts).unwrap();
        let after = batch_stats();
        assert!(after.instructions > before.instructions);
        assert!(after.registers > before.registers);
        assert_eq!(after.evals, before.evals + 1);
        assert_eq!(after.points, before.points + 4);
    }
}
