//! Canonical symbolic expressions.
//!
//! An [`Expr`] is kept in a normal form: a sum of [`Term`]s, each term a
//! rational coefficient times a sorted product of [`Atom`]s raised to exact
//! rational powers. This makes like-term collection, substitution, and
//! equality structural rather than heuristic, which is all the algebra the
//! compute-graph analyses need (polynomials in dimensions plus `√p`-style
//! fractional powers and `max`/`ceil` for shape arithmetic).
//!
//! All symbols are assumed to denote **positive** reals (see
//! [`crate::Symbol`]), so exponent distribution over products is sound.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::rat::Rat;
use crate::symbol::Symbol;

/// Uninterpreted functions that participate in expressions.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Func {
    /// Pointwise maximum of the arguments.
    Max(Vec<Expr>),
    /// Pointwise minimum of the arguments.
    Min(Vec<Expr>),
    /// Ceiling of the argument.
    Ceil(Box<Expr>),
}

/// A multiplicative base: a symbol, a composite sub-expression (kept for
/// non-polynomial structure such as `(a+b)^(-1)`), or a function application.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Atom {
    /// A bare symbol.
    Sym(Symbol),
    /// A parenthesized sub-expression used as a base, e.g. `(a+b)^(-1)`.
    Expr(Box<Expr>),
    /// A function application.
    Func(Func),
}

/// One product term: `coeff · Π atomᵢ^expᵢ` with factors sorted by atom and
/// no zero exponents.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Term {
    pub(crate) coeff: Rat,
    pub(crate) factors: Vec<(Atom, Rat)>,
}

impl Term {
    fn constant(coeff: Rat) -> Term {
        Term {
            coeff,
            factors: Vec::new(),
        }
    }

    fn is_constant(&self) -> bool {
        self.factors.is_empty()
    }

    fn mul(&self, other: &Term) -> Term {
        let coeff = self.coeff * other.coeff;
        // Constants are the overwhelmingly common operands in builder
        // arithmetic: multiplying by one costs a factor-list clone, nothing
        // more.
        if other.factors.is_empty() {
            let mut factors = self.factors.clone();
            combine_equal_atoms(&mut factors);
            return Term { coeff, factors };
        }
        if self.factors.is_empty() {
            let mut factors = other.factors.clone();
            combine_equal_atoms(&mut factors);
            return Term { coeff, factors };
        }
        // Factor lists are invariantly sorted by atom with unique atoms (the
        // canonical form), so a linear merge-join replaces the former
        // `BTreeMap` rebuild and yields the identical sorted result.
        let (mut i, mut j) = (0, 0);
        let mut factors = Vec::with_capacity(self.factors.len() + other.factors.len());
        while i < self.factors.len() && j < other.factors.len() {
            let (a, ea) = &self.factors[i];
            let (b, eb) = &other.factors[j];
            match a.cmp(b) {
                Ordering::Less => {
                    factors.push((a.clone(), *ea));
                    i += 1;
                }
                Ordering::Greater => {
                    factors.push((b.clone(), *eb));
                    j += 1;
                }
                Ordering::Equal => {
                    let e = *ea + *eb;
                    if !e.is_zero() {
                        factors.push((a.clone(), e));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        factors.extend_from_slice(&self.factors[i..]);
        factors.extend_from_slice(&other.factors[j..]);
        combine_equal_atoms(&mut factors);
        Term { coeff, factors }
    }
}

/// Merge runs of equal atoms in a sorted factor list, summing exponents and
/// dropping zeros — what the former `BTreeMap` rebuild did implicitly. A
/// single operand can carry duplicate atoms only through fractional powers of
/// non-square rational coefficients, so in practice this is a no-op scan.
fn combine_equal_atoms(factors: &mut Vec<(Atom, Rat)>) {
    if factors.windows(2).all(|w| w[0].0 != w[1].0) {
        return;
    }
    let mut merged: Vec<(Atom, Rat)> = Vec::with_capacity(factors.len());
    for (a, e) in factors.drain(..) {
        match merged.last_mut() {
            Some((last, le)) if *last == a => *le = *le + e,
            _ => merged.push((a, e)),
        }
    }
    merged.retain(|(_, e)| !e.is_zero());
    *factors = merged;
}

/// A symbolic expression in canonical sum-of-terms form.
///
/// The empty sum is zero. Terms are sorted by their factor lists, and no two
/// terms share the same factor list, so `PartialEq` is semantic equality for
/// the polynomial fragment.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Expr {
    pub(crate) terms: Vec<Term>,
}

/// Exact square root of a non-negative rational, when both numerator and
/// denominator are perfect squares.
fn exact_sqrt(r: Rat) -> Option<Rat> {
    fn isqrt(n: i128) -> Option<i128> {
        if n < 0 {
            return None;
        }
        let root = (n as f64).sqrt().round() as i128;
        (root.saturating_sub(1)..=root + 1).find(|&cand| cand >= 0 && cand * cand == n)
    }
    Some(Rat::new(isqrt(r.num())?, isqrt(r.den())?))
}

fn normalize(mut terms: Vec<Term>) -> Expr {
    // Single-term sums (the pow/composite constructors) need no collection
    // pass, only the zero filter.
    if terms.len() <= 1 {
        terms.retain(|t| !t.coeff.is_zero());
        return Expr { terms };
    }
    let mut map: BTreeMap<Vec<(Atom, Rat)>, Rat> = BTreeMap::new();
    for t in terms {
        if t.coeff.is_zero() {
            continue;
        }
        let entry = map.entry(t.factors).or_insert(Rat::ZERO);
        *entry = *entry + t.coeff;
    }
    Expr {
        terms: map
            .into_iter()
            .filter(|(_, c)| !c.is_zero())
            .map(|(factors, coeff)| Term { coeff, factors })
            .collect(),
    }
}

impl Expr {
    /// The zero expression.
    pub fn zero() -> Expr {
        Expr { terms: Vec::new() }
    }

    /// The unit expression.
    pub fn one() -> Expr {
        Expr::from(Rat::ONE)
    }

    /// An integer constant.
    pub fn int(n: i128) -> Expr {
        Expr::from(Rat::int(n))
    }

    /// A rational constant `n/d`.
    pub fn rat(n: i128, d: i128) -> Expr {
        Expr::from(Rat::new(n, d))
    }

    /// A (freshly interned) symbol expression.
    pub fn sym(name: &str) -> Expr {
        Expr::from(Symbol::new(name))
    }

    /// True for the empty sum.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// True for the constant one.
    pub fn is_one(&self) -> bool {
        self.as_const().map(|c| c.is_one()).unwrap_or(false)
    }

    /// Returns the constant value if this expression has no symbolic part.
    pub fn as_const(&self) -> Option<Rat> {
        match self.terms.as_slice() {
            [] => Some(Rat::ZERO),
            [t] if t.is_constant() => Some(t.coeff),
            _ => None,
        }
    }

    /// Returns the symbol if this expression is exactly one symbol.
    pub fn as_symbol(&self) -> Option<Symbol> {
        match self.terms.as_slice() {
            [t] if t.coeff.is_one() && t.factors.len() == 1 => match &t.factors[0] {
                (Atom::Sym(s), e) if e.is_one() => Some(*s),
                _ => None,
            },
            _ => None,
        }
    }

    /// Number of terms in the canonical sum.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// All free symbols, including those nested inside composite atoms.
    pub fn free_symbols(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut BTreeSet<Symbol>) {
        for t in &self.terms {
            for (a, _) in &t.factors {
                match a {
                    Atom::Sym(s) => {
                        out.insert(*s);
                    }
                    Atom::Expr(e) => e.collect_symbols(out),
                    Atom::Func(f) => match f {
                        Func::Max(args) | Func::Min(args) => {
                            for e in args {
                                e.collect_symbols(out);
                            }
                        }
                        Func::Ceil(e) => e.collect_symbols(out),
                    },
                }
            }
        }
    }

    fn add_expr(&self, other: &Expr) -> Expr {
        if self.terms.is_empty() {
            return other.clone();
        }
        if other.terms.is_empty() {
            return self.clone();
        }
        // Both operands are canonical — terms sorted by factor list, no
        // duplicates, no zero coefficients — so addition is a linear
        // merge-join producing the same canonical result as re-normalizing
        // the concatenation, without the `BTreeMap` pass.
        let (mut i, mut j) = (0, 0);
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        while i < self.terms.len() && j < other.terms.len() {
            let a = &self.terms[i];
            let b = &other.terms[j];
            match a.factors.cmp(&b.factors) {
                Ordering::Less => {
                    terms.push(a.clone());
                    i += 1;
                }
                Ordering::Greater => {
                    terms.push(b.clone());
                    j += 1;
                }
                Ordering::Equal => {
                    let coeff = a.coeff + b.coeff;
                    if !coeff.is_zero() {
                        terms.push(Term {
                            coeff,
                            factors: a.factors.clone(),
                        });
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        terms.extend_from_slice(&self.terms[i..]);
        terms.extend_from_slice(&other.terms[j..]);
        Expr { terms }
    }

    fn mul_expr(&self, other: &Expr) -> Expr {
        let mut terms = Vec::with_capacity(self.terms.len() * other.terms.len());
        for a in &self.terms {
            for b in &other.terms {
                terms.push(a.mul(b));
            }
        }
        normalize(terms)
    }

    fn neg_expr(&self) -> Expr {
        Expr {
            terms: self
                .terms
                .iter()
                .map(|t| Term {
                    coeff: -t.coeff,
                    factors: t.factors.clone(),
                })
                .collect(),
        }
    }

    /// Raise to an exact rational power.
    ///
    /// Sound under the positivity convention for symbols. Multi-term bases
    /// with small positive integer exponents are expanded; otherwise the base
    /// is kept as a composite atom.
    ///
    /// # Panics
    /// Panics on `0^e` with `e ≤ 0` or fractional exponents of negative
    /// constants.
    pub fn pow(&self, exp: impl Into<Rat>) -> Expr {
        let exp = exp.into();
        if exp.is_zero() {
            assert!(!self.is_zero(), "0^0 is undefined");
            return Expr::one();
        }
        if exp.is_one() {
            return self.clone();
        }
        if self.is_zero() {
            assert!(!exp.is_negative(), "0 raised to a negative power");
            return Expr::zero();
        }
        if let Some(c) = self.as_const() {
            if let Some(i) = exp.as_integer() {
                return Expr::from(c.powi(i as i64));
            }
            assert!(!c.is_negative(), "fractional power of a negative constant");
            if c.is_one() {
                return Expr::one();
            }
            // Pull out exact square roots of integer constants when possible.
            if exp == Rat::HALF {
                if let Some(n) = c.as_integer() {
                    let r = (n as f64).sqrt().round() as i128;
                    if r * r == n {
                        return Expr::int(r);
                    }
                }
            }
            return Expr::composite_pow(self.clone(), exp);
        }
        if self.terms.len() == 1 {
            // Distribute the exponent across the factors of the single term.
            let t = &self.terms[0];
            let mut factors: Vec<(Atom, Rat)> = t
                .factors
                .iter()
                .map(|(a, e)| (a.clone(), *e * exp))
                .collect();
            let coeff_part = if t.coeff.is_one() {
                Rat::ONE
            } else if let Some(i) = exp.as_integer() {
                t.coeff.powi(i as i64)
            } else {
                assert!(
                    !t.coeff.is_negative(),
                    "fractional power of a negative coefficient"
                );
                if exp == Rat::HALF {
                    if let Some(root) = exact_sqrt(t.coeff) {
                        root
                    } else {
                        factors.push((Atom::Expr(Box::new(Expr::from(t.coeff))), exp));
                        Rat::ONE
                    }
                } else {
                    factors.push((Atom::Expr(Box::new(Expr::from(t.coeff))), exp));
                    Rat::ONE
                }
            };
            factors.sort();
            return normalize(vec![Term {
                coeff: coeff_part,
                factors,
            }]);
        }
        // Multi-term base.
        if let Some(i) = exp.as_integer() {
            if (2..=8).contains(&i) {
                let mut acc = self.clone();
                for _ in 1..i {
                    acc = acc.mul_expr(self);
                }
                return acc;
            }
        }
        Expr::composite_pow(self.clone(), exp)
    }

    fn composite_pow(base: Expr, exp: Rat) -> Expr {
        normalize(vec![Term {
            coeff: Rat::ONE,
            factors: vec![(Atom::Expr(Box::new(base)), exp)],
        }])
    }

    /// `self^(1/2)`.
    pub fn sqrt(&self) -> Expr {
        self.pow(Rat::HALF)
    }

    /// `self^(-1)`.
    pub fn recip(&self) -> Expr {
        self.pow(Rat::int(-1))
    }

    /// Symbolic maximum; folds when all arguments are constants and drops
    /// duplicates.
    pub fn max(args: Vec<Expr>) -> Expr {
        Expr::extremum(args, true)
    }

    /// Symbolic minimum; folds when all arguments are constants and drops
    /// duplicates.
    pub fn min(args: Vec<Expr>) -> Expr {
        Expr::extremum(args, false)
    }

    fn extremum(args: Vec<Expr>, is_max: bool) -> Expr {
        assert!(!args.is_empty(), "max/min of no arguments");
        let mut uniq: Vec<Expr> = Vec::new();
        for a in args {
            if !uniq.contains(&a) {
                uniq.push(a);
            }
        }
        if uniq.len() == 1 {
            return uniq.pop().expect("one element");
        }
        if uniq.iter().all(|e| e.as_const().is_some()) {
            let consts = uniq.iter().map(|e| e.as_const().expect("const"));
            let best = if is_max {
                consts.max().expect("nonempty")
            } else {
                consts.min().expect("nonempty")
            };
            return Expr::from(best);
        }
        uniq.sort();
        let f = if is_max {
            Func::Max(uniq)
        } else {
            Func::Min(uniq)
        };
        normalize(vec![Term {
            coeff: Rat::ONE,
            factors: vec![(Atom::Func(f), Rat::ONE)],
        }])
    }

    /// Symbolic ceiling; folds for constants.
    pub fn ceil(arg: Expr) -> Expr {
        if let Some(c) = arg.as_const() {
            let n = c.num();
            let d = c.den();
            let q = n.div_euclid(d);
            let ceiled = if n.rem_euclid(d) == 0 { q } else { q + 1 };
            return Expr::int(ceiled);
        }
        normalize(vec![Term {
            coeff: Rat::ONE,
            factors: vec![(Atom::Func(Func::Ceil(Box::new(arg))), Rat::ONE)],
        }])
    }

    /// Substitute `replacement` for every occurrence of `sym`.
    pub fn subst(&self, sym: Symbol, replacement: &Expr) -> Expr {
        let mut out = Expr::zero();
        for t in &self.terms {
            let mut term_expr = Expr::from(t.coeff);
            for (a, e) in &t.factors {
                let base = match a {
                    Atom::Sym(s) if *s == sym => replacement.clone(),
                    Atom::Sym(s) => Expr::from(*s),
                    Atom::Expr(inner) => inner.subst(sym, replacement),
                    Atom::Func(f) => {
                        let f = match f {
                            Func::Max(args) => {
                                Func::Max(args.iter().map(|x| x.subst(sym, replacement)).collect())
                            }
                            Func::Min(args) => {
                                Func::Min(args.iter().map(|x| x.subst(sym, replacement)).collect())
                            }
                            Func::Ceil(x) => Func::Ceil(Box::new(x.subst(sym, replacement))),
                        };
                        match f {
                            Func::Max(args) => Expr::max(args),
                            Func::Min(args) => Expr::min(args),
                            Func::Ceil(x) => Expr::ceil(*x),
                        }
                    }
                };
                term_expr = term_expr.mul_expr(&base.pow(*e));
            }
            out = out.add_expr(&term_expr);
        }
        out
    }

    /// Decompose the expression as a polynomial in `sym`: a map from the
    /// exponent of `sym` to the coefficient expression (which no longer
    /// mentions `sym`). Returns `None` when `sym` occurs inside a composite
    /// atom or function argument (non-polynomial occurrence).
    ///
    /// ```
    /// use symath::{Expr, Rat, Symbol};
    /// let b = Expr::sym("doc_b");
    /// let h = Expr::sym("doc_h");
    /// let e = Expr::int(16) * h.pow(Rat::TWO) * &b + Expr::int(3) * &h;
    /// let coeffs = e.coefficients_in(Symbol::new("doc_b")).unwrap();
    /// assert_eq!(coeffs[&Rat::ONE], Expr::int(16) * h.pow(Rat::TWO));
    /// assert_eq!(coeffs[&Rat::ZERO], Expr::int(3) * h);
    /// ```
    pub fn coefficients_in(&self, sym: Symbol) -> Option<std::collections::BTreeMap<Rat, Expr>> {
        let mut out: std::collections::BTreeMap<Rat, Expr> = std::collections::BTreeMap::new();
        for t in &self.terms {
            let mut power = Rat::ZERO;
            let mut rest = Term {
                coeff: t.coeff,
                factors: Vec::new(),
            };
            for (a, e) in &t.factors {
                match a {
                    Atom::Sym(s) if *s == sym => power = power + *e,
                    Atom::Sym(_) => rest.factors.push((a.clone(), *e)),
                    Atom::Expr(inner) => {
                        if inner.free_symbols().contains(&sym) {
                            return None;
                        }
                        rest.factors.push((a.clone(), *e));
                    }
                    Atom::Func(f) => {
                        let args: Vec<&Expr> = match f {
                            Func::Max(v) | Func::Min(v) => v.iter().collect(),
                            Func::Ceil(x) => vec![x.as_ref()],
                        };
                        if args.iter().any(|x| x.free_symbols().contains(&sym)) {
                            return None;
                        }
                        rest.factors.push((a.clone(), *e));
                    }
                }
            }
            let coeff_expr = normalize(vec![rest]);
            let entry = out.entry(power).or_insert_with(Expr::zero);
            *entry = entry.clone() + coeff_expr;
        }
        out.retain(|_, c| !c.is_zero());
        Some(out)
    }

    /// The total degree in `sym` of the highest-degree term mentioning it,
    /// restricted to polynomial occurrences. Returns `Rat::ZERO` when the
    /// symbol does not occur polynomially.
    pub fn degree_in(&self, sym: Symbol) -> Rat {
        let mut best = Rat::ZERO;
        for t in &self.terms {
            for (a, e) in &t.factors {
                if let Atom::Sym(s) = a {
                    if *s == sym && *e > best {
                        best = *e;
                    }
                }
            }
        }
        best
    }

    pub(crate) fn terms(&self) -> &[Term] {
        &self.terms
    }
}

impl From<Rat> for Expr {
    fn from(c: Rat) -> Expr {
        if c.is_zero() {
            Expr::zero()
        } else {
            Expr {
                terms: vec![Term::constant(c)],
            }
        }
    }
}

impl From<Symbol> for Expr {
    fn from(s: Symbol) -> Expr {
        Expr {
            terms: vec![Term {
                coeff: Rat::ONE,
                factors: vec![(Atom::Sym(s), Rat::ONE)],
            }],
        }
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Expr {
            fn from(n: $t) -> Expr {
                Expr::int(n as i128)
            }
        }
    )*};
}
from_int!(i32, i64, u32, u64, usize);

macro_rules! binop {
    ($trait:ident, $method:ident, $imp:ident) => {
        impl std::ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                (&self).$imp(&rhs)
            }
        }
        impl std::ops::$trait<&Expr> for Expr {
            type Output = Expr;
            fn $method(self, rhs: &Expr) -> Expr {
                (&self).$imp(rhs)
            }
        }
        impl std::ops::$trait<Expr> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                self.$imp(&rhs)
            }
        }
        impl std::ops::$trait<&Expr> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: &Expr) -> Expr {
                self.$imp(rhs)
            }
        }
    };
}

binop!(Add, add, add_expr);
binop!(Mul, mul, mul_expr);

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        self.add_expr(&rhs.neg_expr())
    }
}
impl std::ops::Sub<&Expr> for &Expr {
    type Output = Expr;
    fn sub(self, rhs: &Expr) -> Expr {
        self.add_expr(&rhs.neg_expr())
    }
}
impl std::ops::Sub<&Expr> for Expr {
    type Output = Expr;
    fn sub(self, rhs: &Expr) -> Expr {
        self.add_expr(&rhs.neg_expr())
    }
}
impl std::ops::Sub<Expr> for &Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        self.add_expr(&rhs.neg_expr())
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        self.mul_expr(&rhs.recip())
    }
}
impl std::ops::Div<&Expr> for &Expr {
    type Output = Expr;
    fn div(self, rhs: &Expr) -> Expr {
        self.mul_expr(&rhs.recip())
    }
}
impl std::ops::Div<&Expr> for Expr {
    type Output = Expr;
    fn div(self, rhs: &Expr) -> Expr {
        self.mul_expr(&rhs.recip())
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        self.neg_expr()
    }
}
impl std::ops::Neg for &Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        self.neg_expr()
    }
}

impl std::iter::Sum for Expr {
    fn sum<I: Iterator<Item = Expr>>(iter: I) -> Expr {
        iter.fold(Expr::zero(), |acc, e| acc + e)
    }
}

/// Deterministic structural ordering helper used by the canonical form.
#[allow(dead_code)]
fn atom_cmp(a: &Atom, b: &Atom) -> Ordering {
    a.cmp(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Expr {
        Expr::sym("test_h")
    }
    fn v() -> Expr {
        Expr::sym("test_v")
    }

    #[test]
    fn like_terms_collect() {
        let e = h() * Expr::int(3) + h() * Expr::int(5);
        assert_eq!(e, Expr::int(8) * h());
        assert_eq!(e.term_count(), 1);
    }

    #[test]
    fn subtraction_cancels() {
        let e = h() * v() - v() * h();
        assert!(e.is_zero());
    }

    #[test]
    fn distributes_products_over_sums() {
        let e = (h() + Expr::int(1)) * (h() - Expr::int(1));
        assert_eq!(e, h().pow(2) - Expr::one());
    }

    #[test]
    fn pow_distributes_over_single_term() {
        let e = (h() * v()).sqrt();
        assert_eq!(e, h().sqrt() * v().sqrt());
    }

    #[test]
    fn sqrt_of_square_roundtrips() {
        let e = h().pow(2).sqrt();
        assert_eq!(e, h());
    }

    #[test]
    fn integer_sqrt_folds() {
        assert_eq!(Expr::int(144).sqrt(), Expr::int(12));
    }

    #[test]
    fn multi_term_small_power_expands() {
        let e = (h() + v()).pow(2);
        assert_eq!(e, h().pow(2) + Expr::int(2) * h() * v() + v().pow(2));
    }

    #[test]
    fn multi_term_negative_power_stays_composite() {
        let e = (h() + v()).recip();
        assert_eq!(e.term_count(), 1);
        assert!(e.as_const().is_none());
        // (h+v)^-1 * (h+v) does not auto-cancel (kept composite), but its
        // free symbols are tracked.
        let syms = e.free_symbols();
        assert!(syms.contains(&Symbol::new("test_h")));
        assert!(syms.contains(&Symbol::new("test_v")));
    }

    #[test]
    fn subst_replaces_everywhere() {
        let e = h().pow(2) * v() + h();
        let r = e.subst(Symbol::new("test_h"), &Expr::int(3));
        assert_eq!(r, Expr::int(9) * v() + Expr::int(3));
    }

    #[test]
    fn subst_inside_composite_atoms() {
        let e = (h() + v()).recip();
        let r = e.subst(Symbol::new("test_h"), &Expr::int(1));
        let expected = (Expr::int(1) + v()).recip();
        assert_eq!(r, expected);
    }

    #[test]
    fn max_folds_constants_and_dedups() {
        assert_eq!(
            Expr::max(vec![Expr::int(3), Expr::int(7), Expr::int(7)]),
            Expr::int(7)
        );
        assert_eq!(Expr::max(vec![h(), h()]), h());
    }

    #[test]
    fn min_folds_constants() {
        assert_eq!(Expr::min(vec![Expr::int(3), Expr::int(7)]), Expr::int(3));
    }

    #[test]
    fn ceil_folds_constants() {
        assert_eq!(Expr::ceil(Expr::rat(7, 2)), Expr::int(4));
        assert_eq!(Expr::ceil(Expr::rat(-7, 2)), Expr::int(-3));
        assert_eq!(Expr::ceil(Expr::int(5)), Expr::int(5));
    }

    #[test]
    fn degree_in_reports_highest_power() {
        let e = h().pow(3) * v() + h() + Expr::one();
        assert_eq!(e.degree_in(Symbol::new("test_h")), Rat::int(3));
        assert_eq!(e.degree_in(Symbol::new("test_v")), Rat::ONE);
        assert_eq!(e.degree_in(Symbol::new("test_absent")), Rat::ZERO);
    }

    #[test]
    fn division_by_symbol() {
        let e = (h().pow(2) * v()) / h();
        assert_eq!(e, h() * v());
    }

    #[test]
    fn sum_iterator() {
        let total: Expr = vec![h(), v(), h()].into_iter().sum();
        assert_eq!(total, Expr::int(2) * h() + v());
    }

    #[test]
    fn as_symbol_detects_bare_symbols() {
        assert_eq!(h().as_symbol(), Some(Symbol::new("test_h")));
        assert_eq!((h() * Expr::int(2)).as_symbol(), None);
        assert_eq!((h() + v()).as_symbol(), None);
    }

    #[test]
    #[should_panic(expected = "0^0")]
    fn zero_pow_zero_panics() {
        let _ = Expr::zero().pow(Rat::ZERO);
    }
}
