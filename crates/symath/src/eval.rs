//! Numeric evaluation of expressions under symbol bindings.

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::{Atom, Expr, Func};
use crate::symbol::Symbol;

/// A set of symbol → value bindings used to evaluate expressions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bindings {
    map: BTreeMap<Symbol, f64>,
}

impl Bindings {
    /// An empty binding set.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Bind `sym` to `value`, replacing any previous binding.
    pub fn set(&mut self, sym: impl Into<Symbol>, value: f64) -> &mut Self {
        self.map.insert(sym.into(), value);
        self
    }

    /// Builder-style binding.
    pub fn with(mut self, sym: impl Into<Symbol>, value: f64) -> Self {
        self.map.insert(sym.into(), value);
        self
    }

    /// Look up the value bound to `sym`, if any.
    pub fn get(&self, sym: Symbol) -> Option<f64> {
        self.map.get(&sym).copied()
    }

    /// True when no symbols are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of bound symbols.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterate over `(symbol, value)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, f64)> + '_ {
        self.map.iter().map(|(s, v)| (*s, *v))
    }

    /// Merge `other` into `self`; bindings in `other` win on conflict.
    pub fn extend(&mut self, other: &Bindings) {
        for (s, v) in other.iter() {
            self.map.insert(s, v);
        }
    }
}

impl<S: Into<Symbol>> FromIterator<(S, f64)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (S, f64)>>(iter: I) -> Bindings {
        let mut b = Bindings::new();
        for (s, v) in iter {
            b.set(s, v);
        }
        b
    }
}

/// Evaluation failure: a symbol had no binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnboundSymbol(pub Symbol);

impl fmt::Display for UnboundSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unbound symbol `{}`", self.0)
    }
}

impl std::error::Error for UnboundSymbol {}

impl Expr {
    /// Evaluate to an `f64` under `bindings`.
    ///
    /// Returns an error naming the first unbound symbol encountered.
    pub fn eval(&self, bindings: &Bindings) -> Result<f64, UnboundSymbol> {
        let mut total = 0.0;
        for t in self.terms() {
            let mut val = t.coeff.to_f64();
            for (a, e) in &t.factors {
                let base = match a {
                    Atom::Sym(s) => bindings.get(*s).ok_or(UnboundSymbol(*s))?,
                    Atom::Expr(inner) => inner.eval(bindings)?,
                    Atom::Func(f) => match f {
                        Func::Max(args) => {
                            let mut best = f64::NEG_INFINITY;
                            for x in args {
                                best = best.max(x.eval(bindings)?);
                            }
                            best
                        }
                        Func::Min(args) => {
                            let mut best = f64::INFINITY;
                            for x in args {
                                best = best.min(x.eval(bindings)?);
                            }
                            best
                        }
                        Func::Ceil(x) => x.eval(bindings)?.ceil(),
                    },
                };
                val *= base.powf(e.to_f64());
            }
            total += val;
        }
        Ok(total)
    }

    /// Evaluate and round to the nearest unsigned integer.
    ///
    /// # Panics
    /// Panics if the value is negative or not finite.
    pub fn eval_u64(&self, bindings: &Bindings) -> Result<u64, UnboundSymbol> {
        let v = self.eval(bindings)?;
        assert!(
            v.is_finite() && v >= -0.5,
            "expression evaluated to non-representable u64: {v}"
        );
        Ok(v.round().max(0.0) as u64)
    }

    /// Substitute every binding as an exact constant and return the
    /// simplified expression. Values must be exactly representable integers.
    pub fn bind_all(&self, bindings: &Bindings) -> Expr {
        let mut out = self.clone();
        for (s, v) in bindings.iter() {
            assert!(
                v.fract() == 0.0 && v.abs() < 2f64.powi(96),
                "bind_all requires integer-valued bindings, got {s}={v}"
            );
            out = out.subst(s, &Expr::int(v as i128));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_polynomials() {
        let h = Expr::sym("eval_h");
        let e = h.pow(2) * Expr::int(3) + &h + Expr::int(1);
        let b = Bindings::new().with("eval_h", 4.0);
        assert_eq!(e.eval(&b).unwrap(), 53.0);
    }

    #[test]
    fn evaluates_fractional_powers() {
        let p = Expr::sym("eval_p");
        let b = Bindings::new().with("eval_p", 256.0);
        assert_eq!(p.sqrt().eval(&b).unwrap(), 16.0);
    }

    #[test]
    fn evaluates_max_min_ceil() {
        let x = Expr::sym("eval_x");
        let b = Bindings::new().with("eval_x", 2.5);
        let m = Expr::max(vec![x.clone(), Expr::int(2)]);
        assert_eq!(m.eval(&b).unwrap(), 2.5);
        let n = Expr::min(vec![x.clone(), Expr::int(2)]);
        assert_eq!(n.eval(&b).unwrap(), 2.0);
        let c = Expr::ceil(x.clone());
        assert_eq!(c.eval(&b).unwrap(), 3.0);
    }

    #[test]
    fn unbound_symbol_is_an_error() {
        let e = Expr::sym("eval_missing");
        let err = e.eval(&Bindings::new()).unwrap_err();
        assert_eq!(err.0, crate::Symbol::new("eval_missing"));
    }

    #[test]
    fn composite_reciprocal_evaluates() {
        let h = Expr::sym("eval_h2");
        let e = Expr::int(10) / (h.clone() + Expr::int(1));
        let b = Bindings::new().with("eval_h2", 4.0);
        assert_eq!(e.eval(&b).unwrap(), 2.0);
    }

    #[test]
    fn bind_all_produces_constant() {
        let h = Expr::sym("eval_h3");
        let v = Expr::sym("eval_v3");
        let e = h.clone() * v.clone() + h.clone();
        let b = Bindings::new().with("eval_h3", 3.0).with("eval_v3", 5.0);
        let bound = e.bind_all(&b);
        assert_eq!(bound.as_const().map(|c| c.to_f64()), Some(18.0));
    }

    #[test]
    fn bindings_extend_overrides() {
        let mut a = Bindings::new().with("eval_k", 1.0);
        let b = Bindings::new().with("eval_k", 2.0).with("eval_j", 3.0);
        a.extend(&b);
        assert_eq!(a.get(Symbol::new("eval_k")), Some(2.0));
        assert_eq!(a.len(), 2);
    }
}
