//! Hash-consed expressions: intern once, compare and hash by id, memoize
//! the algebra.
//!
//! The tree [`Expr`] representation deep-clones boxed sub-expressions and
//! re-hashes whole trees on every map lookup. An [`ExprId`] is a 32-bit
//! handle into a global append-only table holding each *distinct* canonical
//! expression exactly once, so:
//!
//! * structural equality is id equality (`u32 ==`),
//! * clones are copies,
//! * hashing is O(1),
//! * and every algebraic operation can be **memoized** by operand ids: the
//!   thousands of repeated per-timestep/per-block cost combinations in the
//!   model builders and graph folding are computed once per distinct operand
//!   pair instead of once per occurrence.
//!
//! Memo keys are the exact operand ids (plus the exact exponent / binding
//! list), never lossy fingerprints, so a memo hit returns precisely the
//! expression the tree algebra would have built — the proptest suite
//! (`tests/intern_equiv.rs`) asserts interned ≡ tree on every operation.
//! Numeric evaluation goes through a per-id compiled [`Program`] cache and is
//! bit-identical to [`Expr::eval`] (see [`crate::compile`]).
//!
//! The table is append-only and never evicts: the workspace's expression
//! universe is bounded by the model families (a few thousand distinct
//! expressions), and stable ids are what make the memo tables sound.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::batch::{BatchProgram, BATCH_CACHE_HITS, BATCH_PROGRAMS_COMPILED};
use crate::compile::Program;
use crate::eval::{Bindings, UnboundSymbol};
use crate::expr::Expr;
use crate::rat::Rat;
use crate::symbol::Symbol;

/// A 32-bit handle to an interned expression. Two `ExprId`s are equal iff
/// the expressions they denote are structurally equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ExprId(u32);

/// Snapshot of the interner's counters (see [`intern_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Interning requests answered from the table.
    pub intern_hits: u64,
    /// Interning requests that inserted a new expression.
    pub intern_misses: u64,
    /// Memoized operations (`add`/`mul`/`pow`/`bind_all`) answered from cache.
    pub memo_hits: u64,
    /// Memoized operations that ran the tree algebra.
    pub memo_misses: u64,
    /// Distinct expressions in the table.
    pub table_len: u64,
    /// Distinct expressions with a compiled evaluation program.
    pub programs_compiled: u64,
    /// Distinct root sets with a compiled batch program.
    pub batch_programs: u64,
    /// Entries across the add/mul/pow/bind operation memo tables.
    pub memo_entries: u64,
}

impl InternStats {
    /// Fraction of intern requests answered from the table.
    pub fn intern_hit_rate(&self) -> f64 {
        rate(self.intern_hits, self.intern_misses)
    }

    /// Fraction of memoized operations answered from cache.
    pub fn memo_hit_rate(&self) -> f64 {
        rate(self.memo_hits, self.memo_misses)
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// `bind_all` memo key: the operand id plus the exact sorted integer
/// bindings (never a hashed fingerprint — collisions must be impossible).
type BindKey = (u32, Vec<(Symbol, i128)>);

struct Interner {
    /// id → expression. Append-only; `Arc` so views are O(1).
    exprs: RwLock<Vec<Arc<Expr>>>,
    /// expression → id (the hash-consing table).
    ids: RwLock<HashMap<Arc<Expr>, u32>>,
    /// Lazily compiled stack program per id.
    programs: RwLock<HashMap<u32, Arc<Program>>>,
    /// Lazily compiled batch program per root-id list (order-sensitive:
    /// the list *is* the program's output layout).
    batch_programs: RwLock<HashMap<Vec<u32>, Arc<BatchProgram>>>,
    add_memo: RwLock<HashMap<(u32, u32), u32>>,
    mul_memo: RwLock<HashMap<(u32, u32), u32>>,
    pow_memo: RwLock<HashMap<(u32, Rat), u32>>,
    bind_memo: RwLock<HashMap<BindKey, u32>>,
    intern_hits: AtomicU64,
    intern_misses: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
}

fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(|| Interner {
        exprs: RwLock::new(Vec::new()),
        ids: RwLock::new(HashMap::new()),
        programs: RwLock::new(HashMap::new()),
        batch_programs: RwLock::new(HashMap::new()),
        add_memo: RwLock::new(HashMap::new()),
        mul_memo: RwLock::new(HashMap::new()),
        pow_memo: RwLock::new(HashMap::new()),
        bind_memo: RwLock::new(HashMap::new()),
        intern_hits: AtomicU64::new(0),
        intern_misses: AtomicU64::new(0),
        memo_hits: AtomicU64::new(0),
        memo_misses: AtomicU64::new(0),
    })
}

/// Counter snapshot for benchmarks and `/v1/metrics`.
pub fn intern_stats() -> InternStats {
    let it = global();
    InternStats {
        intern_hits: it.intern_hits.load(Ordering::Relaxed),
        intern_misses: it.intern_misses.load(Ordering::Relaxed),
        memo_hits: it.memo_hits.load(Ordering::Relaxed),
        memo_misses: it.memo_misses.load(Ordering::Relaxed),
        table_len: it.exprs.read().len() as u64,
        programs_compiled: it.programs.read().len() as u64,
        batch_programs: it.batch_programs.read().len() as u64,
        memo_entries: (it.add_memo.read().len()
            + it.mul_memo.read().len()
            + it.pow_memo.read().len()
            + it.bind_memo.read().len()) as u64,
    }
}

impl ExprId {
    /// Intern `e`, returning the existing id if the expression is already in
    /// the table.
    pub fn intern(e: &Expr) -> ExprId {
        let it = global();
        if let Some(&id) = it.ids.read().get(e) {
            it.intern_hits.fetch_add(1, Ordering::Relaxed);
            return ExprId(id);
        }
        let mut ids = it.ids.write();
        // Re-check under the write lock: another thread may have interned it.
        if let Some(&id) = ids.get(e) {
            it.intern_hits.fetch_add(1, Ordering::Relaxed);
            return ExprId(id);
        }
        it.intern_misses.fetch_add(1, Ordering::Relaxed);
        let mut exprs = it.exprs.write();
        let id = u32::try_from(exprs.len()).expect("expression table overflow");
        let arc = Arc::new(e.clone());
        exprs.push(Arc::clone(&arc));
        ids.insert(arc, id);
        ExprId(id)
    }

    /// The interned expression (shared, O(1) — no tree clone).
    pub fn expr(self) -> Arc<Expr> {
        Arc::clone(&global().exprs.read()[self.0 as usize])
    }

    /// The raw table index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Interned zero.
    pub fn zero() -> ExprId {
        ExprId::intern(&Expr::zero())
    }

    /// Interned one.
    pub fn one() -> ExprId {
        ExprId::intern(&Expr::one())
    }

    /// Interned integer constant.
    pub fn int(n: i128) -> ExprId {
        ExprId::intern(&Expr::int(n))
    }

    /// Interned symbol expression.
    pub fn sym(name: &str) -> ExprId {
        ExprId::intern(&Expr::sym(name))
    }

    /// True iff this is the zero expression.
    pub fn is_zero(self) -> bool {
        self.expr().is_zero()
    }

    /// Memoized addition. Keyed on the unordered id pair — tree addition is
    /// structurally commutative (`normalize` sorts terms), so `(a, b)` and
    /// `(b, a)` produce the same canonical result.
    #[allow(clippy::should_implement_trait)] // `+` sugar is also provided
    pub fn add(self, rhs: ExprId) -> ExprId {
        let key = (self.0.min(rhs.0), self.0.max(rhs.0));
        memo_op(&global().add_memo, key, || {
            let (a, b) = (self.expr(), rhs.expr());
            ExprId::intern(&(&*a + &*b))
        })
    }

    /// Memoized multiplication; commutative like [`ExprId::add`].
    #[allow(clippy::should_implement_trait)] // `*` sugar is also provided
    pub fn mul(self, rhs: ExprId) -> ExprId {
        let key = (self.0.min(rhs.0), self.0.max(rhs.0));
        memo_op(&global().mul_memo, key, || {
            let (a, b) = (self.expr(), rhs.expr());
            ExprId::intern(&(&*a * &*b))
        })
    }

    /// Memoized exponentiation by an exact rational.
    pub fn pow(self, exp: impl Into<Rat>) -> ExprId {
        let exp = exp.into();
        memo_op(&global().pow_memo, (self.0, exp), || {
            ExprId::intern(&self.expr().pow(exp))
        })
    }

    /// Memoized [`Expr::bind_all`]: substitute every binding as an exact
    /// integer constant. Keyed on the exact `(symbol, value)` list in symbol
    /// order, so distinct bindings can never alias.
    pub fn bind_all(self, bindings: &Bindings) -> ExprId {
        let key: Vec<(Symbol, i128)> = bindings
            .iter()
            .map(|(s, v)| {
                assert!(
                    v.fract() == 0.0 && v.abs() < 2f64.powi(96),
                    "bind_all requires integer-valued bindings, got {s}={v}"
                );
                (s, v as i128)
            })
            .collect();
        memo_op(&global().bind_memo, (self.0, key), || {
            ExprId::intern(&self.expr().bind_all(bindings))
        })
    }

    /// The compiled program for this expression (compiled once, then cached).
    pub fn program(self) -> Arc<Program> {
        let it = global();
        if let Some(p) = it.programs.read().get(&self.0) {
            return Arc::clone(p);
        }
        let prog = Arc::new(Program::compile(&self.expr()));
        Arc::clone(it.programs.write().entry(self.0).or_insert(prog))
    }

    /// Evaluate via the compiled program. Bit-identical to
    /// [`Expr::eval`] on the interned expression.
    pub fn eval(self, bindings: &Bindings) -> Result<f64, UnboundSymbol> {
        self.program().eval(bindings)
    }

    /// Evaluate and round to the nearest unsigned integer, with the same
    /// contract as [`Expr::eval_u64`].
    ///
    /// # Panics
    /// Panics if the value is negative or not finite.
    pub fn eval_u64(self, bindings: &Bindings) -> Result<u64, UnboundSymbol> {
        let v = self.eval(bindings)?;
        assert!(
            v.is_finite() && v >= -0.5,
            "expression evaluated to non-representable u64: {v}"
        );
        Ok(v.round().max(0.0) as u64)
    }
}

/// The cached [`BatchProgram`] for a root-id list, compiled on first
/// request. The key is the exact ordered list — it determines the program's
/// per-root output layout — so a sweep that prices the same stats + element
/// table compiles once and replays for every grid.
pub fn batch_program(roots: &[ExprId]) -> Arc<BatchProgram> {
    let it = global();
    let key: Vec<u32> = roots.iter().map(|r| r.0).collect();
    if let Some(p) = it.batch_programs.read().get(&key) {
        BATCH_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(p);
    }
    // Compile outside the lock (same discipline as `memo_op`): concurrent
    // misses may compile twice, but the programs are identical and the
    // first insert wins.
    let prog = Arc::new(BatchProgram::compile(roots));
    let mut cache = it.batch_programs.write();
    if let Some(p) = cache.get(&key) {
        BATCH_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(p);
    }
    BATCH_PROGRAMS_COMPILED.fetch_add(1, Ordering::Relaxed);
    Arc::clone(cache.entry(key).or_insert(prog))
}

/// Memo-cache lookup with the compute step outside any lock: concurrent
/// misses may compute twice, but the results are identical canonical
/// expressions and the first insert wins.
fn memo_op<K: std::hash::Hash + Eq>(
    cache: &RwLock<HashMap<K, u32>>,
    key: K,
    compute: impl FnOnce() -> ExprId,
) -> ExprId {
    let it = global();
    if let Some(&id) = cache.read().get(&key) {
        it.memo_hits.fetch_add(1, Ordering::Relaxed);
        return ExprId(id);
    }
    it.memo_misses.fetch_add(1, Ordering::Relaxed);
    let result = compute();
    ExprId(*cache.write().entry(key).or_insert(result.0))
}

impl Expr {
    /// Intern this expression (see [`ExprId::intern`]).
    pub fn interned(&self) -> ExprId {
        ExprId::intern(self)
    }
}

impl From<ExprId> for Expr {
    /// Materialize the tree view, so any `impl Into<Expr>` API (shape
    /// constructors, the model builders) accepts a hash-consed id directly.
    fn from(id: ExprId) -> Expr {
        (*id.expr()).clone()
    }
}

impl std::ops::Add for ExprId {
    type Output = ExprId;
    fn add(self, rhs: ExprId) -> ExprId {
        ExprId::add(self, rhs)
    }
}

impl std::ops::Mul for ExprId {
    type Output = ExprId;
    fn mul(self, rhs: ExprId) -> ExprId {
        ExprId::mul(self, rhs)
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_expressions_intern_to_equal_ids() {
        let a = (Expr::sym("in_a") + Expr::int(1)) * Expr::sym("in_b");
        let b = Expr::sym("in_b") * (Expr::int(1) + Expr::sym("in_a"));
        assert_eq!(a.interned(), b.interned());
        assert_ne!(a.interned(), Expr::sym("in_a").interned());
    }

    #[test]
    fn view_roundtrips_to_the_same_id() {
        let e = Expr::sym("in_h").pow(2) * Expr::int(3) + Expr::int(7);
        let id = e.interned();
        assert_eq!(*id.expr(), e);
        assert_eq!(ExprId::intern(&id.expr()), id);
    }

    #[test]
    fn memoized_ops_match_tree_algebra() {
        let a = Expr::sym("in_x") + Expr::int(2);
        let b = Expr::sym("in_y") * Expr::int(3);
        assert_eq!(*(a.interned() + b.interned()).expr(), &a + &b);
        assert_eq!(*(a.interned() * b.interned()).expr(), &a * &b);
        assert_eq!(*a.interned().pow(Rat::TWO).expr(), a.pow(Rat::TWO));
    }

    #[test]
    fn add_memo_is_commutative_on_key() {
        let a = Expr::sym("in_p").interned();
        let b = Expr::sym("in_q").interned();
        assert_eq!(a + b, b + a);
    }

    #[test]
    fn bind_all_matches_tree_and_caches() {
        let e = Expr::sym("in_w") * Expr::sym("in_v") + Expr::sym("in_w");
        let bind = Bindings::new().with("in_w", 3.0);
        let id = e.interned().bind_all(&bind);
        assert_eq!(*id.expr(), e.bind_all(&bind));
        // Second call must hit the memo (same id back).
        assert_eq!(e.interned().bind_all(&bind), id);
    }

    #[test]
    fn compiled_eval_is_bit_identical_to_tree_eval() {
        let e = Expr::sym("in_e").pow(Rat::HALF) * Expr::int(12) + Expr::rat(5, 7);
        let b = Bindings::new().with("in_e", 1234.0);
        assert_eq!(
            e.interned().eval(&b).unwrap().to_bits(),
            e.eval(&b).unwrap().to_bits()
        );
    }

    #[test]
    fn batch_program_is_cached_per_root_list() {
        let a = (Expr::sym("in_bp") + Expr::int(1)).interned();
        let b = (Expr::sym("in_bp") * Expr::int(2)).interned();
        let p1 = batch_program(&[a, b]);
        let p2 = batch_program(&[a, b]);
        assert!(Arc::ptr_eq(&p1, &p2), "same root list must hit the cache");
        // A different order is a different output layout → distinct program.
        let p3 = batch_program(&[b, a]);
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert!(intern_stats().batch_programs >= 2);
    }

    #[test]
    fn stats_counters_advance() {
        let before = intern_stats();
        let fresh = Expr::sym("in_ctr") + Expr::int(917);
        let _ = fresh.interned();
        let _ = fresh.interned();
        let after = intern_stats();
        assert!(after.intern_misses > before.intern_misses);
        assert!(after.intern_hits > before.intern_hits);
        assert!(after.table_len > 0);
    }
}
