//! Human-readable rendering of expressions.

use std::fmt;

use crate::expr::{Atom, Expr, Func};
use crate::rat::Rat;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms().is_empty() {
            return write!(f, "0");
        }
        for (i, t) in self.terms().iter().enumerate() {
            let coeff = t.coeff;
            if i == 0 {
                if coeff.is_negative() {
                    write!(f, "-")?;
                }
            } else if coeff.is_negative() {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let mag = coeff.abs();
            if t.factors.is_empty() {
                write!(f, "{mag}")?;
            } else {
                let mut wrote = false;
                if !mag.is_one() {
                    write!(f, "{mag}")?;
                    wrote = true;
                }
                for (a, e) in &t.factors {
                    if wrote {
                        write!(f, "·")?;
                    }
                    fmt_factor(f, a, *e)?;
                    wrote = true;
                }
            }
        }
        Ok(())
    }
}

fn fmt_factor(f: &mut fmt::Formatter<'_>, atom: &Atom, exp: Rat) -> fmt::Result {
    match atom {
        Atom::Sym(s) => write!(f, "{s}")?,
        Atom::Expr(e) => write!(f, "({e})")?,
        Atom::Func(func) => match func {
            Func::Max(args) => fmt_call(f, "max", args)?,
            Func::Min(args) => fmt_call(f, "min", args)?,
            Func::Ceil(a) => write!(f, "ceil({a})")?,
        },
    }
    if !exp.is_one() {
        if exp.is_integer() && !exp.is_negative() {
            write!(f, "^{exp}")?;
        } else {
            write!(f, "^({exp})")?;
        }
    }
    Ok(())
}

fn fmt_call(f: &mut fmt::Formatter<'_>, name: &str, args: &[Expr]) -> fmt::Result {
    write!(f, "{name}(")?;
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use crate::Expr;

    #[test]
    fn renders_zero() {
        assert_eq!(Expr::zero().to_string(), "0");
    }

    #[test]
    fn renders_polynomial() {
        let h = Expr::sym("disp_h");
        let e = h.pow(2) * Expr::int(3) + &h - Expr::int(7);
        // Canonical term order puts the constant first.
        assert_eq!(e.to_string(), "-7 + disp_h + 3·disp_h^2");
    }

    #[test]
    fn renders_fractional_power() {
        let p = Expr::sym("disp_p");
        assert_eq!(p.sqrt().to_string(), "disp_p^(1/2)");
        assert_eq!(p.recip().to_string(), "disp_p^(-1)");
    }

    #[test]
    fn renders_composite_and_funcs() {
        let a = Expr::sym("disp_a");
        let b = Expr::sym("disp_b");
        let e = (a.clone() + b.clone()).recip();
        assert_eq!(e.to_string(), "(disp_a + disp_b)^(-1)");
        let m = Expr::max(vec![a.clone(), b.clone()]);
        assert_eq!(m.to_string(), "max(disp_a, disp_b)");
        let c = Expr::ceil(a / Expr::int(2));
        assert_eq!(c.to_string(), "ceil(1/2·disp_a)");
    }
}
