//! Compiled evaluation: flat stack programs replaying the tree evaluator.
//!
//! [`Expr::eval`](crate::Expr::eval) walks the canonical sum-of-terms tree on
//! every call, re-matching atoms and re-looking-up symbols. A [`Program`]
//! linearizes one expression into a sequence of [`Instr`]s **in the exact
//! order the tree evaluator performs its `f64` operations**, with symbols
//! resolved once into dense slots. Because IEEE-754 arithmetic is
//! deterministic, replaying the same operation sequence on the same inputs
//! produces the same bits — so compiled evaluation is *bit-identical* to the
//! tree walk, not merely close (asserted by the equivalence suites).
//!
//! The instruction mapping mirrors `Expr::eval` statement by statement:
//!
//! * an expression starts `total = 0.0` → `Const(0.0)`, and each term ends
//!   with `total += val` → `Add`;
//! * a term starts `val = coeff` → `Const(coeff)` and each factor performs
//!   `val *= base.powf(e)` → *atom code* (pushes `base`) then `PowMul(e)`;
//! * `max` folds from `NEG_INFINITY` → `Const(NEG_INFINITY)` then per
//!   argument *expr code* + `Max` (symmetrically `min` from `INFINITY`);
//! * `ceil` rounds the top of stack in place.
//!
//! Slot order is first-encounter order during compilation, which equals the
//! tree evaluator's symbol-encounter order, so even the "first unbound
//! symbol" error names the same symbol.

use std::collections::HashMap;

use crate::eval::{Bindings, UnboundSymbol};
use crate::expr::{Atom, Expr, Func};
use crate::symbol::Symbol;

/// One stack-machine operation. See the module docs for the mapping from
/// tree evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    /// Push a constant.
    Const(f64),
    /// Push the value bound to symbol slot `.0`.
    Load(u32),
    /// Pop `base`; replace the new top `val` with `val * base.powf(exp)`.
    PowMul(f64),
    /// Pop `b`; replace the new top `a` with `a + b`.
    Add,
    /// Pop `b`; replace the new top `a` with `a.max(b)`.
    Max,
    /// Pop `b`; replace the new top `a` with `a.min(b)`.
    Min,
    /// Replace the top of stack with its ceiling.
    Ceil,
}

/// A compiled expression: flat instructions plus the symbol table mapping
/// load slots back to [`Symbol`]s.
#[derive(Clone, Debug)]
pub struct Program {
    instrs: Vec<Instr>,
    /// Slot `i` loads the value of `syms[i]`.
    syms: Vec<Symbol>,
    /// Maximum evaluation stack depth (exact, tracked during compilation).
    stack_depth: usize,
}

struct Compiler {
    instrs: Vec<Instr>,
    syms: Vec<Symbol>,
    slot_of: HashMap<Symbol, u32>,
    depth: usize,
    max_depth: usize,
}

impl Compiler {
    fn push(&mut self, i: Instr) {
        match i {
            Instr::Const(_) | Instr::Load(_) => {
                self.depth += 1;
                self.max_depth = self.max_depth.max(self.depth);
            }
            Instr::PowMul(_) | Instr::Add | Instr::Max | Instr::Min => self.depth -= 1,
            Instr::Ceil => {}
        }
        self.instrs.push(i);
    }

    fn slot(&mut self, s: Symbol) -> u32 {
        if let Some(&i) = self.slot_of.get(&s) {
            return i;
        }
        let i = self.syms.len() as u32;
        self.syms.push(s);
        self.slot_of.insert(s, i);
        i
    }

    fn expr(&mut self, e: &Expr) {
        self.push(Instr::Const(0.0));
        for t in e.terms() {
            self.push(Instr::Const(t.coeff.to_f64()));
            for (a, exp) in &t.factors {
                self.atom(a);
                self.push(Instr::PowMul(exp.to_f64()));
            }
            self.push(Instr::Add);
        }
    }

    fn atom(&mut self, a: &Atom) {
        match a {
            Atom::Sym(s) => {
                let slot = self.slot(*s);
                self.push(Instr::Load(slot));
            }
            Atom::Expr(inner) => self.expr(inner),
            Atom::Func(Func::Max(args)) => {
                self.push(Instr::Const(f64::NEG_INFINITY));
                for x in args {
                    self.expr(x);
                    self.push(Instr::Max);
                }
            }
            Atom::Func(Func::Min(args)) => {
                self.push(Instr::Const(f64::INFINITY));
                for x in args {
                    self.expr(x);
                    self.push(Instr::Min);
                }
            }
            Atom::Func(Func::Ceil(x)) => {
                self.expr(x);
                self.push(Instr::Ceil);
            }
        }
    }
}

impl Program {
    /// Linearize `e` into a stack program.
    pub fn compile(e: &Expr) -> Program {
        let mut c = Compiler {
            instrs: Vec::new(),
            syms: Vec::new(),
            slot_of: HashMap::new(),
            depth: 0,
            max_depth: 0,
        };
        c.expr(e);
        debug_assert_eq!(c.depth, 1, "a program leaves exactly its value");
        Program {
            instrs: c.instrs,
            syms: c.syms,
            stack_depth: c.max_depth,
        }
    }

    /// Execute the program under `bindings`.
    ///
    /// Bit-identical to [`Expr::eval`](crate::Expr::eval) on the compiled
    /// expression, including which unbound symbol an error names.
    pub fn eval(&self, bindings: &Bindings) -> Result<f64, UnboundSymbol> {
        let mut slots = Vec::with_capacity(self.syms.len());
        for &s in &self.syms {
            slots.push(bindings.get(s).ok_or(UnboundSymbol(s))?);
        }
        let mut stack: Vec<f64> = Vec::with_capacity(self.stack_depth);
        for i in &self.instrs {
            match *i {
                Instr::Const(c) => stack.push(c),
                Instr::Load(slot) => stack.push(slots[slot as usize]),
                Instr::PowMul(exp) => {
                    let base = stack.pop().expect("PowMul needs a base");
                    let val = stack.last_mut().expect("PowMul needs a value");
                    *val *= base.powf(exp);
                }
                Instr::Add => {
                    let b = stack.pop().expect("Add needs two operands");
                    let a = stack.last_mut().expect("Add needs two operands");
                    *a += b;
                }
                Instr::Max => {
                    let b = stack.pop().expect("Max needs two operands");
                    let a = stack.last_mut().expect("Max needs two operands");
                    *a = a.max(b);
                }
                Instr::Min => {
                    let b = stack.pop().expect("Min needs two operands");
                    let a = stack.last_mut().expect("Min needs two operands");
                    *a = a.min(b);
                }
                Instr::Ceil => {
                    let a = stack.last_mut().expect("Ceil needs an operand");
                    *a = a.ceil();
                }
            }
        }
        debug_assert_eq!(stack.len(), 1);
        Ok(stack.pop().expect("program leaves its value on the stack"))
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True for an empty instruction sequence (never produced by `compile`).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Symbols in slot order (the tree evaluator's encounter order).
    pub fn symbols(&self) -> &[Symbol] {
        &self.syms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat::Rat;

    fn bits(x: f64) -> u64 {
        x.to_bits()
    }

    #[test]
    fn polynomial_matches_tree_eval_bitwise() {
        let h = Expr::sym("cmp_h");
        let e = h.pow(2) * Expr::int(3) + &h + Expr::rat(1, 3);
        let b = Bindings::new().with("cmp_h", 17.0);
        let p = Program::compile(&e);
        assert_eq!(bits(p.eval(&b).unwrap()), bits(e.eval(&b).unwrap()));
    }

    #[test]
    fn max_min_ceil_match_tree_eval_bitwise() {
        let x = Expr::sym("cmp_x");
        let y = Expr::sym("cmp_y");
        let e = Expr::ceil(Expr::max(vec![x.clone() * Expr::rat(7, 3), y.clone()]))
            * Expr::min(vec![x.clone(), y.clone() + Expr::int(1)]);
        let b = Bindings::new().with("cmp_x", 2.75).with("cmp_y", 6.5);
        let p = Program::compile(&e);
        assert_eq!(bits(p.eval(&b).unwrap()), bits(e.eval(&b).unwrap()));
    }

    #[test]
    fn fractional_powers_match_tree_eval_bitwise() {
        let p_sym = Expr::sym("cmp_p");
        let e = p_sym.sqrt() * Expr::int(5) + (p_sym.clone() + Expr::int(1)).recip();
        let b = Bindings::new().with("cmp_p", 77.0);
        let prog = Program::compile(&e);
        assert_eq!(bits(prog.eval(&b).unwrap()), bits(e.eval(&b).unwrap()));
    }

    #[test]
    fn unbound_symbol_error_names_first_encountered() {
        let e = Expr::sym("cmp_u1") + Expr::sym("cmp_u2");
        let p = Program::compile(&e);
        let tree_err = e.eval(&Bindings::new()).unwrap_err();
        let prog_err = p.eval(&Bindings::new()).unwrap_err();
        assert_eq!(tree_err, prog_err);
    }

    #[test]
    fn min_max_branches_resolve_slots_in_first_encounter_order() {
        // The canonical form is max(5, z)·min(a, z): `cmp_mm_z` is first
        // encountered inside the `max` branch, `cmp_mm_a` only later inside
        // `min`. Slot order must follow encounter order, not name order, and
        // `cmp_mm_z` under both branches must share one slot — so an
        // all-unbound eval names `cmp_mm_z` first, exactly like the tree walk.
        let z = Expr::sym("cmp_mm_z");
        let a = Expr::sym("cmp_mm_a");
        let e = Expr::max(vec![z.clone(), Expr::int(5)]) * Expr::min(vec![a.clone(), z.clone()]);
        let p = Program::compile(&e);
        let names: Vec<String> = p.symbols().iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["cmp_mm_z", "cmp_mm_a"]);
        let tree_err = e.eval(&Bindings::new()).unwrap_err();
        let prog_err = p.eval(&Bindings::new()).unwrap_err();
        assert_eq!(tree_err, prog_err);
        assert_eq!(prog_err.0.to_string(), "cmp_mm_z");
        // With `cmp_mm_z` bound, the next slot in encounter order errors.
        let half = Bindings::new().with("cmp_mm_z", 3.0);
        assert_eq!(p.eval(&half).unwrap_err(), e.eval(&half).unwrap_err());
    }

    #[test]
    fn zero_expression_evaluates_to_zero() {
        let p = Program::compile(&Expr::zero());
        assert_eq!(p.eval(&Bindings::new()).unwrap(), 0.0);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn repeated_symbols_share_one_slot() {
        let h = Expr::sym("cmp_slot");
        let e = h.pow(2) + h.clone() * Expr::int(4) + h.pow(Rat::int(3));
        let p = Program::compile(&e);
        assert_eq!(p.symbols().len(), 1);
    }
}
