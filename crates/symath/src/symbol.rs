//! Interned symbols.
//!
//! All symbols denote **positive real quantities** (tensor dimensions, batch
//! sizes, sequence lengths). Simplification rules in [`crate::Expr`] rely on
//! positivity — e.g. `(x·y)^(1/2) = x^(1/2)·y^(1/2)` — which is sound under
//! this convention.

use std::fmt;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// A cheap, copyable handle to an interned symbol name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<String>,
}

static INTERNER: RwLock<Interner> = RwLock::new(Interner { names: Vec::new() });

impl Symbol {
    /// Intern `name`, returning the existing handle if already interned.
    pub fn new(name: &str) -> Symbol {
        {
            let guard = INTERNER.read();
            if let Some(idx) = guard.names.iter().position(|n| n == name) {
                return Symbol(idx as u32);
            }
        }
        let mut guard = INTERNER.write();
        // Re-check under the write lock: another thread may have interned it.
        if let Some(idx) = guard.names.iter().position(|n| n == name) {
            return Symbol(idx as u32);
        }
        let idx = guard.names.len();
        guard.names.push(name.to_owned());
        Symbol(idx as u32)
    }

    /// The symbol's name. Allocates; intended for display paths only.
    pub fn name(&self) -> String {
        INTERNER.read().names[self.0 as usize].clone()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.name())
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::new(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("hidden_dim");
        let b = Symbol::new("hidden_dim");
        assert_eq!(a, b);
        assert_eq!(a.name(), "hidden_dim");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::new("alpha_x"), Symbol::new("alpha_y"));
    }

    #[test]
    fn concurrent_interning_converges() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::new("concurrent_sym")))
            .collect();
        let syms: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
