//! `symath` — a small exact symbolic-algebra engine.
//!
//! This crate is the algebraic substrate for the `frontier` workspace: it
//! represents the polynomial-with-fractional-powers expressions that arise
//! when propagating symbolic tensor dimensions through deep-learning compute
//! graphs (the role sympy plays in the original Catamount artifact of
//! Hestness et al., PPoPP 2019).
//!
//! # Model
//!
//! * [`Expr`] — canonical sum-of-products expressions with exact [`Rat`]
//!   coefficients and exponents, plus `max`, `min`, and `ceil`.
//! * [`Symbol`] — interned names; all symbols denote **positive** reals
//!   (tensor dimensions), which licenses exponent distribution.
//! * [`Bindings`] — symbol → value maps for numeric [`Expr::eval`].
//! * [`ExprId`] — hash-consed expression handles: O(1) equality/hash/clone,
//!   memoized `add`/`mul`/`pow`/`bind_all`, and compiled ([`Program`])
//!   evaluation that is bit-identical to the tree walk.
//! * [`BatchProgram`] — a set of roots compiled once into a register VM
//!   that evaluates whole grids structure-of-arrays (see [`batch_program`]),
//!   again bit-identical per point.
//!
//! # Example
//!
//! ```
//! use symath::{Expr, Bindings};
//!
//! // FLOPs of one LSTM layer forward step: 16·q·h² (paper §4.2, l = 1).
//! let h = Expr::sym("h");
//! let q = Expr::sym("q");
//! let flops = Expr::int(16) * &q * h.pow(2);
//!
//! let b = Bindings::new().with("h", 1024.0).with("q", 80.0);
//! assert_eq!(flops.eval(&b).unwrap(), 16.0 * 80.0 * 1024.0 * 1024.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod batch;
mod compile;
mod display;
mod eval;
mod expr;
mod intern;
mod rat;
mod symbol;

pub use batch::{batch_stats, BatchError, BatchInstr, BatchProgram, BatchStats};
pub use compile::{Instr, Program};
pub use eval::{Bindings, UnboundSymbol};
pub use expr::{Atom, Expr, Func};
pub use intern::{batch_program, intern_stats, ExprId, InternStats};
pub use rat::Rat;
pub use symbol::Symbol;
