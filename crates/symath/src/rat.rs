//! Exact rational arithmetic over `i128`.
//!
//! Coefficients and exponents in [`crate::Expr`] are exact rationals so that
//! algebraic simplification (like-term collection, exponent arithmetic) never
//! loses precision. Magnitudes stay small in practice — they are op-level
//! constants such as `2·kh·kw` — so `i128` with checked arithmetic suffices.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// An exact rational number `num / den`, always stored in lowest terms with
/// `den > 0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// The rational 0.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational 1.
    pub const ONE: Rat = Rat { num: 1, den: 1 };
    /// The rational 2.
    pub const TWO: Rat = Rat { num: 2, den: 1 };
    /// One half — the exponent used for square roots.
    pub const HALF: Rat = Rat { num: 1, den: 2 };

    /// Construct a rational, normalizing sign and reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        if num == 0 {
            return Rat::ZERO;
        }
        let g = gcd(num, den);
        let sign = if den < 0 { -1 } else { 1 };
        Rat {
            num: sign * (num / g),
            den: sign * (den / g),
        }
    }

    /// An integer as a rational.
    pub const fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// True when the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True when the value is exactly one.
    pub fn is_one(&self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// True when the denominator is one.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True when the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns the integer value if this rational is an integer.
    pub fn as_integer(&self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(&self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Nearest `f64` value.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Integer power with a checked exponent; negative exponents invert.
    ///
    /// # Panics
    /// Panics on `0^negative` or on `i128` overflow.
    pub fn powi(&self, exp: i64) -> Rat {
        if exp == 0 {
            return Rat::ONE;
        }
        let (base, e) = if exp < 0 {
            (self.recip(), exp.unsigned_abs())
        } else {
            (*self, exp as u64)
        };
        let mut acc = Rat::ONE;
        let mut b = base;
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * b;
            }
            e >>= 1;
            if e > 0 {
                b = b * b;
            }
        }
        acc
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        let num = self
            .num
            .checked_mul(rhs.den)
            .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
            .expect("rational addition overflow");
        let den = self
            .den
            .checked_mul(rhs.den)
            .expect("rational addition overflow");
        Rat::new(num, den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("rational multiplication overflow");
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("rational multiplication overflow");
        Rat::new(num, den)
    }
}

impl Div for Rat {
    type Output = Rat;
    // a/b as a·b⁻¹ is the intended exact-arithmetic formulation.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b  (b, d > 0)
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational compare overflow");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational compare overflow");
        lhs.cmp(&rhs)
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Rat {
        Rat::int(n)
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::int(n as i128)
    }
}

impl From<u64> for Rat {
    fn from(n: u64) -> Rat {
        Rat::int(n as i128)
    }
}

impl From<i32> for Rat {
    fn from(n: i32) -> Rat {
        Rat::int(n as i128)
    }
}

impl From<usize> for Rat {
    fn from(n: usize) -> Rat {
        Rat::int(n as i128)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_sign_and_reduces() {
        let r = Rat::new(4, -6);
        assert_eq!(r.num(), -2);
        assert_eq!(r.den(), 3);
    }

    #[test]
    fn zero_collapses() {
        assert_eq!(Rat::new(0, -17), Rat::ZERO);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::int(2));
    }

    #[test]
    fn powi_handles_negative_exponents() {
        let a = Rat::new(2, 3);
        assert_eq!(a.powi(2), Rat::new(4, 9));
        assert_eq!(a.powi(-2), Rat::new(9, 4));
        assert_eq!(a.powi(0), Rat::ONE);
    }

    #[test]
    fn ordering_matches_f64() {
        let a = Rat::new(7, 8);
        let b = Rat::new(8, 9);
        assert!(a < b);
        assert!(a.to_f64() < b.to_f64());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn comparison_is_exact_near_ties() {
        // 1/3 vs 333333/1000000 differ only in the 7th decimal digit.
        assert!(Rat::new(333_333, 1_000_000) < Rat::new(1, 3));
    }
}
