//! Concurrent HTTP/1.1 JSON query server over the characterization
//! pipeline.
//!
//! The paper's analyses (characterization sweeps, frontier projections,
//! subbatch selection, parallelism planning) are deterministic pure
//! functions of `(domain, model config, bindings)` — ideal memoization
//! targets. This crate serves them over plain `std::net` sockets:
//!
//! ```text
//! accept loop (nonblocking, polls shutdown flag)
//!   └─ bounded worker pool ──► http parse ──► route dispatch
//!                                               └─ sharded single-flight
//!                                                  memo cache ──► analysis
//! ```
//!
//! Everything is `std`-only: hand-rolled HTTP, JSON, histogram, LRU. See
//! `DESIGN.md` § "Serving layer" for the reasoning behind the cache keying
//! and shutdown semantics.

pub mod cache;
pub mod flags;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod query;
pub mod routes;
pub mod signal;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use roofline::Accelerator;

use cache::MemoCache;
use metrics::Metrics;
use pool::{SubmitError, WorkerPool};

/// Server construction parameters (see the `serve` binary's flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:8080`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Memoization cache capacity, in resident response bodies.
    pub cache_entries: usize,
    /// Bounded queue depth between accept loop and workers.
    pub queue_depth: usize,
    /// Per-request deadline: a connection still queued after this long is
    /// answered 503 instead of computed.
    pub deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            threads: std::thread::available_parallelism().map_or(4, usize::from),
            cache_entries: 1024,
            queue_depth: 256,
            deadline: Duration::from_secs(30),
        }
    }
}

/// Shared server state: the cache, metrics, and the reference accelerator
/// all roofline-derived endpoints price against.
pub struct AppState {
    /// Memoized response bodies.
    pub cache: MemoCache,
    /// Request counters and latency histogram.
    pub metrics: Metrics,
    /// Reference accelerator (Table 4's V100-like part).
    pub accel: Accelerator,
    /// Server start time (for uptime reporting).
    pub started: Instant,
    /// Queued-request deadline.
    pub deadline: Duration,
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// accepting, drains in-flight requests, and joins every thread.
pub struct Server {
    state: Arc<AppState>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start accepting.
    pub fn start(config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shards = config.threads.clamp(1, 16);
        let state = Arc::new(AppState {
            cache: MemoCache::new(config.cache_entries.max(1), shards),
            metrics: Metrics::default(),
            accel: Accelerator::v100_like(),
            started: Instant::now(),
            deadline: config.deadline,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let pool = WorkerPool::new(config.threads, config.queue_depth);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &state, &stop, pool))
                .expect("spawn accept thread")
        };
        Ok(Server {
            state,
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared state handle (tests inspect metrics through this).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Serve until SIGTERM/SIGINT, then shut down gracefully.
    pub fn run_until_signal(mut self) {
        signal::install();
        while !signal::requested() && !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<AppState>,
    stop: &Arc<AtomicBool>,
    mut pool: WorkerPool,
) {
    while !stop.load(Ordering::SeqCst) && !signal::requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let accepted_at = Instant::now();
                let job_state = Arc::clone(state);
                let job_stream = stream;
                let submitted = pool.submit(move || {
                    handle_connection(&job_state, job_stream, accepted_at);
                });
                match submitted {
                    Ok(()) => {}
                    Err(SubmitError::QueueFull | SubmitError::ShuttingDown) => {
                        state
                            .metrics
                            .rejected_queue_full
                            .fetch_add(1, Ordering::Relaxed);
                        // The job (and its stream) was dropped; nothing more
                        // to send — the client sees a closed connection,
                        // which is the honest overload signal at this layer.
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept errors (ECONNABORTED etc.): keep serving.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // Drain: queued connections still get answers, then workers exit.
    pool.shutdown();
}

/// Handle one connection end to end (runs on a worker thread).
fn handle_connection(state: &Arc<AppState>, mut stream: TcpStream, accepted_at: Instant) {
    state.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
    // The stream arrived nonblocking from the nonblocking listener; request
    // handling wants blocking reads bounded by timeouts.
    let _ = stream.set_nonblocking(false);
    if accepted_at.elapsed() > state.deadline {
        state
            .metrics
            .rejected_deadline
            .fetch_add(1, Ordering::Relaxed);
        let body = query::ApiError {
            status: 503,
            code: "deadline_exceeded",
            message: "request sat in queue past its deadline".to_string(),
        }
        .body()
        .render();
        let _ = http::write_response(&mut stream, 503, &body, None, false);
        finish(state, 503, accepted_at);
        return;
    }
    match http::read_request(&mut stream) {
        Ok(req) => {
            let head_only = req.method == "HEAD";
            let routed = routes::dispatch(state, &req);
            let _ = http::write_response(
                &mut stream,
                routed.status,
                &routed.body,
                routed.cache_state,
                head_only,
            );
            finish(state, routed.status, accepted_at);
        }
        Err(e) => {
            let body = query::ApiError {
                status: e.status,
                code: e.code,
                message: e.message,
            }
            .body()
            .render();
            let _ = http::write_response(&mut stream, e.status, &body, None, false);
            finish(state, e.status, accepted_at);
        }
    }
}

fn finish(state: &Arc<AppState>, status: u16, accepted_at: Instant) {
    let elapsed_us = u64::try_from(accepted_at.elapsed().as_micros()).unwrap_or(u64::MAX);
    state.metrics.record_response(status, elapsed_us);
    state.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
}
