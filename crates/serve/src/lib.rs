//! Concurrent HTTP/1.1 JSON query server over the characterization
//! pipeline.
//!
//! The paper's analyses (characterization sweeps, frontier projections,
//! subbatch selection, parallelism planning) are deterministic pure
//! functions of `(domain, model config, bindings)` — ideal memoization
//! targets. This crate serves them over plain `std::net` sockets behind a
//! single-threaded epoll reactor:
//!
//! ```text
//! epoll reactor (one thread: accept, parse, keep-alive, writev)
//!   ├─ response-bytes cache ──► warm hit: zero-copy writev
//!   ├─ dynamic endpoints ─────► dispatched inline
//!   └─ cold computes ─────────► bounded worker pool ──► route dispatch
//!                                 └─ sharded single-flight memo cache
//!                                      └─ analysis  (eventfd completes
//!                                                    back to the reactor)
//! ```
//!
//! Everything is `std`-only: hand-rolled HTTP, JSON, histogram, LRU, and
//! raw-FFI epoll (see [`reactor`]). See `DESIGN.md` § "Event-driven serve
//! tier" for the connection state machine and the bytes-cache layering,
//! § "Serving layer" for cache keying and shutdown semantics, and
//! § "Telemetry plane" for the metric registry, the request-scoped trace
//! context, and the flight recorder threaded through every request.

pub mod cache;
pub mod flags;
pub mod flight;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod query;
mod reactor;
pub mod routes;
pub mod signal;
pub mod trace;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::metrics::Registry;
use roofline::Accelerator;

use cache::{BytesCache, MemoCache};
use flight::{FlightRecorder, RequestRecord};
use metrics::{Metrics, ReactorStats};
use pool::{QueueWatcher, WorkerPool};
use reactor::{Completions, Reactor};
use trace::RequestTrace;

/// Cap on the global obs recorder once a server is running: sampled spans
/// must not grow memory without bound on a long-lived process.
const RECORDER_CAPACITY: usize = 65_536;

/// Server construction parameters (see the `serve` binary's flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:8080`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling cold computes.
    pub threads: usize,
    /// Memoization cache capacity, in resident response bodies. The
    /// response-bytes cache sizes itself to match.
    pub cache_entries: usize,
    /// Bounded queue depth between the reactor and the workers.
    pub queue_depth: usize,
    /// Per-request deadline: a request still queued after this long is
    /// answered 503 instead of computed.
    pub deadline: Duration,
    /// Flight-recorder ring capacity, in request records.
    pub flight_entries: usize,
    /// Promote every Nth request to full span capture (0 disables
    /// sampling). Derived from `--trace-sample-rate` in the binary.
    pub trace_sample_every: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            threads: std::thread::available_parallelism().map_or(4, usize::from),
            cache_entries: 1024,
            queue_depth: 256,
            deadline: Duration::from_secs(30),
            flight_entries: 512,
            trace_sample_every: 0,
        }
    }
}

/// Shared server state: the two cache layers, the telemetry plane
/// (registry, metrics, flight recorder, reactor stats), and the reference
/// accelerator all roofline-derived endpoints price against.
pub struct AppState {
    /// Memoized response bodies (result cache: single-flight, sharded).
    pub cache: MemoCache,
    /// Pre-serialized responses (bytes cache: head + body, zero re-encode).
    pub bytes: BytesCache,
    /// Metric registry backing both `/metrics` and `/v1/metrics`.
    pub registry: Arc<Registry>,
    /// Request counters and latency histogram (registry-backed).
    pub metrics: Metrics,
    /// Reactor-plane counters: connections, keep-alive reuse, bytes-cache
    /// effectiveness, epoll wakeups.
    pub reactor: ReactorStats,
    /// Always-on ring + slowest-K set of finished requests.
    pub flight: FlightRecorder,
    /// Worker-pool queue-depth observer.
    pub pool: QueueWatcher,
    /// Reference accelerator (Table 4's V100-like part).
    pub accel: Accelerator,
    /// Server start time (for uptime reporting).
    pub started: Instant,
    /// Queued-request deadline.
    pub deadline: Duration,
    /// Promote every Nth request to full span capture (0 = off).
    pub sample_every: u64,
    /// Monotonic request-id source (first request gets id 1).
    next_id: AtomicU64,
}

impl AppState {
    /// Mint the next request id (1-based, monotonic).
    pub(crate) fn next_request_id(&self) -> u64 {
        // Relaxed: ids only need uniqueness, not ordering against other
        // request state.
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// accepting, drains in-flight requests, and joins every thread.
pub struct Server {
    state: Arc<AppState>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    completions: Arc<Completions>,
    reactor_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start accepting.
    pub fn start(config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        obs::recorder().set_capacity(RECORDER_CAPACITY);
        let pool = WorkerPool::new(config.threads, config.queue_depth);
        let shards = config.threads.clamp(1, 16);
        let registry = Arc::new(Registry::new());
        let metrics = Metrics::new(&registry);
        let state = Arc::new(AppState {
            cache: MemoCache::new(config.cache_entries.max(1), shards),
            bytes: BytesCache::new(config.cache_entries.max(1), shards),
            registry,
            metrics,
            reactor: ReactorStats::default(),
            flight: FlightRecorder::new(config.flight_entries.max(1)),
            pool: pool.watcher(),
            accel: Accelerator::v100_like(),
            started: Instant::now(),
            deadline: config.deadline,
            sample_every: config.trace_sample_every,
            next_id: AtomicU64::new(0),
        });
        register_external_series(&state);
        let stop = Arc::new(AtomicBool::new(false));
        let completions = Arc::new(Completions::new()?);
        let reactor = Reactor::new(
            listener,
            Arc::clone(&state),
            pool,
            Arc::clone(&completions),
            Arc::clone(&stop),
        )?;
        let reactor_thread = std::thread::Builder::new()
            .name("serve-reactor".into())
            .spawn(move || reactor.run())
            .expect("spawn reactor thread");
        Ok(Server {
            state,
            local_addr,
            stop,
            completions,
            reactor_thread: Some(reactor_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared state handle (tests inspect metrics through this).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Pop the reactor out of epoll_wait so it notices the flag now.
        self.completions.nudge();
        if let Some(handle) = self.reactor_thread.take() {
            let _ = handle.join();
        }
    }

    /// Serve until SIGTERM/SIGINT, then shut down gracefully. The reactor
    /// polls the signal flag itself, so drain starts within one epoll tick
    /// of delivery; this thread just waits to join.
    pub fn run_until_signal(mut self) {
        signal::install();
        while !signal::requested() && !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Register series whose values live outside `serve::metrics` — cache shard
/// counters, reactor-plane stats, pool queue depth, engine LRU occupancy,
/// interner tables — as registry callbacks. Callbacks capture a
/// `Weak<AppState>` (the registry is owned *by* the state, so a strong
/// capture would leak a cycle) and read the live value at exposition time.
///
/// Engine and interner series read process-wide singletons: in a
/// multi-server test process they aggregate across servers, exactly as the
/// JSON endpoint always has.
fn register_external_series(state: &Arc<AppState>) {
    use std::sync::atomic::Ordering::Relaxed;
    let r = &state.registry;
    let w = |f: fn(&AppState) -> u64| {
        let weak: Weak<AppState> = Arc::downgrade(state);
        move || weak.upgrade().map_or(0, |s| f(&s))
    };
    r.counter_fn(
        "frontier_cache_hits_total",
        "Cache lookups satisfied from a resident value.",
        w(|s| s.cache.stats.hits.load(Relaxed)),
    );
    r.counter_fn(
        "frontier_cache_misses_total",
        "Cache lookups that computed the value.",
        w(|s| s.cache.stats.misses.load(Relaxed)),
    );
    r.counter_fn(
        "frontier_cache_coalesced_total",
        "Cache lookups that waited on another request's compute.",
        w(|s| s.cache.stats.coalesced.load(Relaxed)),
    );
    r.counter_fn(
        "frontier_cache_evictions_total",
        "Cache values evicted to stay under capacity.",
        w(|s| s.cache.stats.evictions.load(Relaxed)),
    );
    r.counter_fn(
        "frontier_cache_failures_total",
        "Cache computes that failed (panicked or errored).",
        w(|s| s.cache.stats.failures.load(Relaxed)),
    );
    {
        let weak = Arc::downgrade(state);
        r.gauge_fn(
            "frontier_cache_entries",
            "Resident values in the memo cache.",
            move || weak.upgrade().map_or(0.0, |s| s.cache.len() as f64),
        );
    }
    {
        let weak = Arc::downgrade(state);
        r.gauge_fn(
            "frontier_cache_capacity",
            "Nominal memo-cache capacity in values.",
            move || weak.upgrade().map_or(0.0, |s| s.cache.capacity() as f64),
        );
    }
    // Reactor plane (ISSUE 8): connection accounting, bytes-cache
    // effectiveness, event-loop health.
    {
        let weak = Arc::downgrade(state);
        r.gauge_fn(
            "serve_connections_open",
            "Connections currently open on the reactor.",
            move || {
                weak.upgrade()
                    .map_or(0.0, |s| s.reactor.connections_open.load(Relaxed) as f64)
            },
        );
    }
    r.counter_fn(
        "serve_keepalive_reuses_total",
        "Responses served on an already-used keep-alive connection.",
        w(|s| s.reactor.keepalive_reuses.load(Relaxed)),
    );
    r.counter_fn(
        "serve_bytes_cache_hits_total",
        "Requests answered from the pre-serialized response-bytes cache.",
        w(|s| s.reactor.bytes_cache_hits.load(Relaxed)),
    );
    r.counter_fn(
        "serve_bytes_cache_misses_total",
        "Cacheable requests that missed the bytes cache.",
        w(|s| s.reactor.bytes_cache_misses.load(Relaxed)),
    );
    r.counter_fn(
        "serve_epoll_wakeups_total",
        "epoll_wait returns that delivered at least one event.",
        w(|s| s.reactor.epoll_wakeups.load(Relaxed)),
    );
    {
        let weak = Arc::downgrade(state);
        r.gauge_fn(
            "serve_bytes_cache_entries",
            "Pre-serialized responses resident in the bytes cache.",
            move || weak.upgrade().map_or(0.0, |s| s.bytes.len() as f64),
        );
    }
    {
        let watcher = state.pool.clone();
        r.gauge_fn(
            "frontier_pool_queue_depth",
            "Jobs queued between the reactor and the workers.",
            move || watcher.queued() as f64,
        );
    }
    r.counter_fn(
        "frontier_flight_recorded_total",
        "Requests deposited in the flight recorder.",
        w(|s| s.flight.recorded()),
    );
    {
        let weak = Arc::downgrade(state);
        r.gauge_fn(
            "frontier_uptime_seconds",
            "Seconds since the server started.",
            move || {
                weak.upgrade()
                    .map_or(0.0, |s| s.started.elapsed().as_secs_f64())
            },
        );
    }
    // Process-wide singletons (shared across servers in one process).
    r.counter_fn(
        "frontier_engine_families_built_total",
        "Symbolic model families built by the process-wide FamilyEngine.",
        || analysis::FamilyEngine::global().families_built() as u64,
    );
    r.gauge_fn(
        "frontier_engine_instances_cached",
        "Concrete instances resident in the FamilyEngine LRU.",
        || analysis::FamilyEngine::global().instances_cached() as f64,
    );
    r.gauge_fn(
        "frontier_engine_instance_capacity",
        "FamilyEngine LRU capacity.",
        || analysis::FamilyEngine::global().instance_capacity() as f64,
    );
    r.gauge_fn(
        "frontier_symath_table_len",
        "Expressions resident in the symath intern table.",
        || symath::intern_stats().table_len as f64,
    );
    r.counter_fn(
        "frontier_symath_intern_hits_total",
        "Intern-table hits.",
        || symath::intern_stats().intern_hits,
    );
    r.counter_fn(
        "frontier_symath_intern_misses_total",
        "Intern-table misses (fresh expressions).",
        || symath::intern_stats().intern_misses,
    );
    r.counter_fn(
        "frontier_symath_memo_hits_total",
        "Operation-memo hits (add/mul/pow/bind).",
        || symath::intern_stats().memo_hits,
    );
    r.counter_fn(
        "frontier_symath_memo_misses_total",
        "Operation-memo misses.",
        || symath::intern_stats().memo_misses,
    );
    r.gauge_fn(
        "frontier_symath_memo_entries",
        "Entries across the add/mul/pow/bind operation memo tables.",
        || symath::intern_stats().memo_entries as f64,
    );
    r.counter_fn(
        "frontier_symath_programs_compiled_total",
        "Expression programs compiled for evaluation.",
        || symath::intern_stats().programs_compiled,
    );
    r.counter_fn(
        "frontier_symath_batch_programs_compiled_total",
        "Batched register-VM programs compiled for grid evaluation.",
        || symath::batch_stats().programs_compiled,
    );
    r.counter_fn(
        "frontier_symath_batch_program_cache_hits_total",
        "Batched register-VM program cache hits.",
        || symath::batch_stats().program_cache_hits,
    );
    r.counter_fn(
        "frontier_symath_batch_cse_reuses_total",
        "Subexpressions shared across roots by batched program compilation.",
        || symath::batch_stats().cse_reuses,
    );
    r.counter_fn(
        "frontier_symath_batch_evals_total",
        "Grid evaluations answered by the batched register VM.",
        || symath::batch_stats().evals,
    );
    r.counter_fn(
        "frontier_symath_batch_points_total",
        "Grid points priced by the batched register VM.",
        || symath::batch_stats().points,
    );
}

/// RAII accounting for one request: increments `in_flight` on construction
/// and — on drop, which runs even while a route handler's panic unwinds
/// toward the pool's `catch_unwind` — records the response (status class +
/// latency sample), decrements `in_flight`, deposits the flight-recorder
/// record, and emits sampled spans. A panicking route therefore cannot
/// leak an in-flight count or skip its latency sample; it reports as the
/// default 500.
///
/// The guard owns an `Arc<AppState>` so it can travel with the request:
/// created on the reactor thread, carried into a worker for cold computes,
/// and dropped back on the reactor after the response bytes flush — the
/// latency sample covers the full first-byte-to-last-byte span.
pub(crate) struct RequestGuard {
    pub(crate) state: Arc<AppState>,
    pub(crate) trace: RequestTrace,
    pub(crate) target: String,
    pub(crate) endpoint: &'static str,
    pub(crate) status: u16,
    pub(crate) cache_state: Option<&'static str>,
}

impl RequestGuard {
    pub(crate) fn new(state: Arc<AppState>, trace: RequestTrace) -> RequestGuard {
        state.metrics.in_flight.add(1);
        RequestGuard {
            state,
            trace,
            target: String::new(),
            endpoint: "unhandled",
            status: 500,
            cache_state: None,
        }
    }
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        let total_us = self.trace.elapsed_us();
        self.state.metrics.record_response(self.status, total_us);
        self.state.metrics.in_flight.sub(1);
        if self.trace.sampled {
            self.trace
                .emit_spans(&self.target, self.endpoint, self.status, total_us);
        }
        self.state.flight.record(RequestRecord {
            id: self.trace.id,
            target: std::mem::take(&mut self.target),
            endpoint: self.endpoint,
            status: self.status,
            cache_state: self.cache_state,
            total_us,
            stages: self.trace.stages(),
            sampled: self.trace.sampled,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::Stage;

    /// Build an [`AppState`] without binding a socket, for guard tests.
    fn test_state() -> Arc<AppState> {
        let pool = WorkerPool::new(1, 4);
        let registry = Arc::new(Registry::new());
        let metrics = Metrics::new(&registry);
        Arc::new(AppState {
            cache: MemoCache::new(8, 1),
            bytes: BytesCache::new(8, 1),
            registry,
            metrics,
            reactor: ReactorStats::default(),
            flight: FlightRecorder::new(8),
            pool: pool.watcher(),
            accel: Accelerator::v100_like(),
            started: Instant::now(),
            deadline: Duration::from_secs(30),
            sample_every: 0,
            next_id: AtomicU64::new(0),
        })
    }

    #[test]
    fn guard_accounts_for_panicking_requests() {
        let state = test_state();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let trace = RequestTrace::new(1, Instant::now(), false);
            let _guard = RequestGuard::new(Arc::clone(&state), trace);
            assert_eq!(state.metrics.in_flight.value(), 1);
            panic!("route exploded");
        }));
        assert!(result.is_err(), "the panic propagated");
        // The guard ran during unwind: accounting is intact.
        assert_eq!(state.metrics.in_flight.value(), 0, "no leaked in-flight");
        assert_eq!(state.metrics.requests.value(), 1);
        assert_eq!(state.metrics.class_count(2), 1, "counted as a 5xx");
        assert_eq!(state.metrics.latency.count(), 1, "latency sample taken");
        let records = state.flight.recent();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].status, 500);
        assert_eq!(records[0].endpoint, "unhandled");
    }

    #[test]
    fn guard_records_the_finished_request() {
        let state = test_state();
        {
            let mut trace = RequestTrace::new(9, Instant::now(), false);
            trace.add(Stage::Compute, 1234);
            let mut guard = RequestGuard::new(Arc::clone(&state), trace);
            guard.endpoint = "characterize";
            guard.status = 200;
            guard.cache_state = Some("miss");
            guard.target = "/v1/characterize?domain=wordlm".to_string();
        }
        assert_eq!(state.metrics.in_flight.value(), 0);
        assert_eq!(state.metrics.class_count(0), 1);
        let records = state.flight.recent();
        assert_eq!(records[0].id, 9);
        assert_eq!(records[0].cache_state, Some("miss"));
        assert_eq!(records[0].stages[4], 1234, "compute stage preserved");
    }

    #[test]
    fn request_ids_are_monotonic_from_one() {
        let state = test_state();
        assert_eq!(state.next_request_id(), 1);
        assert_eq!(state.next_request_id(), 2);
        assert_eq!(state.next_request_id(), 3);
    }
}
