//! Std-only epoll reactor: the serve tier's event-driven front end.
//!
//! One thread owns an epoll instance and every connection. The previous
//! front end parked a worker thread per connection (blocking reads, one
//! request per connection, `connection: close`), so warm latency was pure
//! connection overhead — `BENCH_serve.json` showed a flat ~5 ms p50 across
//! every endpoint including `/v1/healthz`, the classic Nagle/delayed-ACK +
//! thread-handoff signature. The reactor replaces all of that:
//!
//! ```text
//! epoll_wait ──► accept (non-blocking, TCP_NODELAY)
//!            ──► readable: buffer bytes ─► incremental parse ─► per request:
//!                  bytes-cache hit  ─► writev(head, body) [reactor inline]
//!                  dynamic endpoint ─► dispatch inline ─► write
//!                  cold compute     ─► worker pool ─► completion + eventfd
//!            ──► writable: resume partial writes (backpressure)
//!            ──► eventfd: drain worker completions ─► write, parse next
//! ```
//!
//! The syscall layer uses the same no-libc FFI discipline as
//! [`crate::signal`]: `epoll_create1`/`epoll_ctl`/`epoll_wait`, `eventfd`,
//! and `writev` are declared `extern "C"` against the C library every Rust
//! binary already links. Linux-only, like epoll itself.
//!
//! **Connection state machine.** Each connection loops through
//! `Reading → Dispatched → Writing → (keep-alive? Reading : Closed)`:
//! partial reads accumulate in `inbuf` until [`crate::http::parse_head`]
//! yields a complete head; pipelined requests parse back-to-back from the
//! same buffer (responses stay in order because parsing pauses while a
//! request is at the worker pool); responses queue in `outbox` and flush
//! with `writev`, resuming from the recorded offset when the socket
//! backpressures (`EPOLLOUT` subscribed only while the outbox is
//! non-empty). Keep-alive follows HTTP/1.1 semantics (1.1 persistent, 1.0
//! one-shot, explicit `connection:` header wins); error responses and
//! drain-mode responses always close.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cache::CachedBytes;
use crate::http::{self, Feed, HttpError, ParsedHead};
use crate::pool::WorkerPool;
use crate::query::ApiError;
use crate::routes;
use crate::signal;
use crate::trace::{elapsed_us, RequestTrace, Stage};
use crate::{AppState, RequestGuard};

/// How long a client may dribble a partial request head before the reactor
/// answers 408 and closes.
pub const HEAD_TIMEOUT: Duration = Duration::from_secs(2);

/// Idle keep-alive connections are reaped after this long.
const IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// How long graceful drain waits for in-flight requests before force-close.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Max scatter-gather segments per `writev` call (well under `IOV_MAX`).
const MAX_IOV: usize = 64;

/// epoll tokens for the two always-registered fds.
const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

// --------------------------------------------------------------- raw FFI

/// Raw syscall surface, declared against the already-linked C library —
/// the same no-dependency discipline as `signal.rs`.
mod ffi {
    /// Matches `struct iovec` from `<sys/uio.h>`.
    #[repr(C)]
    pub struct IoVec {
        pub base: *const u8,
        pub len: usize,
    }

    /// Matches `struct epoll_event`; packed on x86-64 (the kernel ABI),
    /// naturally aligned elsewhere.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
        pub fn close(fd: i32) -> i32;
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;
}

// ------------------------------------------------------- wakeup + results

/// A non-blocking eventfd the worker pool writes to wake the reactor out of
/// `epoll_wait` when a completion lands.
struct WakeFd(i32);

impl WakeFd {
    fn new() -> io::Result<WakeFd> {
        let fd = unsafe { ffi::eventfd(0, ffi::EFD_CLOEXEC | ffi::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd(fd))
    }

    /// Nudge the reactor (safe from any thread; coalesces in the kernel).
    fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe { ffi::write(self.0, std::ptr::addr_of!(one).cast(), 8) };
    }

    /// Consume pending wakeups so level-triggered epoll goes quiet.
    fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = unsafe { ffi::read(self.0, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { ffi::close(self.0) };
    }
}

/// The worker→reactor bridge: completed cold computes queue here; the
/// eventfd write pops the reactor out of `epoll_wait`.
pub(crate) struct Completions {
    queue: Mutex<Vec<Completion>>,
    wake: WakeFd,
}

impl Completions {
    pub(crate) fn new() -> io::Result<Completions> {
        Ok(Completions {
            queue: Mutex::new(Vec::new()),
            wake: WakeFd::new()?,
        })
    }

    fn post(&self, completion: Completion) {
        self.queue
            .lock()
            .expect("completions lock")
            .push(completion);
        self.wake.wake();
    }

    /// Wake the reactor without posting work (shutdown nudge).
    pub(crate) fn nudge(&self) {
        self.wake.wake();
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().expect("completions lock"))
    }
}

/// One finished cold compute, heading back to its connection.
struct Completion {
    token: u64,
    payload: Payload,
    close_after: bool,
    guard: Option<RequestGuard>,
}

// ------------------------------------------------------------ connections

/// Bytes queued for one response.
enum Payload {
    /// Owned head+body (fresh renders, errors) — one `write` slice.
    Owned(Vec<u8>),
    /// Zero-copy cached response: pre-rendered head + shared body, two
    /// `writev` slices, no re-encode.
    Cached {
        entry: Arc<CachedBytes>,
        keep_alive: bool,
        head_only: bool,
    },
}

impl Payload {
    fn len(&self) -> usize {
        match self {
            Payload::Owned(buf) => buf.len(),
            Payload::Cached {
                entry,
                keep_alive,
                head_only,
            } => {
                let head = if *keep_alive {
                    entry.head_keep_alive.len()
                } else {
                    entry.head_close.len()
                };
                head + if *head_only { 0 } else { entry.body.len() }
            }
        }
    }

    /// The logical byte stream from `offset` on, as up to two slices.
    fn slices(&self, offset: usize) -> (&[u8], &[u8]) {
        match self {
            Payload::Owned(buf) => (&buf[offset..], &[]),
            Payload::Cached {
                entry,
                keep_alive,
                head_only,
            } => {
                let head: &[u8] = if *keep_alive {
                    &entry.head_keep_alive
                } else {
                    &entry.head_close
                };
                let body: &[u8] = if *head_only {
                    &[]
                } else {
                    entry.body.as_bytes()
                };
                if offset < head.len() {
                    (&head[offset..], body)
                } else {
                    (&body[offset - head.len()..], &[])
                }
            }
        }
    }
}

/// One queued response with partial-write resume state.
struct Outgoing {
    payload: Payload,
    offset: usize,
    close_after: bool,
    guard: Option<RequestGuard>,
    enqueued: Instant,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed (partial heads, pipelined requests).
    inbuf: Vec<u8>,
    /// Responses queued for write, in request order.
    outbox: VecDeque<Outgoing>,
    /// A request from this connection is at the worker pool; parsing is
    /// paused (and `EPOLLIN` unsubscribed) until its completion returns so
    /// responses stay in request order.
    busy: bool,
    /// A close-bearing response was queued; ignore any further input.
    stop_parsing: bool,
    /// The peer half-closed (read returned 0).
    peer_closed: bool,
    /// When the first unparsed byte of the current head arrived (dribble
    /// timeout epoch and per-request latency epoch).
    first_byte_at: Option<Instant>,
    /// Last read/write/accept activity (idle reaping).
    last_activity: Instant,
    /// Responses fully flushed on this connection (>1 ⇒ keep-alive reuse).
    served: u64,
    /// Events currently subscribed with `epoll_ctl` (avoids redundant MODs).
    interest: u32,
}

enum FlushOutcome {
    /// Everything queued was written (or the outbox was empty).
    Drained,
    /// The socket backpressured; `EPOLLOUT` will resume.
    Blocked,
    /// The connection should close (close-after response or write error).
    Close,
}

// ---------------------------------------------------------------- reactor

/// The event loop. Owns the listener, the epoll instance, every live
/// connection, and the worker pool for cold computes.
pub(crate) struct Reactor {
    epfd: i32,
    listener: Option<TcpListener>,
    state: Arc<AppState>,
    pool: WorkerPool,
    completions: Arc<Completions>,
    stop: Arc<AtomicBool>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
}

impl Reactor {
    pub(crate) fn new(
        listener: TcpListener,
        state: Arc<AppState>,
        pool: WorkerPool,
        completions: Arc<Completions>,
        stop: Arc<AtomicBool>,
    ) -> io::Result<Reactor> {
        let epfd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let reactor = Reactor {
            epfd,
            state,
            pool,
            completions,
            stop,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            draining: false,
            drain_deadline: None,
            listener: Some(listener),
        };
        reactor.epoll_add(
            reactor.listener.as_ref().expect("listener").as_raw_fd(),
            TOKEN_LISTENER,
            ffi::EPOLLIN,
        )?;
        reactor.epoll_add(reactor.completions.wake.0, TOKEN_WAKE, ffi::EPOLLIN)?;
        Ok(reactor)
    }

    fn epoll_add(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
        let mut ev = ffi::EpollEvent {
            events,
            data: token,
        };
        if unsafe { ffi::epoll_ctl(self.epfd, ffi::EPOLL_CTL_ADD, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn epoll_mod(&self, fd: i32, token: u64, events: u32) {
        let mut ev = ffi::EpollEvent {
            events,
            data: token,
        };
        let _ = unsafe { ffi::epoll_ctl(self.epfd, ffi::EPOLL_CTL_MOD, fd, &mut ev) };
    }

    fn epoll_del(&self, fd: i32) {
        let _ = unsafe { ffi::epoll_ctl(self.epfd, ffi::EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
    }

    /// Run until shutdown: the only loop that touches sockets.
    pub(crate) fn run(mut self) {
        let mut events = vec![ffi::EpollEvent { events: 0, data: 0 }; 256];
        loop {
            self.maybe_begin_drain();
            if self.draining {
                let deadline_passed = self.drain_deadline.is_some_and(|d| Instant::now() >= d);
                if self.conns.is_empty() || deadline_passed {
                    break;
                }
            }
            let timeout_ms = if self.draining { 10 } else { 50 };
            let n = unsafe {
                ffi::epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                if io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                break; // unrecoverable epoll failure; fall through to drain
            }
            if n > 0 {
                // Relaxed: standalone monotone tally for scrapes.
                self.state
                    .reactor
                    .epoll_wakeups
                    .fetch_add(1, Ordering::Relaxed);
            }
            for ev in events.iter().take(n as usize) {
                let ev = *ev; // copy out of the (possibly packed) buffer
                match ev.data {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.completions.wake.drain(),
                    token => self.conn_event(token, ev.events),
                }
            }
            self.drain_completions();
            if n == 0 {
                self.sweep_timeouts();
            }
        }
        // Force-close whatever remains (drain deadline passed or fatal
        // epoll error); queued guards record their requests as they drop.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
        self.pool.shutdown();
    }

    /// Begin graceful drain on the shutdown flag or SIGTERM/SIGINT: drop
    /// the listener (new connects are refused), close idle connections, and
    /// let in-flight requests finish within [`DRAIN_DEADLINE`].
    fn maybe_begin_drain(&mut self) {
        if !self.draining && (self.stop.load(Ordering::SeqCst) || signal::requested()) {
            self.draining = true;
            self.drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
            if let Some(listener) = self.listener.take() {
                self.epoll_del(listener.as_raw_fd());
            }
        }
        if self.draining {
            let idle: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| !c.busy && c.outbox.is_empty())
                .map(|(t, _)| *t)
                .collect();
            for token in idle {
                self.close_conn(token);
            }
        }
    }

    fn accept_ready(&mut self) {
        let Some(listener) = self.listener.as_ref() else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(true);
                    // Kill Nagle: responses are complete writes; waiting for
                    // the delayed ACK was the flat-5ms artifact.
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .epoll_add(stream.as_raw_fd(), token, ffi::EPOLLIN)
                        .is_err()
                    {
                        continue; // kernel refused; drop the stream
                    }
                    self.state.reactor.connection_opened();
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            inbuf: Vec::new(),
                            outbox: VecDeque::new(),
                            busy: false,
                            stop_parsing: false,
                            peer_closed: false,
                            first_byte_at: None,
                            last_activity: Instant::now(),
                            served: 0,
                            interest: ffi::EPOLLIN,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // transient (ECONNABORTED…); retry on next event
            }
        }
    }

    fn conn_event(&mut self, token: u64, events: u32) {
        if events & (ffi::EPOLLERR | ffi::EPOLLHUP) != 0 {
            self.close_conn(token);
            return;
        }
        if events & ffi::EPOLLIN != 0 {
            self.readable(token);
        }
        if events & ffi::EPOLLOUT != 0 {
            if let Some(conn) = self.conns.get_mut(&token) {
                match flush(conn, &self.state) {
                    FlushOutcome::Close => {
                        self.close_conn(token);
                        return;
                    }
                    FlushOutcome::Drained | FlushOutcome::Blocked => {}
                }
            }
            // The write may have unblocked a paused pipeline.
            self.advance(token);
        }
    }

    /// Pull everything the socket has, then parse/serve what arrived.
    fn readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    if conn.first_byte_at.is_none() {
                        conn.first_byte_at = Some(Instant::now());
                    }
                    conn.last_activity = Instant::now();
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        break; // short read ⇒ socket drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.advance(token);
    }

    /// Parse and serve buffered requests, then flush and refresh interest.
    fn advance(&mut self, token: u64) {
        self.process_input(token);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match flush(conn, &self.state) {
            FlushOutcome::Close => {
                self.close_conn(token);
                return;
            }
            FlushOutcome::Drained | FlushOutcome::Blocked => {}
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // Peer gone, nothing pending, nothing to say: close quietly. A
        // half-closed connection mid-head is answered 400 by process_input.
        if conn.peer_closed && conn.outbox.is_empty() && !conn.busy {
            self.close_conn(token);
            return;
        }
        self.update_interest(token);
    }

    /// Parse as many complete heads as the buffer holds; serve each.
    /// Pauses while a request is at the worker pool (response ordering) or
    /// after a close-bearing response.
    fn process_input(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.busy || conn.stop_parsing {
                return;
            }
            match http::parse_head(&conn.inbuf) {
                Ok(Feed::Incomplete) => {
                    if conn.peer_closed && !conn.inbuf.is_empty() {
                        // EOF mid-head: structured 400, matching the old
                        // blocking front end.
                        self.respond_http_error(
                            token,
                            HttpError {
                                status: 400,
                                code: "truncated",
                                message: "connection closed mid-request".to_string(),
                            },
                        );
                    }
                    return;
                }
                Ok(Feed::Parsed(head)) => {
                    let started = conn.first_byte_at.take().unwrap_or_else(Instant::now);
                    conn.inbuf.drain(..head.consumed);
                    if !conn.inbuf.is_empty() {
                        // Pipelined successor: its latency epoch starts now.
                        conn.first_byte_at = Some(Instant::now());
                    }
                    self.begin_request(token, head, started);
                }
                Err(e) => {
                    self.respond_http_error(token, e);
                    return;
                }
            }
        }
    }

    /// Serve one parsed request: bytes-cache hit and dynamic endpoints
    /// inline on the reactor thread; cold cacheable computes at the pool.
    fn begin_request(&mut self, token: u64, head: ParsedHead, started: Instant) {
        let state = Arc::clone(&self.state);
        let target = if head.req.query.is_empty() {
            head.req.path.clone()
        } else {
            format!("{}?{}", head.req.path, head.req.query)
        };
        let id = state.next_request_id();
        let sampled = state.sample_every != 0 && id.is_multiple_of(state.sample_every);
        let mut trace = RequestTrace::new(id, started, sampled);
        trace.add(Stage::Parse, elapsed_us(started));
        let mut guard = RequestGuard::new(Arc::clone(&state), trace);
        guard.target = target.clone();
        let head_only = head.req.method == "HEAD";
        // Drain mode answers in-flight work but stops reusing connections.
        let keep_alive = head.keep_alive && !self.draining;

        let cacheable = bytes_cacheable(&head.req.path, &head.req.query);
        if cacheable {
            let probe_start = Instant::now();
            if let Some(entry) = state.bytes.get(&target) {
                guard.trace.add(Stage::CacheLookup, elapsed_us(probe_start));
                // Relaxed: standalone monotone tallies.
                state
                    .reactor
                    .bytes_cache_hits
                    .fetch_add(1, Ordering::Relaxed);
                // A bytes hit is still a cache hit for the layered cache
                // plane: the result cache's value is what these bytes hold.
                state.cache.stats.hits.fetch_add(1, Ordering::Relaxed);
                state.metrics.record_endpoint(entry.endpoint);
                guard.endpoint = entry.endpoint;
                guard.status = entry.status;
                guard.cache_state = Some("hit");
                self.enqueue(
                    token,
                    Payload::Cached {
                        entry,
                        keep_alive,
                        head_only,
                    },
                    !keep_alive,
                    Some(guard),
                );
                return;
            }
            state
                .reactor
                .bytes_cache_misses
                .fetch_add(1, Ordering::Relaxed);
        }

        if !pool_routed(&head.req.path) {
            // Dynamic endpoints (healthz, metrics, index, debug, 404s) are
            // cheap: dispatch inline, no pool round-trip.
            let routed = routes::dispatch(&state, &head.req, &mut guard.trace);
            let close = !keep_alive || routed.status >= 400;
            let bytes = http::render_response(
                routed.status,
                &routed.body,
                routed.cache_state,
                routed.content_type,
                !close,
                head_only,
            );
            guard.endpoint = routed.endpoint;
            guard.status = routed.status;
            guard.cache_state = routed.cache_state;
            self.enqueue(token, Payload::Owned(bytes), close, Some(guard));
            return;
        }

        // Cold compute: hand off to the pool; the completion comes back
        // through the eventfd. Provisional guard values record the request
        // honestly if the pool rejects the job and drops it.
        guard.endpoint = "rejected_queue_full";
        guard.status = 503;
        let job = ColdJob {
            state: Arc::clone(&state),
            completions: Arc::clone(&self.completions),
            token,
            req: head.req,
            target,
            head_only,
            keep_alive,
            cacheable,
            guard: Some(guard),
            dispatched: Instant::now(),
            started_running: false,
            posted: false,
        };
        match self.pool.submit(move || job.run()) {
            Ok(()) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.busy = true;
                    if !keep_alive {
                        conn.stop_parsing = true;
                    }
                }
            }
            Err(_) => {
                // The dropped job's guard just recorded the 503; tell the
                // client, honestly, that the bounded queue is full.
                self.state.metrics.rejected_queue_full.inc();
                let body = ApiError {
                    status: 503,
                    code: "queue_full",
                    message: "server overloaded: bounded worker queue is full".to_string(),
                }
                .body()
                .render();
                let bytes =
                    http::render_response(503, &body, None, "application/json", false, head_only);
                self.enqueue(token, Payload::Owned(bytes), true, None);
            }
        }
    }

    /// Answer a parse-level error and close (malformed input is terminal
    /// for the connection — the rest of the buffer is untrustworthy).
    fn respond_http_error(&mut self, token: u64, e: HttpError) {
        let state = Arc::clone(&self.state);
        let started = self
            .conns
            .get_mut(&token)
            .and_then(|c| c.first_byte_at.take())
            .unwrap_or_else(Instant::now);
        let id = state.next_request_id();
        let sampled = state.sample_every != 0 && id.is_multiple_of(state.sample_every);
        let mut trace = RequestTrace::new(id, started, sampled);
        trace.add(Stage::Parse, elapsed_us(started));
        let mut guard = RequestGuard::new(state, trace);
        guard.target = "<unparsed>".to_string();
        guard.endpoint = "bad_request";
        guard.status = e.status;
        let body = ApiError {
            status: e.status,
            code: e.code,
            message: e.message,
        }
        .body()
        .render();
        let bytes = http::render_response(e.status, &body, None, "application/json", false, false);
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.inbuf.clear();
        }
        self.enqueue(token, Payload::Owned(bytes), true, Some(guard));
    }

    /// Queue one response on a connection (callers flush afterwards via
    /// [`Reactor::advance`] so pipelined responses coalesce into one
    /// `writev`).
    fn enqueue(
        &mut self,
        token: u64,
        payload: Payload,
        close_after: bool,
        guard: Option<RequestGuard>,
    ) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // connection died first; the guard records on drop
        };
        conn.outbox.push_back(Outgoing {
            payload,
            offset: 0,
            close_after,
            guard,
            enqueued: Instant::now(),
        });
        if close_after {
            conn.stop_parsing = true;
        }
    }

    /// Pull finished cold computes from the workers and resume their
    /// connections.
    fn drain_completions(&mut self) {
        for completion in self.completions.take() {
            let Completion {
                token,
                payload,
                close_after,
                guard,
            } = completion;
            let Some(conn) = self.conns.get_mut(&token) else {
                // Client vanished mid-compute; the guard still records.
                continue;
            };
            conn.busy = false;
            conn.outbox.push_back(Outgoing {
                payload,
                offset: 0,
                close_after,
                guard,
                enqueued: Instant::now(),
            });
            if close_after {
                conn.stop_parsing = true;
            }
            self.advance(token);
        }
    }

    /// Reap dribbled heads past [`HEAD_TIMEOUT`] (structured 408) and idle
    /// keep-alive connections past [`IDLE_TIMEOUT`]. Runs on quiet ticks.
    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        let dribbling: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                !c.busy
                    && !c.stop_parsing
                    && !c.inbuf.is_empty()
                    && c.first_byte_at
                        .is_some_and(|t| now.duration_since(t) > HEAD_TIMEOUT)
            })
            .map(|(t, _)| *t)
            .collect();
        for token in dribbling {
            self.respond_http_error(
                token,
                HttpError {
                    status: 408,
                    code: "head_timeout",
                    message: "request head not completed in time".to_string(),
                },
            );
            self.advance(token);
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                !c.busy
                    && c.outbox.is_empty()
                    && c.inbuf.is_empty()
                    && now.duration_since(c.last_activity) > IDLE_TIMEOUT
            })
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
    }

    /// Recompute and apply the epoll interest mask for one connection:
    /// `EPOLLIN` while parsing is allowed, `EPOLLOUT` while the outbox is
    /// non-empty.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut want = 0;
        if !conn.busy && !conn.stop_parsing && !conn.peer_closed {
            want |= ffi::EPOLLIN;
        }
        if !conn.outbox.is_empty() {
            want |= ffi::EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            self.epoll_mod(fd, token, want);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.epoll_del(conn.stream.as_raw_fd());
            self.state.reactor.connection_closed();
            // Dropping `conn` drops any queued guards (requests the client
            // abandoned record their final state) and closes the socket.
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        unsafe { ffi::close(self.epfd) };
    }
}

/// The memoized analysis endpoints — the only paths routed through the
/// worker pool (everything else is cheap enough to dispatch inline).
fn pool_routed(path: &str) -> bool {
    matches!(
        path,
        "/v1/characterize"
            | "/v1/sweep"
            | "/v1/project"
            | "/v1/subbatch"
            | "/v1/plan"
            | "/v1/plan/search"
            | "/v1/infer/characterize"
            | "/v1/infer/sweep"
            | "/v1/infer/plan"
    )
}

/// Is this request admissible to the response-bytes cache? Memoized
/// endpoints only, and never with a `debug` parameter (those responses
/// carry per-request timing blocks). Percent-encoded queries are skipped
/// conservatively — `%64ebug` decodes to `debug` and must not alias a
/// cacheable key.
fn bytes_cacheable(path: &str, query: &str) -> bool {
    pool_routed(path) && !query.contains("debug") && !query.contains('%')
}

/// Flush the outbox with `writev`, resuming partial writes from the
/// recorded offset. Finalizes each fully-written response: credits the
/// write stage, drops the request guard (telemetry), counts keep-alive
/// reuse, and reports `Close` when a close-bearing response finished.
fn flush(conn: &mut Conn, state: &AppState) -> FlushOutcome {
    loop {
        if conn.outbox.is_empty() {
            return FlushOutcome::Drained;
        }
        let mut iov: Vec<ffi::IoVec> = Vec::with_capacity(MAX_IOV.min(conn.outbox.len() * 2));
        for outgoing in &conn.outbox {
            if iov.len() + 2 > MAX_IOV {
                break;
            }
            let (first, second) = outgoing.payload.slices(outgoing.offset);
            if !first.is_empty() {
                iov.push(ffi::IoVec {
                    base: first.as_ptr(),
                    len: first.len(),
                });
            }
            if !second.is_empty() {
                iov.push(ffi::IoVec {
                    base: second.as_ptr(),
                    len: second.len(),
                });
            }
        }
        if iov.is_empty() {
            // Zero-length responses (fully written already): finalize below.
            if finalize_written(conn, state, 0) {
                return FlushOutcome::Close;
            }
            continue;
        }
        let n = unsafe { ffi::writev(conn.stream.as_raw_fd(), iov.as_ptr(), iov.len() as i32) };
        if n < 0 {
            let e = io::Error::last_os_error();
            return match e.kind() {
                io::ErrorKind::WouldBlock => FlushOutcome::Blocked,
                io::ErrorKind::Interrupted => continue,
                _ => FlushOutcome::Close,
            };
        }
        conn.last_activity = Instant::now();
        if finalize_written(conn, state, n as usize) {
            return FlushOutcome::Close;
        }
    }
}

/// Advance outbox offsets by `written` bytes, completing any responses that
/// finished. Returns true when a completed response demands close.
fn finalize_written(conn: &mut Conn, state: &AppState, written: usize) -> bool {
    let mut remaining = written;
    loop {
        let Some(front) = conn.outbox.front_mut() else {
            return false;
        };
        let left = front.payload.len() - front.offset;
        if remaining < left {
            front.offset += remaining;
            return false;
        }
        remaining -= left;
        let mut done = conn.outbox.pop_front().expect("front exists");
        if let Some(mut guard) = done.guard.take() {
            guard.trace.add(Stage::Write, elapsed_us(done.enqueued));
            drop(guard); // records metrics, flight record, sampled spans
        }
        conn.served += 1;
        if conn.served > 1 {
            // Relaxed: standalone monotone tally.
            state
                .reactor
                .keepalive_reuses
                .fetch_add(1, Ordering::Relaxed);
        }
        if done.close_after {
            return true;
        }
        if remaining == 0 && conn.outbox.front().is_none_or(|o| o.offset == 0) {
            // Nothing partially written remains; let the outer loop decide
            // whether to issue another writev.
            return false;
        }
    }
}

// --------------------------------------------------------- cold computes

/// A cold cacheable request, running on a worker thread. Owns the request
/// guard while computing; posts the rendered response back through
/// [`Completions`]. The `Drop` impl guarantees the connection is never
/// stranded: if dispatch panics mid-run, a 500 completion still posts.
struct ColdJob {
    state: Arc<AppState>,
    completions: Arc<Completions>,
    token: u64,
    req: http::Request,
    target: String,
    head_only: bool,
    keep_alive: bool,
    cacheable: bool,
    guard: Option<RequestGuard>,
    dispatched: Instant,
    started_running: bool,
    posted: bool,
}

impl ColdJob {
    fn run(mut self) {
        self.started_running = true;
        let mut guard = self.guard.take().expect("guard present until run");
        guard.endpoint = "unhandled";
        guard.status = 500;
        guard.trace.add(Stage::Queue, elapsed_us(self.dispatched));
        let state = Arc::clone(&self.state);
        if self.dispatched.elapsed() > state.deadline {
            state.metrics.rejected_deadline.inc();
            guard.endpoint = "rejected_deadline";
            guard.status = 503;
            let body = ApiError {
                status: 503,
                code: "deadline_exceeded",
                message: "request sat in queue past its deadline".to_string(),
            }
            .body()
            .render();
            let bytes =
                http::render_response(503, &body, None, "application/json", false, self.head_only);
            let token = self.token;
            self.post(Completion {
                token,
                payload: Payload::Owned(bytes),
                close_after: true,
                guard: Some(guard),
            });
            return;
        }
        let routed = routes::dispatch(&state, &self.req, &mut guard.trace);
        guard.endpoint = routed.endpoint;
        guard.status = routed.status;
        guard.cache_state = routed.cache_state;
        let close = !self.keep_alive || routed.status >= 400;
        if self.cacheable && routed.status == 200 && routed.cache_state.is_some() {
            // Admit to the bytes cache: share the body, pre-render both
            // head dispositions with `x-cache: hit` so a warm hit is a
            // single writev with zero re-encode.
            let body = Arc::new(routed.body.clone());
            state.bytes.insert(
                self.target.clone(),
                CachedBytes {
                    status: routed.status,
                    endpoint: routed.endpoint,
                    head_keep_alive: http::render_head(
                        routed.status,
                        body.len(),
                        Some("hit"),
                        routed.content_type,
                        true,
                    )
                    .into_bytes(),
                    head_close: http::render_head(
                        routed.status,
                        body.len(),
                        Some("hit"),
                        routed.content_type,
                        false,
                    )
                    .into_bytes(),
                    body,
                },
            );
        }
        let bytes = http::render_response(
            routed.status,
            &routed.body,
            routed.cache_state,
            routed.content_type,
            !close,
            self.head_only,
        );
        let token = self.token;
        self.post(Completion {
            token,
            payload: Payload::Owned(bytes),
            close_after: close,
            guard: Some(guard),
        });
    }

    fn post(&mut self, completion: Completion) {
        self.posted = true;
        self.completions.post(completion);
    }
}

impl Drop for ColdJob {
    fn drop(&mut self) {
        // Only the panic-during-run path: a job dropped before running
        // (pool rejection) is answered inline by the reactor, and its guard
        // — still inside `self` — records the 503 as this struct's fields
        // drop.
        if self.started_running && !self.posted {
            let body = ApiError {
                status: 500,
                code: "internal_error",
                message: "request handler panicked".to_string(),
            }
            .body()
            .render();
            let bytes =
                http::render_response(500, &body, None, "application/json", false, self.head_only);
            self.completions.post(Completion {
                token: self.token,
                payload: Payload::Owned(bytes),
                close_after: true,
                guard: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cacheable_paths_are_the_memoized_endpoints() {
        assert!(pool_routed("/v1/characterize"));
        assert!(pool_routed("/v1/infer/plan"));
        assert!(!pool_routed("/v1/healthz"));
        assert!(!pool_routed("/metrics"));
        assert!(!pool_routed("/nope"));
    }

    #[test]
    fn debug_and_encoded_queries_skip_the_bytes_cache() {
        assert!(bytes_cacheable("/v1/characterize", "domain=wordlm"));
        assert!(!bytes_cacheable("/v1/characterize", "debug=timings"));
        assert!(!bytes_cacheable(
            "/v1/characterize",
            "domain=wordlm&%64ebug=timings"
        ));
        assert!(!bytes_cacheable("/v1/healthz", ""));
    }

    #[test]
    fn payload_slices_resume_across_the_head_body_boundary() {
        let body = Arc::new("0123456789".to_string());
        let entry = Arc::new(CachedBytes {
            status: 200,
            endpoint: "characterize",
            head_keep_alive: b"HEAD".to_vec(),
            head_close: b"HEADC".to_vec(),
            body,
        });
        let payload = Payload::Cached {
            entry,
            keep_alive: true,
            head_only: false,
        };
        assert_eq!(payload.len(), 14);
        let (a, b) = payload.slices(0);
        assert_eq!((a, b), (&b"HEAD"[..], &b"0123456789"[..]));
        let (a, b) = payload.slices(2);
        assert_eq!((a, b), (&b"AD"[..], &b"0123456789"[..]));
        let (a, b) = payload.slices(4);
        assert_eq!((a, b), (&b"0123456789"[..], &b""[..]));
        let (a, b) = payload.slices(9);
        assert_eq!((a, b), (&b"56789"[..], &b""[..]));
    }

    #[test]
    fn head_only_payload_elides_the_body() {
        let entry = Arc::new(CachedBytes {
            status: 200,
            endpoint: "characterize",
            head_keep_alive: b"KA".to_vec(),
            head_close: b"CLOSE".to_vec(),
            body: Arc::new("body".to_string()),
        });
        let payload = Payload::Cached {
            entry,
            keep_alive: false,
            head_only: true,
        };
        assert_eq!(payload.len(), 5);
        let (a, b) = payload.slices(0);
        assert_eq!((a, b), (&b"CLOSE"[..], &b""[..]));
    }

    #[test]
    fn wakefd_round_trips() {
        let wake = WakeFd::new().expect("eventfd");
        wake.wake();
        wake.wake();
        wake.drain(); // coalesced: one read clears both
        let mut buf = [0u8; 8];
        let n = unsafe { ffi::read(wake.0, buf.as_mut_ptr(), 8) };
        assert!(n < 0, "drained eventfd reads EAGAIN, got {n}");
    }
}
