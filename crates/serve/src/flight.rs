//! Always-on flight recorder: a fixed-size, lock-sharded ring of recent
//! request records plus a slowest-K retention set.
//!
//! Every finished request — success, error, or panic (the RAII guard in
//! `lib.rs` records during unwind) — deposits one [`RequestRecord`]. The
//! ring answers "what just happened"; the retention set answers "what were
//! the worst requests since boot" even after the ring has cycled past them.
//! Both are dumpable at runtime via `GET /v1/debug/requests`.
//!
//! Recording is designed to stay off the hot path's neck: the ring shard is
//! selected by request id (round-robin, so one mutex sees 1/N of requests),
//! and the slowest-K set is guarded by an atomic threshold — once the set
//! is full, requests faster than the current K-th slowest skip the lock
//! entirely.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::trace::{Stage, STAGE_COUNT};

/// Ring shards. Eight matches the counter sharding in `obs::metrics`.
const RING_SHARDS: usize = 8;

/// Size of the slowest-request retention set.
pub const SLOWEST_K: usize = 16;

/// One finished request, as retained by the recorder.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Per-server request id (1-based, monotonic).
    pub id: u64,
    /// Request target (`path?query`), or a placeholder for unparsable heads.
    pub target: String,
    /// Endpoint label (matches the metrics `endpoint` label).
    pub endpoint: &'static str,
    /// Response status.
    pub status: u16,
    /// `hit` / `miss` / `coalesced` for cacheable endpoints.
    pub cache_state: Option<&'static str>,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
    /// Per-stage timings, indexed like [`Stage::ALL`].
    pub stages: [u64; STAGE_COUNT],
    /// Whether the request was promoted to full span capture.
    pub sampled: bool,
}

/// The recorder: recent ring + slowest-K set.
pub struct FlightRecorder {
    shards: Vec<Mutex<VecDeque<RequestRecord>>>,
    per_shard: usize,
    slowest: Mutex<Vec<RequestRecord>>,
    /// Admission threshold for the slowest set: 0 until the set is full,
    /// then the K-th slowest total. Requests at or under it skip the lock.
    slow_floor: AtomicU64,
    recorded: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining roughly `entries` recent requests.
    pub fn new(entries: usize) -> FlightRecorder {
        let per_shard = entries.max(RING_SHARDS).div_ceil(RING_SHARDS);
        FlightRecorder {
            shards: (0..RING_SHARDS)
                .map(|_| Mutex::new(VecDeque::with_capacity(per_shard)))
                .collect(),
            per_shard,
            slowest: Mutex::new(Vec::with_capacity(SLOWEST_K)),
            slow_floor: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// Total requests recorded since boot (monotonic).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Deposit one finished request.
    pub fn record(&self, record: RequestRecord) {
        // Relaxed: a standalone monotonic tally; readers only need a value
        // that is eventually ≥ the ring contents they observe.
        self.recorded.fetch_add(1, Ordering::Relaxed);
        self.maybe_retain_slowest(&record);
        let shard = &self.shards[(record.id as usize) % self.shards.len()];
        let mut ring = shard.lock().expect("flight ring lock");
        if ring.len() >= self.per_shard {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    fn maybe_retain_slowest(&self, record: &RequestRecord) {
        // Relaxed fast path: the floor is a monotone admission hint. A
        // stale (lower) floor admits a request that no longer qualifies —
        // the locked re-check below discards it — and a stale-high floor is
        // impossible since the floor only rises under the lock we'd take.
        if record.total_us <= self.slow_floor.load(Ordering::Relaxed) {
            return;
        }
        let mut slowest = self.slowest.lock().expect("flight slowest lock");
        let full = slowest.len() >= SLOWEST_K;
        if full && record.total_us <= slowest.last().map_or(0, |r| r.total_us) {
            return;
        }
        let at = slowest
            .binary_search_by(|r| record.total_us.cmp(&r.total_us))
            .unwrap_or_else(|i| i);
        slowest.insert(at, record.clone());
        slowest.truncate(SLOWEST_K);
        if slowest.len() >= SLOWEST_K {
            self.slow_floor
                .store(slowest.last().map_or(0, |r| r.total_us), Ordering::Relaxed);
        }
    }

    /// Recent requests across all shards, newest first.
    pub fn recent(&self) -> Vec<RequestRecord> {
        let mut out: Vec<RequestRecord> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("flight ring lock")
                    .iter()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|r| std::cmp::Reverse(r.id));
        out
    }

    /// The slowest-K requests since boot, slowest first.
    pub fn slowest(&self) -> Vec<RequestRecord> {
        self.slowest.lock().expect("flight slowest lock").clone()
    }
}

impl RequestRecord {
    /// Render as the JSON object served by `/v1/debug/requests`.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let stages = Stage::ALL
            .iter()
            .enumerate()
            .fold(Json::obj(), |acc, (i, stage)| {
                acc.set(&format!("{}_us", stage.key()), self.stages[i])
            });
        Json::obj()
            .set("id", self.id)
            .set("target", self.target.as_str())
            .set("endpoint", self.endpoint)
            .set("status", u64::from(self.status))
            .set("cache", self.cache_state.map_or(Json::Null, Json::from))
            .set("total_us", self.total_us)
            .set("stages", stages)
            .set("sampled", self.sampled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, total_us: u64) -> RequestRecord {
        RequestRecord {
            id,
            target: format!("/v1/test?id={id}"),
            endpoint: "test",
            status: 200,
            cache_state: None,
            total_us,
            stages: [0; STAGE_COUNT],
            sampled: false,
        }
    }

    #[test]
    fn ring_keeps_newest_and_bounds_capacity() {
        let fr = FlightRecorder::new(16);
        for id in 1..=100 {
            fr.record(rec(id, 10));
        }
        assert_eq!(fr.recorded(), 100);
        let recent = fr.recent();
        assert!(recent.len() <= fr.capacity());
        assert_eq!(recent.first().map(|r| r.id), Some(100));
        // Newest-first ordering.
        assert!(recent.windows(2).all(|w| w[0].id > w[1].id));
    }

    #[test]
    fn slowest_set_retains_outliers_after_ring_cycles() {
        let fr = FlightRecorder::new(8);
        fr.record(rec(1, 1_000_000)); // the slow one
        for id in 2..=200 {
            fr.record(rec(id, 5));
        }
        assert!(
            !fr.recent().iter().any(|r| r.id == 1),
            "ring cycled past the slow request"
        );
        let slowest = fr.slowest();
        assert_eq!(
            slowest.first().map(|r| r.id),
            Some(1),
            "retention set kept it"
        );
        // Slowest-first ordering.
        assert!(slowest.windows(2).all(|w| w[0].total_us >= w[1].total_us));
    }

    #[test]
    fn slowest_set_is_bounded_and_sorted() {
        let fr = FlightRecorder::new(8);
        for id in 1..=100 {
            fr.record(rec(id, id * 10));
        }
        let slowest = fr.slowest();
        assert_eq!(slowest.len(), SLOWEST_K);
        assert_eq!(slowest.first().map(|r| r.total_us), Some(1000));
        assert_eq!(
            slowest.last().map(|r| r.total_us),
            Some((100 - SLOWEST_K as u64 + 1) * 10)
        );
    }
}
