//! Structured CLI flag parsing shared by the server and the bench binaries.
//!
//! Deliberately tiny: `--flag value` pairs and bare `--switch`es over
//! `std::env::args`. Every failure is an `Err(String)` suitable for printing
//! next to a usage line — parsing never panics, whatever the input.

/// A parsed argument list.
#[derive(Clone, Debug)]
pub struct Flags {
    args: Vec<String>,
}

impl Flags {
    /// Capture the process arguments (skipping the binary name).
    pub fn from_env() -> Flags {
        Flags {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// Build from an explicit argument list (tests).
    pub fn from_args<S: Into<String>, I: IntoIterator<Item = S>>(args: I) -> Flags {
        Flags {
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// Is the bare switch present (e.g. `--check`)?
    pub fn switch(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value of `--name value`, parsed as `T`. `Ok(None)` when the flag
    /// is absent; `Err` when it is present with a missing or unparsable
    /// value.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        let Some(i) = self.args.iter().position(|a| a == name) else {
            return Ok(None);
        };
        let Some(value) = self.args.get(i + 1) else {
            return Err(format!("{name} expects a value, got nothing"));
        };
        if value.starts_with("--") {
            return Err(format!("{name} expects a value, got flag {value:?}"));
        }
        value
            .parse()
            .map(Some)
            .map_err(|_| format!("{name} expects a valid value, got {value:?}"))
    }

    /// Like [`Flags::get`] with a default for the absent case.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        Ok(self.get(name)?.unwrap_or(default))
    }

    /// Reject flags outside `known` (typo guard). Positional arguments and
    /// flag values are ignored; anything starting with `--` must be known.
    pub fn check_known(&self, known: &[&str]) -> Result<(), String> {
        let mut skip_value = false;
        for arg in &self.args {
            if skip_value {
                skip_value = false;
                continue;
            }
            if arg.starts_with("--") {
                if !known.contains(&arg.as_str()) {
                    return Err(format!("unknown flag {arg:?}"));
                }
                skip_value = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typed_values_and_defaults() {
        let f = Flags::from_args(["--threads", "8", "--check"]);
        assert_eq!(f.get::<usize>("--threads"), Ok(Some(8)));
        assert_eq!(f.get_or::<usize>("--requests", 50), Ok(50));
        assert!(f.switch("--check"));
        assert!(!f.switch("--verbose"));
    }

    #[test]
    fn missing_or_bad_values_are_errors_not_panics() {
        let f = Flags::from_args(["--threads"]);
        assert!(f.get::<usize>("--threads").is_err());
        let f = Flags::from_args(["--threads", "lots"]);
        assert!(f.get::<usize>("--threads").is_err());
        let f = Flags::from_args(["--threads", "--check"]);
        assert!(f.get::<usize>("--threads").is_err());
    }

    #[test]
    fn unknown_flags_are_flagged() {
        let f = Flags::from_args(["--addr", "127.0.0.1:0", "--oops", "1"]);
        assert!(f.check_known(&["--addr"]).is_err());
        assert!(f.check_known(&["--addr", "--oops"]).is_ok());
    }
}
