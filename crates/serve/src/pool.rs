//! Fixed-size worker thread pool with a bounded job queue and graceful
//! drain.
//!
//! The accept loop pushes jobs; `submit` fails fast when the queue is full
//! (the caller turns that into an HTTP 503) or after shutdown began (refuse
//! new work). `shutdown` drains: queued jobs still run, workers exit once
//! the queue is empty, and `join` blocks until every in-flight job
//! finished.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Why a job was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity.
    QueueFull,
    /// The pool is shutting down and refuses new work.
    ShuttingDown,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
    capacity: usize,
}

/// The pool handle.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// A read-only view of a pool's queue depth (held by the metrics registry;
/// keeps only the shared queue alive, not the workers).
#[derive(Clone)]
pub struct QueueWatcher {
    shared: Arc<Shared>,
}

impl QueueWatcher {
    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("pool queue lock")
            .jobs
            .len()
    }
}

impl WorkerPool {
    /// Spawn `threads` workers sharing a queue bounded to `queue_depth`.
    pub fn new(threads: usize, queue_depth: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            available: Condvar::new(),
            capacity: queue_depth.max(1),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Enqueue a job, failing fast when full or shutting down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let mut queue = self.shared.queue.lock().expect("pool queue lock");
        if queue.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if queue.jobs.len() >= self.shared.capacity {
            return Err(SubmitError::QueueFull);
        }
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Current queue depth.
    pub fn queued(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("pool queue lock")
            .jobs
            .len()
    }

    /// A cloneable observer of this pool's queue depth, for telemetry
    /// gauges that outlive the caller's borrow of the pool.
    pub fn watcher(&self) -> QueueWatcher {
        QueueWatcher {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Begin graceful shutdown: refuse new jobs, let queued jobs drain, then
    /// join every worker. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            queue.shutting_down = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue lock");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutting_down {
                    return;
                }
                queue = shared.available.wait(queue).expect("pool queue wait");
            }
        };
        // A panicking job must not kill the worker.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(4, 64);
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .expect("submit");
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let pool = WorkerPool::new(1, 2);
        let block = Arc::new(Mutex::new(()));
        let guard = block.lock().expect("lock");
        // One job occupies the worker, two fill the queue, the next must
        // bounce.
        let mut rejected = 0;
        for _ in 0..8 {
            let block = Arc::clone(&block);
            if pool
                .submit(move || {
                    let _wait = block.lock().expect("lock");
                })
                .is_err()
            {
                rejected += 1;
            }
        }
        assert!(rejected >= 5, "rejected {rejected}");
        drop(guard);
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_refuses_new() {
        let done = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(2, 64);
        for _ in 0..16 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(2));
                done.fetch_add(1, Ordering::SeqCst);
            })
            .expect("submit");
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 16, "queued jobs drained");
        assert_eq!(
            pool.submit(|| {}).unwrap_err(),
            SubmitError::ShuttingDown,
            "new work refused after shutdown"
        );
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let done = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(1, 8);
        pool.submit(|| panic!("job panic")).expect("submit");
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .expect("submit");
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
