//! A small JSON value: builder, writer, and parser.
//!
//! The workspace's serde is an offline no-op shim, so responses are built
//! from this hand-rolled tree (the scalar encoding rules match
//! `obs::JsonValue`: round-trippable `{:?}` floats, `null` for non-finite).
//! The parser exists for the consumers in this repo — the load generator
//! reads `/v1/metrics`, and the integration tests assert every endpoint
//! parses — and accepts standard JSON with numbers as `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as, and written from, `f64`; written integrally
    /// when exact).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object. Keys keep insertion order on write via the paired Vec.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder entry point.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert a key (objects only; builder style).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(fields) = &mut self {
            let value = value.into();
            match fields.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = value,
                None => fields.push((key.to_string(), value)),
            }
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested lookup by dotted path (`"cache.hits"`).
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |v, seg| v.get(seg))
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n:?}");
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&obs::json_escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&obs::json_escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry the byte offset of the failure.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(f64::from(v))
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl<V: Into<Json> + Clone> From<&BTreeMap<String, V>> for Json {
    fn from(map: &BTreeMap<String, V>) -> Json {
        Json::Obj(
            map.iter()
                .map(|(k, v)| (k.clone(), v.clone().into()))
                .collect(),
        )
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape \\{} ", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().ok_or("empty")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_documents() {
        let doc = Json::obj()
            .set("name", "frontier")
            .set("ok", true)
            .set("count", 42u64)
            .set("ratio", 0.125)
            .set(
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Str("x\"y".into())]),
            );
        let text = doc.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back.path("name").and_then(Json::as_str), Some("frontier"));
        assert_eq!(back.path("count").and_then(Json::as_f64), Some(42.0));
        assert_eq!(
            back.path("items").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(back.render(), text);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01a",
            "\"unterminated",
            "{}x",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Json::Num(1e6).render(), "1000000");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn parses_numbers_and_escapes() {
        let v = Json::parse(r#"{"a": -1.5e3, "b": "x\nA"}"#).expect("parses");
        assert_eq!(v.path("a").and_then(Json::as_f64), Some(-1500.0));
        assert_eq!(v.path("b").and_then(Json::as_str), Some("x\nA"));
    }
}
