//! `serve` — the characterization query server.
//!
//! ```text
//! serve [--addr 127.0.0.1:8080] [--threads N] [--cache-entries N]
//!       [--queue-depth N] [--deadline-secs N]
//! ```
//!
//! Runs until SIGTERM/SIGINT, then drains in-flight requests and exits.

use std::process::ExitCode;
use std::time::Duration;

use serve::flags::Flags;
use serve::{ServeConfig, Server};

const USAGE: &str = "usage: serve [--addr HOST:PORT] [--threads N] \
[--cache-entries N] [--queue-depth N] [--deadline-secs N]
  --addr           bind address (default 127.0.0.1:8080; port 0 = ephemeral)
  --threads        worker threads (default: available parallelism)
  --cache-entries  memoization cache capacity (default 1024)
  --queue-depth    pending-request queue bound (default 256)
  --deadline-secs  queued-request deadline (default 30)";

fn parse_config(flags: &Flags) -> Result<ServeConfig, String> {
    flags.check_known(&[
        "--addr",
        "--threads",
        "--cache-entries",
        "--queue-depth",
        "--deadline-secs",
        "--help",
    ])?;
    let defaults = ServeConfig::default();
    Ok(ServeConfig {
        addr: flags.get_or("--addr", defaults.addr)?,
        threads: flags.get_or("--threads", defaults.threads)?,
        cache_entries: flags.get_or("--cache-entries", defaults.cache_entries)?,
        queue_depth: flags.get_or("--queue-depth", defaults.queue_depth)?,
        deadline: Duration::from_secs(flags.get_or("--deadline-secs", 30u64)?),
    })
}

fn main() -> ExitCode {
    let flags = Flags::from_env();
    if flags.switch("--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let config = match parse_config(&flags) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("serve: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::start(&config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: failed to bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serve: listening on http://{} ({} workers, {}-entry cache)",
        server.local_addr(),
        config.threads,
        config.cache_entries,
    );
    server.run_until_signal();
    println!("serve: drained and stopped");
    ExitCode::SUCCESS
}
