//! `serve` — the characterization query server.
//!
//! ```text
//! serve [--addr 127.0.0.1:8080] [--threads N] [--cache-entries N]
//!       [--queue-depth N] [--deadline-secs N] [--flight-entries N]
//!       [--trace PATH] [--trace-sample-rate R]
//! ```
//!
//! Runs until SIGTERM/SIGINT, then drains in-flight requests and exits.
//! With `--trace`, sampled request spans are written to PATH as a Chrome
//! trace on shutdown (load it in `chrome://tracing` or Perfetto).

use std::process::ExitCode;
use std::time::Duration;

use serve::flags::Flags;
use serve::{ServeConfig, Server};

const USAGE: &str = "usage: serve [--addr HOST:PORT] [--threads N] \
[--cache-entries N] [--queue-depth N] [--deadline-secs N] \
[--flight-entries N] [--trace PATH] [--trace-sample-rate R]
  --addr               bind address (default 127.0.0.1:8080; port 0 = ephemeral)
  --threads            worker threads (default: available parallelism)
  --cache-entries      memoization cache capacity (default 1024)
  --queue-depth        pending-request queue bound (default 256)
  --deadline-secs      queued-request deadline (default 30)
  --flight-entries     flight-recorder ring capacity (default 512)
  --trace PATH         write sampled request spans to PATH (Chrome trace) on exit
  --trace-sample-rate  fraction of requests promoted to span capture
                       (default 1.0 with --trace, else 0; 0 disables)";

/// `--trace-sample-rate 0.25` → capture every 4th request. A rate of zero
/// (or a negative one) disables sampling; anything ≥ 1 captures everything.
fn sample_every_from_rate(rate: f64) -> u64 {
    if rate <= 0.0 || !rate.is_finite() {
        0
    } else {
        (1.0 / rate.min(1.0)).round().max(1.0) as u64
    }
}

fn parse_config(flags: &Flags) -> Result<(ServeConfig, Option<String>), String> {
    flags.check_known(&[
        "--addr",
        "--threads",
        "--cache-entries",
        "--queue-depth",
        "--deadline-secs",
        "--flight-entries",
        "--trace",
        "--trace-sample-rate",
        "--help",
    ])?;
    let defaults = ServeConfig::default();
    let trace_path: Option<String> = flags.get("--trace")?;
    let default_rate = if trace_path.is_some() { 1.0 } else { 0.0 };
    let rate = flags.get_or("--trace-sample-rate", default_rate)?;
    let config = ServeConfig {
        addr: flags.get_or("--addr", defaults.addr)?,
        threads: flags.get_or("--threads", defaults.threads)?,
        cache_entries: flags.get_or("--cache-entries", defaults.cache_entries)?,
        queue_depth: flags.get_or("--queue-depth", defaults.queue_depth)?,
        deadline: Duration::from_secs(flags.get_or("--deadline-secs", 30u64)?),
        flight_entries: flags.get_or("--flight-entries", defaults.flight_entries)?,
        trace_sample_every: sample_every_from_rate(rate),
    };
    Ok((config, trace_path))
}

fn main() -> ExitCode {
    let flags = Flags::from_env();
    if flags.switch("--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (config, trace_path) = match parse_config(&flags) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("serve: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::start(&config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: failed to bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serve: listening on http://{} ({} workers, {}-entry cache, \
         {}-entry flight ring{})",
        server.local_addr(),
        config.threads,
        config.cache_entries,
        config.flight_entries,
        if config.trace_sample_every > 0 {
            format!(", sampling every {} requests", config.trace_sample_every)
        } else {
            String::new()
        },
    );
    server.run_until_signal();
    if let Some(path) = trace_path {
        match obs::recorder().write_chrome_trace(&path) {
            Ok(()) => println!("serve: wrote trace to {path}"),
            Err(e) => eprintln!("serve: failed to write trace {path}: {e}"),
        }
    }
    println!("serve: drained and stopped");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_rate_conversion() {
        assert_eq!(sample_every_from_rate(0.0), 0);
        assert_eq!(sample_every_from_rate(-1.0), 0);
        assert_eq!(sample_every_from_rate(f64::NAN), 0);
        assert_eq!(sample_every_from_rate(1.0), 1);
        assert_eq!(sample_every_from_rate(2.0), 1);
        assert_eq!(sample_every_from_rate(0.25), 4);
        assert_eq!(sample_every_from_rate(0.1), 10);
    }

    #[test]
    fn config_parses_telemetry_flags() {
        let flags = Flags::from_args([
            "--addr",
            "127.0.0.1:0",
            "--trace",
            "/tmp/t.json",
            "--trace-sample-rate",
            "0.5",
            "--flight-entries",
            "128",
        ]);
        let (config, trace) = parse_config(&flags).expect("parses");
        assert_eq!(trace.as_deref(), Some("/tmp/t.json"));
        assert_eq!(config.trace_sample_every, 2);
        assert_eq!(config.flight_entries, 128);
    }

    #[test]
    fn trace_flag_implies_full_sampling() {
        let flags = Flags::from_args(["--trace", "/tmp/t.json"]);
        let (config, _) = parse_config(&flags).expect("parses");
        assert_eq!(config.trace_sample_every, 1);
        let (config, _) = parse_config(&Flags::from_args::<&str, _>([])).expect("parses");
        assert_eq!(config.trace_sample_every, 0);
    }
}
