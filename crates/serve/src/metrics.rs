//! Request counters and a hand-rolled latency histogram.
//!
//! The histogram is log₂-bucketed in microseconds (64 buckets cover 1 µs to
//! ~150 minutes), all-atomic, so recording is lock-free and quantiles are a
//! cumulative walk. Quantile answers are the upper bound of the bucket the
//! rank falls in — ≤ 2× relative error, plenty for p50/p95/p99 reporting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const BUCKETS: usize = 64;

/// Lock-free log₂ latency histogram (microsecond resolution).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(us: u64) -> usize {
        // Bucket i holds [2^i, 2^(i+1)) µs; bucket 0 holds 0–1 µs.
        (63 - u64::leading_zeros(us.max(1)) as usize).min(BUCKETS - 1)
    }

    /// Record one observation.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest observation in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in 0..=1) in microseconds: the upper bound
    /// of the bucket containing the rank, clamped to the observed max.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max_us());
            }
        }
        self.max_us()
    }
}

/// Server-wide metrics.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total requests (all endpoints, all statuses).
    pub requests: AtomicU64,
    /// Requests per endpoint label. A coarse mutex is fine: the hot path
    /// takes it for one BTreeMap bump per request.
    pub endpoint_counts: Mutex<BTreeMap<String, u64>>,
    /// Responses by status class: [2xx, 4xx, 5xx, other].
    pub by_class: [AtomicU64; 4],
    /// Requests currently being handled.
    pub in_flight: AtomicU64,
    /// Requests refused because the queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Requests refused because their deadline passed while queued.
    pub rejected_deadline: AtomicU64,
    /// End-to-end request latency.
    pub latency: Histogram,
}

impl Metrics {
    /// Count a request against its endpoint label.
    pub fn record_endpoint(&self, endpoint: &str) {
        let mut counts = self.endpoint_counts.lock().expect("endpoint counts lock");
        *counts.entry(endpoint.to_string()).or_insert(0) += 1;
    }

    /// Record a finished request.
    pub fn record_response(&self, status: u16, elapsed_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => 0,
            400..=499 => 1,
            500..=599 => 2,
            _ => 3,
        };
        self.by_class[class].fetch_add(1, Ordering::Relaxed);
        self.latency.record_us(elapsed_us);
    }

    /// Count of responses in the given class index ([2xx, 4xx, 5xx, other]).
    pub fn class_count(&self, class: usize) -> u64 {
        self.by_class[class].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = Histogram::default();
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 10);
        // p50 lands in the 8–15 µs bucket.
        assert!(h.quantile_us(0.5) <= 15, "{}", h.quantile_us(0.5));
        // p99 must reflect the outlier (clamped to max).
        assert_eq!(h.quantile_us(0.99), 5000);
        assert_eq!(h.max_us(), 5000);
        assert!((h.mean_us() - 509.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let h = Histogram::default();
        h.record_us(u64::MAX);
        assert_eq!(h.quantile_us(1.0), u64::MAX);
    }

    #[test]
    fn status_classes_bucket_correctly() {
        let m = Metrics::default();
        m.record_response(200, 10);
        m.record_response(404, 10);
        m.record_response(503, 10);
        m.record_response(200, 10);
        assert_eq!(m.class_count(0), 2);
        assert_eq!(m.class_count(1), 1);
        assert_eq!(m.class_count(2), 1);
        assert_eq!(m.requests.load(Ordering::Relaxed), 4);
    }
}
