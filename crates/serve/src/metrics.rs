//! Server metrics, registered into an [`obs::metrics::Registry`].
//!
//! This module used to own a bespoke histogram and a bag of loose atomics;
//! both now live in `obs::metrics` and every serve-tier series registers
//! into one per-server registry, so `GET /metrics` (Prometheus text) and
//! `GET /v1/metrics` (JSON) render from the same instruments. Series follow
//! the `frontier_` naming convention documented in DESIGN.md § "Telemetry
//! plane": `_total` counters, `_us` histogram units, one `{label}`
//! dimension at most.
//!
//! The registry is per-[`AppState`](crate::AppState), not process-global:
//! tests boot several servers in one process and assert exact per-server
//! counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use obs::metrics::Histogram;
use obs::metrics::{Counter, CounterFamily, Gauge, Registry};

/// Response status classes, in `by_class` order.
const CLASSES: [&str; 4] = ["2xx", "4xx", "5xx", "other"];

/// Server-wide metrics: registry-backed handles for the request path.
pub struct Metrics {
    /// Total requests (all endpoints, all statuses).
    pub requests: Arc<Counter>,
    /// Requests currently being handled.
    pub in_flight: Arc<Gauge>,
    /// Responses by status class, labeled `class` ∈ 2xx/4xx/5xx/other.
    by_class: [Arc<Counter>; 4],
    /// Requests per endpoint label.
    by_endpoint: CounterFamily,
    /// Requests refused because the queue was full.
    pub rejected_queue_full: Arc<Counter>,
    /// Requests refused because their deadline passed while queued.
    pub rejected_deadline: Arc<Counter>,
    /// End-to-end request latency.
    pub latency: Arc<Histogram>,
}

impl Metrics {
    /// Register every request-path series into `registry`.
    pub fn new(registry: &Registry) -> Metrics {
        let rejected = registry.counter_family(
            "frontier_requests_rejected_total",
            "Requests refused before dispatch, by reason.",
            "reason",
        );
        let by_class = registry.counter_family(
            "frontier_responses_total",
            "Responses by status class.",
            "class",
        );
        Metrics {
            requests: registry.counter(
                "frontier_requests_total",
                "Requests handled (all endpoints, all statuses).",
            ),
            in_flight: registry.gauge(
                "frontier_requests_in_flight",
                "Requests currently being handled.",
            ),
            by_class: std::array::from_fn(|i| by_class.with(CLASSES[i])),
            by_endpoint: registry.counter_family(
                "frontier_requests_by_endpoint_total",
                "Requests by endpoint label.",
                "endpoint",
            ),
            rejected_queue_full: rejected.with("queue_full"),
            rejected_deadline: rejected.with("deadline"),
            latency: registry.histogram(
                "frontier_request_latency_us",
                "End-to-end request latency in microseconds.",
            ),
        }
    }

    /// Count a request against its endpoint label.
    pub fn record_endpoint(&self, endpoint: &str) {
        self.by_endpoint.with(endpoint).inc();
    }

    /// Record a finished request.
    pub fn record_response(&self, status: u16, elapsed_us: u64) {
        self.requests.inc();
        let class = match status {
            200..=299 => 0,
            400..=499 => 1,
            500..=599 => 2,
            _ => 3,
        };
        self.by_class[class].inc();
        self.latency.record_us(elapsed_us);
    }

    /// Count of responses in the given class index ([2xx, 4xx, 5xx, other]).
    pub fn class_count(&self, class: usize) -> u64 {
        self.by_class[class].value()
    }

    /// Per-endpoint request counts, sorted by endpoint label.
    pub fn endpoint_counts(&self) -> Vec<(String, u64)> {
        self.by_endpoint.snapshot()
    }
}

/// Reactor-plane instruments: connection accounting, response-bytes-cache
/// effectiveness, and event-loop health. These live as plain atomics (the
/// reactor thread bumps them on its hot path; a registry `Counter` handle
/// would work too, but the atomics keep the reactor free of `Arc` clones
/// per event) and are registered as `serve_*` callback series by
/// `register_external_series`, so they render in both `/metrics` and
/// `/v1/metrics`.
#[derive(Debug, Default)]
pub struct ReactorStats {
    /// Connections currently open (accepted, not yet closed). Gauge.
    pub connections_open: AtomicU64,
    /// Responses served on a connection that had already served at least
    /// one (keep-alive connection reuse).
    pub keepalive_reuses: AtomicU64,
    /// Requests answered from the pre-serialized response-bytes cache.
    pub bytes_cache_hits: AtomicU64,
    /// Cacheable requests that missed the bytes cache (cold computes).
    pub bytes_cache_misses: AtomicU64,
    /// `epoll_wait` returns that delivered at least one event.
    pub epoll_wakeups: AtomicU64,
}

impl ReactorStats {
    /// One connection accepted.
    pub fn connection_opened(&self) {
        // Relaxed everywhere in this impl: standalone monotone tallies /
        // gauges observed only by scrapes; no value is published through
        // them.
        self.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    /// One connection closed.
    pub fn connection_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = Histogram::default();
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 10);
        // p50 lands in the 8–15 µs bucket.
        assert!(h.quantile_us(0.5) <= 15, "{}", h.quantile_us(0.5));
        // p99 must reflect the outlier (clamped to max).
        assert_eq!(h.quantile_us(0.99), 5000);
        assert_eq!(h.max_us(), 5000);
        assert!((h.mean_us() - 509.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let h = Histogram::default();
        h.record_us(u64::MAX);
        assert_eq!(h.quantile_us(1.0), u64::MAX);
    }

    #[test]
    fn status_classes_bucket_correctly() {
        let registry = Registry::new();
        let m = Metrics::new(&registry);
        m.record_response(200, 10);
        m.record_response(404, 10);
        m.record_response(503, 10);
        m.record_response(200, 10);
        assert_eq!(m.class_count(0), 2);
        assert_eq!(m.class_count(1), 1);
        assert_eq!(m.class_count(2), 1);
        assert_eq!(m.requests.value(), 4);
    }

    #[test]
    fn endpoint_counts_come_from_the_family() {
        let registry = Registry::new();
        let m = Metrics::new(&registry);
        m.record_endpoint("characterize");
        m.record_endpoint("characterize");
        m.record_endpoint("healthz");
        assert_eq!(
            m.endpoint_counts(),
            vec![("characterize".to_string(), 2), ("healthz".to_string(), 1)]
        );
        // The same counts appear in the registry's exposition.
        let text = registry.render_prometheus();
        assert!(text.contains("frontier_requests_by_endpoint_total{endpoint=\"characterize\"} 2"));
    }
}
