//! Endpoint handlers: URL → (validated query) → memoized analysis → JSON.
//!
//! Expensive endpoints (`characterize`, `project`, `subbatch`, `plan`) run
//! through the [`MemoCache`](crate::cache::MemoCache) keyed by
//! [`frontier::QueryKey`], so a repeat query is a hash lookup returning the
//! byte-identical body. `healthz` and `metrics` are always live.

use std::time::Instant;

use analysis::{
    characterize, fig11_batches, frontier_row, subbatch_analysis, InferConfig, InferEngine,
    InferPlanRequest, InferPoint, PlanSearchRequest,
};
use frontier::QueryKey;
use modelzoo::{Domain, ModelConfig};
use parsim::{InferPlanPoint, ModelParallelism, Plan, SearchPoint, SloTarget};
use roofline::Accelerator;
use scaling::scaling_for;

use crate::cache::Outcome;
use crate::http::Request;
use crate::json::Json;
use crate::query::{ApiError, Query};
use crate::trace::{elapsed_us, RequestTrace, Stage};
use crate::AppState;

/// Media type of the Prometheus text exposition.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Bounds on user-supplied model scale, keeping hostile queries from
/// requesting a graph build that exhausts the machine.
const MIN_PARAMS: u64 = 100_000;
const MAX_PARAMS: u64 = 200_000_000_000;
const MAX_SUBBATCH: u64 = 1 << 20;
/// Accelerator-count search caps for `/v1/plan` and `/v1/plan/search`.
const MAX_ACCELS: u64 = 1 << 22;
/// Grid-size cap for `/v1/sweep`.
const MAX_SWEEP_POINTS: usize = 64;
/// Grid-size cap for `/v1/plan/search`: accelerators × subbatches ×
/// microbatch options.
const MAX_SEARCH_GRID: usize = 64;
/// Per-list length cap for `/v1/plan/search` comma lists.
const MAX_SEARCH_LIST: usize = 8;
/// Bound on a pipeline microbatch count (beyond this the schedule model is
/// meaningless and the request is almost certainly hostile).
const MAX_MICROBATCHES: u64 = 1 << 16;
/// Bounds on `/v1/infer/*` serving-shape parameters. Context/prompt cap at
/// 1Mi tokens; batch at 64Ki sequences; the structural caps keep a hostile
/// query from forcing a pathological family build.
const MAX_INFER_BATCH: u64 = 1 << 16;
const MAX_CONTEXT: u64 = 1 << 20;
const MAX_HEADS: u64 = 256;
const MAX_HEAD_DIM: u64 = 1024;
const MAX_LAYERS: u64 = 256;
const MAX_VOCAB: u64 = 2_000_000;
const MAX_FF_MULT: u64 = 64;
/// Bound on an SLO expressed in milliseconds (about 11.5 days).
const MAX_SLO_MS: f64 = 1e9;

/// One endpoint's handler function.
type Handler = fn(&AppState, &Query, &mut RequestTrace) -> Result<Routed, ApiError>;

/// A routed response, ready to serialize.
pub struct Routed {
    /// HTTP status.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `hit` / `miss` / `coalesced` for cacheable endpoints.
    pub cache_state: Option<&'static str>,
    /// Endpoint label for metrics.
    pub endpoint: &'static str,
    /// Media type (`application/json` except the text exposition).
    pub content_type: &'static str,
}

impl Routed {
    fn ok(body: String, endpoint: &'static str) -> Routed {
        Routed {
            status: 200,
            body,
            cache_state: None,
            endpoint,
            content_type: "application/json",
        }
    }

    fn err(e: &ApiError, endpoint: &'static str) -> Routed {
        Routed {
            status: e.status,
            body: e.body().render(),
            cache_state: None,
            endpoint,
            content_type: "application/json",
        }
    }
}

/// Consume the transport-level `debug` parameter. `debug=timings` opts the
/// response into the per-stage breakdown; any other value is a 400.
fn take_debug(q: &mut Query) -> Result<bool, ApiError> {
    match q.take("debug").as_deref() {
        None => Ok(false),
        Some("timings") => Ok(true),
        Some(other) => Err(ApiError::bad_request(
            "bad_parameter",
            format!("parameter debug={other:?}; the only supported value is \"timings\""),
        )),
    }
}

/// Dispatch one parsed request.
pub fn dispatch(state: &AppState, req: &Request, trace: &mut RequestTrace) -> Routed {
    let (endpoint, handler): (&'static str, Handler) = match req.path.as_str() {
        "/v1/characterize" => ("characterize", characterize_route),
        "/v1/sweep" => ("sweep", sweep_route),
        "/v1/project" => ("project", project_route),
        "/v1/subbatch" => ("subbatch", subbatch_route),
        "/v1/plan" => ("plan", plan_route),
        "/v1/plan/search" => ("plan_search", plan_search_route),
        "/v1/infer/characterize" => ("infer_characterize", infer_characterize_route),
        "/v1/infer/sweep" => ("infer_sweep", infer_sweep_route),
        "/v1/infer/plan" => ("infer_plan", infer_plan_route),
        "/v1/healthz" => ("healthz", healthz_route),
        "/v1/metrics" => ("metrics", metrics_route),
        "/metrics" => ("metrics_text", metrics_text_route),
        "/v1/debug/requests" => ("debug_requests", debug_requests_route),
        "/" | "/v1" => ("index", index_route),
        _ => {
            let e = ApiError {
                status: 404,
                code: "not_found",
                message: format!("no route for {:?}", req.path),
            };
            return Routed::err(&e, "unknown");
        }
    };
    state.metrics.record_endpoint(endpoint);
    let parse_start = Instant::now();
    let parsed = Query::parse(&req.query);
    trace.add(Stage::Parse, elapsed_us(parse_start));
    let result = parsed.and_then(|mut q| {
        let debug = take_debug(&mut q)?;
        handler(state, &q, trace).map(|routed| (routed, debug))
    });
    match result {
        Ok((mut routed, debug)) => {
            if debug {
                augment_with_timings(&mut routed, trace);
            }
            routed
        }
        Err(e) => Routed::err(&e, endpoint),
    }
}

/// Attach the request's per-stage breakdown to a JSON response body
/// (`debug=timings`). The write stage is unknown until after the socket
/// write, so the body reports it as `null`; the flight-recorder record
/// (`/v1/debug/requests`) carries the complete breakdown.
fn augment_with_timings(routed: &mut Routed, trace: &mut RequestTrace) {
    if routed.content_type != "application/json" {
        return;
    }
    let reparse_start = Instant::now();
    let Ok(doc) = Json::parse(&routed.body) else {
        return;
    };
    trace.add(Stage::Serialize, elapsed_us(reparse_start));
    let debug = Json::obj()
        .set("request_id", trace.id)
        .set("sampled", trace.sampled)
        .set(
            "timings_us",
            trace.timings_json().set("write_us", Json::Null),
        )
        .set("total_us", trace.elapsed_us());
    let render_start = Instant::now();
    routed.body = doc.set("debug", debug).render();
    trace.add(Stage::Serialize, elapsed_us(render_start));
}

/// Run `render` through the memo cache under `key`, crediting lookup,
/// single-flight wait, compute, and serialization to the trace context.
fn memoized(
    state: &AppState,
    key: &QueryKey,
    endpoint: &'static str,
    trace: &mut RequestTrace,
    render: impl FnOnce() -> Json,
) -> Result<Routed, ApiError> {
    let serialize_us = std::cell::Cell::new(0u64);
    let (result, outcome, timing) = state.cache.get_or_compute_timed(key.hash128(), || {
        let doc = render();
        let serialize_start = Instant::now();
        let body = doc.render();
        serialize_us.set(elapsed_us(serialize_start));
        Ok(body)
    });
    trace.add(Stage::CacheLookup, timing.lookup_us);
    trace.add(Stage::SingleFlightWait, timing.wait_us);
    trace.add(Stage::Serialize, serialize_us.get());
    trace.add(
        Stage::Compute,
        timing.compute_us.saturating_sub(serialize_us.get()),
    );
    let cache_state = match outcome {
        Outcome::Hit => "hit",
        Outcome::Miss => "miss",
        Outcome::Coalesced => "coalesced",
    };
    match result {
        Ok(body) => Ok(Routed {
            status: 200,
            body: body.as_str().to_string(),
            cache_state: Some(cache_state),
            endpoint,
            content_type: "application/json",
        }),
        Err(message) => Err(ApiError {
            status: 500,
            code: "compute_failed",
            message,
        }),
    }
}

fn bounded_params(q: &Query) -> Result<Option<u64>, ApiError> {
    let Some(params) = q.opt::<u64>("params")? else {
        return Ok(None);
    };
    if !(MIN_PARAMS..=MAX_PARAMS).contains(&params) {
        return Err(ApiError::bad_request(
            "params_out_of_range",
            format!("params must be in {MIN_PARAMS}..={MAX_PARAMS}, got {params}"),
        ));
    }
    Ok(Some(params))
}

fn config_for(domain: Domain, params: Option<u64>) -> ModelConfig {
    let cfg = ModelConfig::default_for(domain);
    match params {
        Some(target) => cfg.with_target_params(target),
        None => cfg,
    }
}

// ---------------------------------------------------------------- endpoints

/// `GET /v1/characterize?domain=&params=&subbatch=` — one Table 2 / Figures
/// 7–10 measurement.
fn characterize_route(
    state: &AppState,
    q: &Query,
    trace: &mut RequestTrace,
) -> Result<Routed, ApiError> {
    q.check_known(&["domain", "params", "subbatch"])?;
    let domain = q.domain()?;
    let params = bounded_params(q)?;
    let subbatch = q
        .opt::<u64>("subbatch")?
        .unwrap_or_else(|| domain.default_subbatch());
    if !(1..=MAX_SUBBATCH).contains(&subbatch) {
        return Err(ApiError::bad_request(
            "subbatch_out_of_range",
            format!("subbatch must be in 1..={MAX_SUBBATCH}, got {subbatch}"),
        ));
    }
    let cfg = config_for(domain, params);
    let bindings = symath::Bindings::new().with(modelzoo::BATCH_SYM, subbatch as f64);
    let key = QueryKey::new("characterize")
        .config(&cfg)
        .bindings(&bindings);
    memoized(state, &key, "characterize", trace, move || {
        let point = characterize(&cfg, subbatch);
        Json::obj()
            .set("domain", domain.key())
            .set("subbatch", subbatch)
            .set(
                "point",
                Json::obj()
                    .set("params", point.params)
                    .set("flops_per_step", point.flops_per_step)
                    .set("flops_per_sample", point.flops_per_sample)
                    .set("bytes_per_step", point.bytes_per_step)
                    .set("op_intensity", point.op_intensity)
                    .set("footprint_bytes", point.footprint_bytes)
                    .set("seq_len", point.seq_len),
            )
    })
}

/// `GET /v1/sweep?domain=&lo=&hi=&points=&subbatch=` — a whole Figures 7–10
/// grid in one query. The grid is answered through the process-wide
/// [`analysis::FamilyEngine`]: one width-symbolic family build (shared with
/// every other sweep of the same structural family), then exact per-point
/// substitution. The memo key is therefore built from the *family* key plus
/// the grid parameters, not from any single concrete configuration — two
/// grids over the same family share the engine's cached symbolic build even
/// when their memoized bodies differ.
fn sweep_route(state: &AppState, q: &Query, trace: &mut RequestTrace) -> Result<Routed, ApiError> {
    q.check_known(&["domain", "lo", "hi", "points", "subbatch"])?;
    let domain = q.domain()?;
    let lo = q.opt::<u64>("lo")?.unwrap_or(1_000_000);
    let hi = q.opt::<u64>("hi")?.unwrap_or(10_000_000_000);
    for (name, v) in [("lo", lo), ("hi", hi)] {
        if !(MIN_PARAMS..=MAX_PARAMS).contains(&v) {
            return Err(ApiError::bad_request(
                "params_out_of_range",
                format!("{name} must be in {MIN_PARAMS}..={MAX_PARAMS}, got {v}"),
            ));
        }
    }
    if lo >= hi {
        return Err(ApiError::bad_request(
            "empty_range",
            format!("lo must be below hi, got lo={lo} hi={hi}"),
        ));
    }
    let points = q.opt::<usize>("points")?.unwrap_or(9);
    if !(2..=MAX_SWEEP_POINTS).contains(&points) {
        return Err(ApiError::bad_request(
            "points_out_of_range",
            format!("points must be in 2..={MAX_SWEEP_POINTS}, got {points}"),
        ));
    }
    let subbatch = q
        .opt::<u64>("subbatch")?
        .unwrap_or_else(|| domain.default_subbatch());
    if !(1..=MAX_SUBBATCH).contains(&subbatch) {
        return Err(ApiError::bad_request(
            "subbatch_out_of_range",
            format!("subbatch must be in 1..={MAX_SUBBATCH}, got {subbatch}"),
        ));
    }
    let key = QueryKey::new("sweep")
        .field("family", ModelConfig::default_for(domain).family_key())
        .field("lo", lo)
        .field("hi", hi)
        .field("points", points)
        .field("subbatch", subbatch);
    memoized(state, &key, "sweep", trace, move || {
        let engine = analysis::FamilyEngine::global();
        let jobs: Vec<_> = modelzoo::sweep_configs(domain, lo, hi, points)
            .into_iter()
            .map(|cfg| (cfg, subbatch))
            .collect();
        let mut grid = engine.characterize_many(&jobs);
        grid.sort_by(|a, b| a.params.partial_cmp(&b.params).expect("finite"));
        let rendered: Vec<Json> = grid
            .iter()
            .map(|p| {
                Json::obj()
                    .set("params", p.params)
                    .set("flops_per_step", p.flops_per_step)
                    .set("flops_per_sample", p.flops_per_sample)
                    .set("bytes_per_step", p.bytes_per_step)
                    .set("op_intensity", p.op_intensity)
                    .set("footprint_bytes", p.footprint_bytes)
                    .set("seq_len", p.seq_len)
            })
            .collect();
        Json::obj()
            .set("domain", domain.key())
            .set("subbatch", subbatch)
            .set("lo", lo)
            .set("hi", hi)
            .set("count", grid.len() as u64)
            .set("points", rendered)
    })
}

/// `GET /v1/project?domain=` — Table 1 projection + Table 3 frontier row.
fn project_route(
    state: &AppState,
    q: &Query,
    trace: &mut RequestTrace,
) -> Result<Routed, ApiError> {
    q.check_known(&["domain"])?;
    let domain = q.domain()?;
    let key = QueryKey::new("project")
        .domain(domain)
        .field("accel", &state.accel.name);
    let accel = state.accel.clone();
    memoized(state, &key, "project", trace, move || {
        let projection = scaling_for(domain).project();
        let row = frontier_row(domain, &accel);
        Json::obj()
            .set("domain", domain.key())
            .set("label", domain.label())
            .set(
                "projection",
                Json::obj()
                    .set("data_scale", projection.data_scale)
                    .set("model_scale", projection.model_scale)
                    .set("target_data_samples", projection.target_data_samples)
                    .set("target_data_gb", projection.target_data_gb)
                    .set("target_params", projection.target_params),
            )
            .set(
                "requirements",
                Json::obj()
                    .set("built_params", row.built_params)
                    .set("subbatch", row.subbatch)
                    .set("tflops_per_step", row.tflops_per_step)
                    .set("mem_tb_per_step", row.mem_tb_per_step)
                    .set("min_mem_gb", row.min_mem_gb)
                    .set("step_seconds", row.step.seconds)
                    .set("step_bound", format!("{:?}", row.step.bound))
                    .set("flop_utilization", row.step.flop_utilization)
                    .set("epoch_days", row.epoch_days),
            )
    })
}

/// `GET /v1/subbatch?domain=&params=` — Figure 11 sweep + points of
/// interest. Defaults to the frontier-scale model of the domain.
fn subbatch_route(
    state: &AppState,
    q: &Query,
    trace: &mut RequestTrace,
) -> Result<Routed, ApiError> {
    q.check_known(&["domain", "params"])?;
    let domain = q.domain()?;
    let params = bounded_params(q)?;
    let target =
        params.unwrap_or_else(|| scaling_for(domain).project().target_params.round() as u64);
    let cfg =
        ModelConfig::default_for(domain).with_target_params(target.clamp(MIN_PARAMS, MAX_PARAMS));
    let key = QueryKey::new("subbatch")
        .config(&cfg)
        .field("accel", &state.accel.name);
    let accel = state.accel.clone();
    memoized(state, &key, "subbatch", trace, move || {
        let analysis = subbatch_analysis(&cfg, &fig11_batches(), &accel, false);
        let points: Vec<Json> = analysis
            .points
            .iter()
            .map(|p| {
                Json::obj()
                    .set("batch", p.batch)
                    .set("op_intensity", p.op_intensity)
                    .set("step_seconds", p.step_seconds)
                    .set("sec_per_sample", p.sec_per_sample)
            })
            .collect();
        Json::obj()
            .set("domain", domain.key())
            .set("params", cfg.param_formula())
            .set("chosen", analysis.chosen)
            .set("saturation", analysis.saturation)
            .set(
                "ridge_match",
                analysis.ridge_match.map_or(Json::Null, Json::Num),
            )
            .set("intensity_limit", analysis.intensity_limit)
            .set("points", points)
    })
}

/// The registry key of the server's reference accelerator (falls back to
/// its display name for a non-registry part).
fn accel_key_for(accel: &Accelerator) -> String {
    Accelerator::registry()
        .into_iter()
        .find(|(_, a)| a == accel)
        .map(|(k, _)| k.to_string())
        .unwrap_or_else(|| accel.name.clone())
}

/// Shared `days` validation for the plan endpoints.
fn bounded_days(q: &Query) -> Result<f64, ApiError> {
    let days = q.opt::<f64>("days")?.unwrap_or(7.0);
    if !days.is_finite() || days <= 0.0 || days > 100_000.0 {
        return Err(ApiError::bad_request(
            "days_out_of_range",
            format!("days must be a positive number of days, got {days}"),
        ));
    }
    Ok(days)
}

/// Shared `accels` (fleet-size cap) validation for the plan endpoints.
fn bounded_max_accels(q: &Query) -> Result<u64, ApiError> {
    let max_accels = q.opt::<u64>("accels")?.unwrap_or(16_384);
    if !(1..=MAX_ACCELS).contains(&max_accels) {
        return Err(ApiError::bad_request(
            "accels_out_of_range",
            format!("accels must be in 1..={MAX_ACCELS}, got {max_accels}"),
        ));
    }
    Ok(max_accels)
}

/// Parse a comma list of integers in `lo..=hi`; `None` when absent.
fn comma_list_u64(
    q: &Query,
    key: &'static str,
    lo: u64,
    hi: u64,
) -> Result<Option<Vec<u64>>, ApiError> {
    let Some(raw) = q.raw(key) else {
        return Ok(None);
    };
    let mut out = Vec::new();
    for piece in raw.split(',') {
        let v: u64 = piece.trim().parse().map_err(|_| {
            ApiError::bad_request(
                "bad_parameter",
                format!("parameter {key}={piece:?} is not a valid value"),
            )
        })?;
        if !(lo..=hi).contains(&v) {
            return Err(ApiError::bad_request(
                "bad_parameter",
                format!("parameter {key}: {v} outside {lo}..={hi}"),
            ));
        }
        if out.contains(&v) {
            return Err(ApiError::bad_request(
                "bad_parameter",
                format!("parameter {key}: {v} listed twice"),
            ));
        }
        out.push(v);
    }
    if out.len() > MAX_SEARCH_LIST {
        return Err(ApiError::bad_request(
            "grid_too_large",
            format!("parameter {key}: at most {MAX_SEARCH_LIST} values"),
        ));
    }
    Ok(Some(out))
}

fn plan_json(plan: &Plan) -> Json {
    Json::obj()
        .set("dp_workers", plan.dp_workers)
        .set("mp_ways", plan.mp_ways)
        .set("total_accelerators", plan.total_accelerators)
        .set("step_seconds", plan.step_seconds)
        .set("epoch_days", plan.epoch_days)
        .set("flop_utilization", plan.flop_utilization)
        .set("mem_per_accel_gb", plan.mem_per_accel_gb)
}

/// One search point, rendered.
fn search_point_json(p: &SearchPoint) -> Json {
    let micro = match p.parallelism {
        ModelParallelism::None => Json::Null,
        ModelParallelism::LayerPipeline { microbatches } => Json::Num(microbatches as f64),
    };
    Json::obj()
        .set("accel", p.accel_key.as_str())
        .set("subbatch", p.subbatch)
        .set("microbatches", micro)
        .set("plan", plan_json(&p.plan))
}

/// `GET /v1/plan?domain=&accels=&days=` — auto-parallelism plan for the
/// domain's frontier model: fewest accelerators (≤ `accels`) meeting the
/// `days` epoch deadline (default 7). A single-accelerator restriction of
/// the `/v1/plan/search` space — both endpoints run the same
/// `parsim::search` enumeration.
fn plan_route(state: &AppState, q: &Query, trace: &mut RequestTrace) -> Result<Routed, ApiError> {
    q.check_known(&["domain", "accels", "days"])?;
    let domain = q.domain()?;
    let max_accels = bounded_max_accels(q)?;
    let days = bounded_days(q)?;
    let key = QueryKey::new("plan")
        .domain(domain)
        .field("accels", max_accels)
        .field("days", format!("{days:?}"))
        .field("accel", &state.accel.name);
    let accel = state.accel.clone();
    memoized(state, &key, "plan", trace, move || {
        let req = PlanSearchRequest {
            domain,
            accels: vec![(accel_key_for(&accel), accel.clone())],
            subbatches: vec![domain.default_subbatch()],
            microbatches: vec![2],
            target_epoch_days: days,
            max_total_accelerators: max_accels,
        };
        let space = analysis::plan_search_space(&req);
        let result = parsim::search(&space);
        let profile = &space.profiles[0];
        // Epoch time of one lone worker (informational; no allreduce).
        let single_worker_epoch_days = space.dataset_samples / profile.step.samples_per_step
            * profile.step.compute_seconds
            / 86_400.0;
        let base = Json::obj()
            .set("domain", domain.key())
            .set("target_epoch_days", days)
            .set("max_accelerators", max_accels)
            .set("stages", profile.stages.len())
            .set("single_worker_epoch_days", single_worker_epoch_days)
            .set("feasible", result.best.is_some());
        match result.best {
            Some(point) => base.set("plan", plan_json(&point.plan)),
            None => base.set("plan", Json::Null),
        }
    })
}

/// `GET /v1/plan/search?domain=&days=&accels=&accel=&subbatch=&micro=` —
/// plan search over the accelerator registry: rank every (accelerator ×
/// subbatch × parallelism × worker count) configuration for the domain's
/// frontier model. `accel` is a comma list of registry keys (default: the
/// whole registry); `subbatch` and `micro` are comma lists of candidates.
/// Returns the Pareto frontier over (epoch days, fleet size, per-device
/// footprint) plus the argmin plan and pruning counters.
fn plan_search_route(
    state: &AppState,
    q: &Query,
    trace: &mut RequestTrace,
) -> Result<Routed, ApiError> {
    q.check_known(&["domain", "days", "accels", "accel", "subbatch", "micro"])?;
    let domain = q.domain()?;
    let max_accels = bounded_max_accels(q)?;
    let days = bounded_days(q)?;
    let accel_keys = accel_key_list(q)?;
    let subbatches = comma_list_u64(q, "subbatch", 1, MAX_SUBBATCH)?
        .unwrap_or_else(|| vec![domain.default_subbatch()]);
    let micros = comma_list_u64(q, "micro", 1, MAX_MICROBATCHES)?.unwrap_or_else(|| vec![2]);
    let grid = accel_keys.len() * subbatches.len() * micros.len();
    if grid > MAX_SEARCH_GRID {
        return Err(ApiError::bad_request(
            "grid_too_large",
            format!("accel×subbatch×micro grid is {grid}, cap {MAX_SEARCH_GRID}"),
        ));
    }
    let join = |v: &[u64]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let key = QueryKey::new("plan_search")
        .domain(domain)
        .field("accels", max_accels)
        .field("days", format!("{days:?}"))
        .field("accel", accel_keys.join(","))
        .field("subbatch", join(&subbatches))
        .field("micro", join(&micros));
    memoized(state, &key, "plan_search", trace, move || {
        let req = PlanSearchRequest {
            domain,
            accels: accel_keys
                .iter()
                .map(|k| (k.clone(), Accelerator::by_key(k).expect("validated key")))
                .collect(),
            subbatches,
            microbatches: micros,
            target_epoch_days: days,
            max_total_accelerators: max_accels,
        };
        let space = analysis::plan_search_space(&req);
        let result = parsim::search(&space);
        let pareto: Vec<Json> = result.pareto.iter().map(search_point_json).collect();
        let base = Json::obj()
            .set("domain", domain.key())
            .set("target_epoch_days", days)
            .set("max_accelerators", max_accels)
            .set(
                "accelerators",
                accel_keys
                    .iter()
                    .map(|k| Json::Str(k.clone()))
                    .collect::<Vec<_>>(),
            )
            .set("profiles", space.profiles.len())
            .set(
                "stats",
                Json::obj()
                    .set("considered", result.stats.considered)
                    .set("evaluated", result.stats.evaluated)
                    .set("pruned_memory", result.stats.pruned_memory)
                    .set("pruned_over_cap", result.stats.pruned_over_cap)
                    .set("pruned_comm_bound", result.stats.pruned_comm_bound),
            )
            .set("feasible_count", result.feasible.len())
            .set("pareto", pareto)
            .set("feasible", result.best.is_some());
        match result.best {
            Some(point) => base.set("best", search_point_json(&point)),
            None => base.set("best", Json::Null),
        }
    })
}

/// Parse the `accel` comma list of registry keys; defaults to the whole
/// registry. Shared by `/v1/plan/search` and `/v1/infer/plan`.
fn accel_key_list(q: &Query) -> Result<Vec<String>, ApiError> {
    let Some(raw) = q.raw("accel") else {
        return Ok(Accelerator::KEYS.iter().map(|k| k.to_string()).collect());
    };
    let mut keys = Vec::new();
    for piece in raw.split(',') {
        let key = piece.trim();
        if Accelerator::by_key(key).is_none() {
            return Err(ApiError::bad_request(
                "unknown_accelerator",
                format!(
                    "unknown accelerator {key:?}; expected one of {}",
                    Accelerator::KEYS.join(", ")
                ),
            ));
        }
        if keys.iter().any(|k| k == key) {
            return Err(ApiError::bad_request(
                "bad_parameter",
                format!("accelerator {key:?} listed twice"),
            ));
        }
        keys.push(key.to_string());
    }
    Ok(keys)
}

// ------------------------------------------------------- /v1/infer endpoints

/// Query parameters shared by every `/v1/infer/*` endpoint: the served
/// model's structural shape.
const INFER_CONFIG_PARAMS: [&str; 6] = ["heads", "head_dim", "layers", "vocab", "ff", "tied"];

/// Parse the served-model shape, defaulting to [`InferConfig::default`]
/// (a ~100M-parameter decoder) with every field individually overridable.
fn infer_config_from(q: &Query) -> Result<InferConfig, ApiError> {
    let d = InferConfig::default();
    let cfg = InferConfig {
        vocab: q.opt::<u64>("vocab")?.unwrap_or(d.vocab),
        heads: q.opt::<u64>("heads")?.unwrap_or(d.heads),
        head_dim: q.opt::<u64>("head_dim")?.unwrap_or(d.head_dim),
        layers: q.opt::<u64>("layers")?.unwrap_or(d.layers),
        ff_mult: q.opt::<u64>("ff")?.unwrap_or(d.ff_mult),
        tied_embedding: q.opt::<bool>("tied")?.unwrap_or(d.tied_embedding),
    };
    for (name, v, lo, hi) in [
        ("heads", cfg.heads, 1, MAX_HEADS),
        ("head_dim", cfg.head_dim, 1, MAX_HEAD_DIM),
        ("layers", cfg.layers, 1, MAX_LAYERS),
        ("vocab", cfg.vocab, 2, MAX_VOCAB),
        ("ff", cfg.ff_mult, 1, MAX_FF_MULT),
    ] {
        if !(lo..=hi).contains(&v) {
            return Err(ApiError::bad_request(
                "shape_out_of_range",
                format!("{name} must be in {lo}..={hi}, got {v}"),
            ));
        }
    }
    Ok(cfg)
}

/// Memo-key fields identifying an [`InferConfig`].
fn infer_config_key(key: QueryKey, cfg: &InferConfig) -> QueryKey {
    key.field("vocab", cfg.vocab)
        .field("heads", cfg.heads)
        .field("head_dim", cfg.head_dim)
        .field("layers", cfg.layers)
        .field("ff", cfg.ff_mult)
        .field("tied", cfg.tied_embedding)
}

/// Shared `prompt`/`context` validation: both in range, prompt ≤ context
/// (the decode context includes the prompt).
fn bounded_prompt_context(q: &Query) -> Result<(u64, u64), ApiError> {
    let prompt = q.opt::<u64>("prompt")?.unwrap_or(512);
    let context = q.opt::<u64>("context")?.unwrap_or(1024);
    for (name, v) in [("prompt", prompt), ("context", context)] {
        if !(1..=MAX_CONTEXT).contains(&v) {
            return Err(ApiError::bad_request(
                "context_out_of_range",
                format!("{name} must be in 1..={MAX_CONTEXT}, got {v}"),
            ));
        }
    }
    if prompt > context {
        return Err(ApiError::bad_request(
            "context_below_prompt",
            format!("context ({context}) must be at least prompt ({prompt})"),
        ));
    }
    Ok((prompt, context))
}

/// One characterized serving point, rendered.
fn infer_point_json(p: &InferPoint) -> Json {
    Json::obj()
        .set("batch", p.batch)
        .set("prompt", p.prompt)
        .set("context", p.context)
        .set("params", p.params)
        .set("weight_bytes", p.weight_bytes)
        .set("kv_cache_bytes", p.kv_cache_bytes)
        .set("serving_bytes", p.serving_bytes())
        .set(
            "prefill",
            Json::obj()
                .set("flops", p.prefill_flops)
                .set("bytes", p.prefill_bytes)
                .set("op_intensity", p.prefill_intensity),
        )
        .set(
            "decode",
            Json::obj()
                .set("flops", p.decode_flops)
                .set("bytes", p.decode_bytes)
                .set("op_intensity", p.decode_intensity),
        )
}

/// `GET /v1/infer/characterize?batch=&prompt=&context=&heads=&head_dim=&layers=&vocab=&ff=&tied=`
/// — one forward-only serving measurement: prefill and decode phases split,
/// KV-cache footprint included. Answered through the process-wide
/// [`analysis::InferEngine`] (symbolic family build + exact substitution).
fn infer_characterize_route(
    state: &AppState,
    q: &Query,
    trace: &mut RequestTrace,
) -> Result<Routed, ApiError> {
    let mut known = vec!["batch", "prompt", "context"];
    known.extend(INFER_CONFIG_PARAMS);
    q.check_known(&known)?;
    let cfg = infer_config_from(q)?;
    let (prompt, context) = bounded_prompt_context(q)?;
    let batch = q.opt::<u64>("batch")?.unwrap_or(1);
    if !(1..=MAX_INFER_BATCH).contains(&batch) {
        return Err(ApiError::bad_request(
            "batch_out_of_range",
            format!("batch must be in 1..={MAX_INFER_BATCH}, got {batch}"),
        ));
    }
    let key = infer_config_key(QueryKey::new("infer_characterize"), &cfg)
        .field("batch", batch)
        .field("prompt", prompt)
        .field("context", context);
    memoized(state, &key, "infer_characterize", trace, move || {
        let point = InferEngine::global().characterize(&cfg, batch, prompt, context);
        Json::obj()
            .set("d_model", cfg.d_model())
            .set("point", infer_point_json(&point))
    })
}

/// `GET /v1/infer/sweep?prompt=&batch=&context=&...` — a decode
/// batch × context grid in one query, through the shared engine: `batch`
/// and `context` are comma lists (defaults `1,4,16,64,256` × the single
/// default context).
fn infer_sweep_route(
    state: &AppState,
    q: &Query,
    trace: &mut RequestTrace,
) -> Result<Routed, ApiError> {
    let mut known = vec!["batch", "prompt", "context"];
    known.extend(INFER_CONFIG_PARAMS);
    q.check_known(&known)?;
    let cfg = infer_config_from(q)?;
    let prompt = q.opt::<u64>("prompt")?.unwrap_or(512);
    if !(1..=MAX_CONTEXT).contains(&prompt) {
        return Err(ApiError::bad_request(
            "context_out_of_range",
            format!("prompt must be in 1..={MAX_CONTEXT}, got {prompt}"),
        ));
    }
    let batches =
        comma_list_u64(q, "batch", 1, MAX_INFER_BATCH)?.unwrap_or_else(|| vec![1, 4, 16, 64, 256]);
    let contexts = comma_list_u64(q, "context", 1, MAX_CONTEXT)?.unwrap_or_else(|| vec![1024]);
    if let Some(&ctx) = contexts.iter().find(|&&c| c < prompt) {
        return Err(ApiError::bad_request(
            "context_below_prompt",
            format!("context ({ctx}) must be at least prompt ({prompt})"),
        ));
    }
    let grid: Vec<(u64, u64)> = batches
        .iter()
        .flat_map(|&b| contexts.iter().map(move |&c| (b, c)))
        .collect();
    if grid.len() > MAX_SWEEP_POINTS {
        return Err(ApiError::bad_request(
            "grid_too_large",
            format!(
                "batch×context grid is {}, cap {MAX_SWEEP_POINTS}",
                grid.len()
            ),
        ));
    }
    let join = |v: &[u64]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let key = infer_config_key(QueryKey::new("infer_sweep"), &cfg)
        .field("prompt", prompt)
        .field("batch", join(&batches))
        .field("context", join(&contexts));
    memoized(state, &key, "infer_sweep", trace, move || {
        let points = InferEngine::global().characterize_grid(&cfg, prompt, &grid);
        Json::obj()
            .set("d_model", cfg.d_model())
            .set("prompt", prompt)
            .set("count", points.len() as u64)
            .set(
                "points",
                points.iter().map(infer_point_json).collect::<Vec<_>>(),
            )
    })
}

/// Shared millisecond-SLO validation for `/v1/infer/plan`.
fn bounded_slo_ms(q: &Query, key: &'static str, default_ms: f64) -> Result<f64, ApiError> {
    let ms = q.opt::<f64>(key)?.unwrap_or(default_ms);
    if !ms.is_finite() || ms <= 0.0 || ms > MAX_SLO_MS {
        return Err(ApiError::bad_request(
            "slo_out_of_range",
            format!("{key} must be a positive number of milliseconds, got {ms}"),
        ));
    }
    Ok(ms)
}

/// One SLO plan point, rendered.
fn infer_plan_point_json(p: &InferPlanPoint) -> Json {
    Json::obj()
        .set("accel", p.accel_key.as_str())
        .set("batch", p.batch)
        .set("replicas", p.replicas)
        .set("total_accelerators", p.total_accelerators)
        .set("tokens_per_s", p.tokens_per_s)
        .set("p99_token_seconds", p.p99_token_seconds)
        .set("ttft_seconds", p.ttft_seconds)
        .set("mem_per_accel_gb", p.mem_per_accel_gb)
}

/// `GET /v1/infer/plan?tpot_ms=&ttft_ms=&tokens_per_s=&accel=&batch=&accels=&prompt=&context=&...`
/// — SLO-driven serving plan search: rank every (accelerator × decode batch
/// × replica count) configuration under a p99 token-latency bound
/// (`tpot_ms`, default 50), a TTFT bound (`ttft_ms`, default 500), and an
/// aggregate throughput demand (`tokens_per_s`, default 20000). `accel` is
/// a comma list of registry keys; `batch` a comma list of decode batch
/// sizes; `accels` caps the fleet. Returns the Pareto frontier over (fleet
/// size, token latency, per-device memory) plus the argmin plan and pruning
/// counters.
fn infer_plan_route(
    state: &AppState,
    q: &Query,
    trace: &mut RequestTrace,
) -> Result<Routed, ApiError> {
    let mut known = vec![
        "tpot_ms",
        "ttft_ms",
        "tokens_per_s",
        "accel",
        "accels",
        "batch",
        "prompt",
        "context",
    ];
    known.extend(INFER_CONFIG_PARAMS);
    q.check_known(&known)?;
    let cfg = infer_config_from(q)?;
    let (prompt, context) = bounded_prompt_context(q)?;
    let tpot_ms = bounded_slo_ms(q, "tpot_ms", 50.0)?;
    let ttft_ms = bounded_slo_ms(q, "ttft_ms", 500.0)?;
    let tokens_per_s = q.opt::<f64>("tokens_per_s")?.unwrap_or(20_000.0);
    if !tokens_per_s.is_finite() || tokens_per_s <= 0.0 {
        return Err(ApiError::bad_request(
            "slo_out_of_range",
            format!("tokens_per_s must be a positive rate, got {tokens_per_s}"),
        ));
    }
    let max_accels = bounded_max_accels(q)?;
    let accel_keys = accel_key_list(q)?;
    let batches =
        comma_list_u64(q, "batch", 1, MAX_INFER_BATCH)?.unwrap_or_else(|| vec![1, 4, 16, 64, 256]);
    if accel_keys.len() * batches.len() > MAX_SEARCH_GRID {
        return Err(ApiError::bad_request(
            "grid_too_large",
            format!(
                "accel×batch grid is {}, cap {MAX_SEARCH_GRID}",
                accel_keys.len() * batches.len()
            ),
        ));
    }
    let join = |v: &[u64]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let key = infer_config_key(QueryKey::new("infer_plan"), &cfg)
        .field("prompt", prompt)
        .field("context", context)
        .field("tpot_ms", format!("{tpot_ms:?}"))
        .field("ttft_ms", format!("{ttft_ms:?}"))
        .field("tokens_per_s", format!("{tokens_per_s:?}"))
        .field("accels", max_accels)
        .field("accel", accel_keys.join(","))
        .field("batch", join(&batches));
    memoized(state, &key, "infer_plan", trace, move || {
        let req = InferPlanRequest {
            config: cfg,
            accels: accel_keys
                .iter()
                .map(|k| (k.clone(), Accelerator::by_key(k).expect("validated key")))
                .collect(),
            batches,
            prompt,
            context,
            slo: SloTarget {
                p99_token_seconds: tpot_ms / 1e3,
                ttft_seconds: ttft_ms / 1e3,
            },
            target_tokens_per_s: tokens_per_s,
            max_total_accelerators: max_accels,
        };
        let space = analysis::infer_search_space(&req);
        let result = parsim::infer_search(&space);
        let pareto: Vec<Json> = result.pareto.iter().map(infer_plan_point_json).collect();
        let base = Json::obj()
            .set(
                "slo",
                Json::obj()
                    .set("p99_token_seconds", tpot_ms / 1e3)
                    .set("ttft_seconds", ttft_ms / 1e3)
                    .set("tokens_per_s", tokens_per_s),
            )
            .set("prompt", prompt)
            .set("context", context)
            .set("max_accelerators", max_accels)
            .set(
                "accelerators",
                accel_keys
                    .iter()
                    .map(|k| Json::Str(k.clone()))
                    .collect::<Vec<_>>(),
            )
            .set("profiles", space.profiles.len())
            .set(
                "stats",
                Json::obj()
                    .set("considered", result.stats.considered)
                    .set("evaluated", result.stats.evaluated)
                    .set("pruned_memory", result.stats.pruned_memory)
                    .set("pruned_latency", result.stats.pruned_latency)
                    .set("pruned_over_cap", result.stats.pruned_over_cap),
            )
            .set("feasible_count", result.feasible.len())
            .set("pareto", pareto)
            .set("feasible", result.best.is_some());
        match result.best {
            Some(point) => base.set("best", infer_plan_point_json(&point)),
            None => base.set("best", Json::Null),
        }
    })
}

/// `GET /v1/healthz` — liveness.
fn healthz_route(
    state: &AppState,
    q: &Query,
    _trace: &mut RequestTrace,
) -> Result<Routed, ApiError> {
    q.check_known(&[])?;
    let body = Json::obj()
        .set("status", "ok")
        .set("uptime_seconds", state.started.elapsed().as_secs_f64())
        .render();
    Ok(Routed::ok(body, "healthz"))
}

/// `GET /v1/metrics` — request counts, cache effectiveness, reactor and
/// connection stats, latency quantiles, sweep-engine cache occupancy, and
/// `symath` interner counters.
fn metrics_route(
    state: &AppState,
    q: &Query,
    _trace: &mut RequestTrace,
) -> Result<Routed, ApiError> {
    q.check_known(&[])?;
    use std::sync::atomic::Ordering;
    let m = &state.metrics;
    let c = &state.cache.stats;
    let lat = &m.latency;
    let engine = analysis::FamilyEngine::global();
    let interner = symath::intern_stats();
    let batch = symath::batch_stats();
    let by_endpoint = m
        .endpoint_counts()
        .into_iter()
        .fold(Json::obj(), |acc, (name, count)| acc.set(&name, count));
    let body = Json::obj()
        .set("uptime_seconds", state.started.elapsed().as_secs_f64())
        .set(
            "requests",
            Json::obj()
                .set("total", m.requests.value())
                .set("in_flight", u64::try_from(m.in_flight.value()).unwrap_or(0))
                .set("status_2xx", m.class_count(0))
                .set("status_4xx", m.class_count(1))
                .set("status_5xx", m.class_count(2))
                .set("rejected_queue_full", m.rejected_queue_full.value())
                .set("rejected_deadline", m.rejected_deadline.value())
                .set("by_endpoint", by_endpoint),
        )
        .set(
            "cache",
            Json::obj()
                .set("entries", state.cache.len())
                .set("capacity", state.cache.capacity())
                .set("hits", c.hits.load(Ordering::Relaxed))
                .set("misses", c.misses.load(Ordering::Relaxed))
                .set("coalesced", c.coalesced.load(Ordering::Relaxed))
                .set("evictions", c.evictions.load(Ordering::Relaxed))
                .set("failures", c.failures.load(Ordering::Relaxed))
                .set("hit_rate", state.cache.hit_rate()),
        )
        .set(
            "reactor",
            Json::obj()
                .set(
                    "connections_open",
                    state.reactor.connections_open.load(Ordering::Relaxed),
                )
                .set(
                    "keepalive_reuses",
                    state.reactor.keepalive_reuses.load(Ordering::Relaxed),
                )
                .set(
                    "bytes_cache_entries",
                    u64::try_from(state.bytes.len()).unwrap_or(0),
                )
                .set(
                    "bytes_cache_hits",
                    state.reactor.bytes_cache_hits.load(Ordering::Relaxed),
                )
                .set(
                    "bytes_cache_misses",
                    state.reactor.bytes_cache_misses.load(Ordering::Relaxed),
                )
                .set(
                    "epoll_wakeups",
                    state.reactor.epoll_wakeups.load(Ordering::Relaxed),
                ),
        )
        .set("pool", Json::obj().set("queue_depth", state.pool.queued()))
        .set(
            "latency_us",
            Json::obj()
                .set("count", lat.count())
                .set("mean", lat.mean_us())
                .set("p50", lat.quantile_us(0.50))
                .set("p90", lat.quantile_us(0.90))
                .set("p95", lat.quantile_us(0.95))
                .set("p99", lat.quantile_us(0.99))
                .set("max", lat.max_us()),
        )
        .set(
            "engine",
            Json::obj()
                .set("families_built", engine.families_built() as u64)
                .set("instances_cached", engine.instances_cached() as u64)
                .set("instance_capacity", engine.instance_capacity() as u64),
        )
        .set(
            "symath",
            Json::obj()
                .set("table_len", interner.table_len)
                .set("intern_hits", interner.intern_hits)
                .set("intern_misses", interner.intern_misses)
                .set("intern_hit_rate", interner.intern_hit_rate())
                .set("memo_hits", interner.memo_hits)
                .set("memo_misses", interner.memo_misses)
                .set("memo_hit_rate", interner.memo_hit_rate())
                .set("memo_entries", interner.memo_entries)
                .set("programs_compiled", interner.programs_compiled)
                .set("batch_programs", interner.batch_programs),
        )
        .set(
            "symath_batch",
            Json::obj()
                .set("programs_compiled", batch.programs_compiled)
                .set("program_cache_hits", batch.program_cache_hits)
                .set("instructions", batch.instructions)
                .set("registers", batch.registers)
                .set("cse_reuses", batch.cse_reuses)
                .set("evals", batch.evals)
                .set("points", batch.points),
        )
        .set(
            "flight",
            Json::obj()
                .set("recorded", state.flight.recorded())
                .set("capacity", state.flight.capacity()),
        )
        .render();
    Ok(Routed::ok(body, "metrics"))
}

/// `GET /metrics` — Prometheus text exposition, rendered in one pass from
/// the same registry `/v1/metrics` reads.
fn metrics_text_route(
    state: &AppState,
    q: &Query,
    trace: &mut RequestTrace,
) -> Result<Routed, ApiError> {
    q.check_known(&[])?;
    let serialize_start = Instant::now();
    let body = state.registry.render_prometheus();
    trace.add(Stage::Serialize, elapsed_us(serialize_start));
    Ok(Routed {
        status: 200,
        body,
        cache_state: None,
        endpoint: "metrics_text",
        content_type: PROMETHEUS_CONTENT_TYPE,
    })
}

/// `GET /v1/debug/requests` — dump the flight recorder: the ring of recent
/// requests (newest first) and the slowest-K retention set (slowest first),
/// each with per-stage timings.
fn debug_requests_route(
    state: &AppState,
    q: &Query,
    _trace: &mut RequestTrace,
) -> Result<Routed, ApiError> {
    q.check_known(&[])?;
    let recent: Vec<Json> = state
        .flight
        .recent()
        .iter()
        .map(crate::flight::RequestRecord::to_json)
        .collect();
    let slowest: Vec<Json> = state
        .flight
        .slowest()
        .iter()
        .map(crate::flight::RequestRecord::to_json)
        .collect();
    let body = Json::obj()
        .set("capacity", state.flight.capacity())
        .set("recorded", state.flight.recorded())
        .set("sample_every", state.sample_every)
        .set("recent", recent)
        .set("slowest", slowest)
        .render();
    Ok(Routed::ok(body, "debug_requests"))
}

/// `GET /` — endpoint index.
fn index_route(
    _state: &AppState,
    q: &Query,
    _trace: &mut RequestTrace,
) -> Result<Routed, ApiError> {
    q.check_known(&[])?;
    let endpoints = vec![
        Json::Str("/v1/characterize?domain=&params=&subbatch=".into()),
        Json::Str("/v1/sweep?domain=&lo=&hi=&points=&subbatch=".into()),
        Json::Str("/v1/project?domain=".into()),
        Json::Str("/v1/subbatch?domain=&params=".into()),
        Json::Str("/v1/plan?domain=&accels=&days=".into()),
        Json::Str("/v1/plan/search?domain=&days=&accels=&accel=&subbatch=&micro=".into()),
        Json::Str("/v1/infer/characterize?batch=&prompt=&context=&heads=&head_dim=&layers=&vocab=&ff=&tied=".into()),
        Json::Str("/v1/infer/sweep?prompt=&batch=&context=&heads=&head_dim=&layers=&vocab=&ff=&tied=".into()),
        Json::Str("/v1/infer/plan?tpot_ms=&ttft_ms=&tokens_per_s=&accel=&batch=&accels=&prompt=&context=".into()),
        Json::Str("/v1/healthz".into()),
        Json::Str("/v1/metrics".into()),
        Json::Str("/metrics".into()),
        Json::Str("/v1/debug/requests".into()),
    ];
    let body = Json::obj()
        .set("service", "frontier-serve")
        .set("endpoints", endpoints)
        .render();
    Ok(Routed::ok(body, "index"))
}
