//! Incremental HTTP/1.1 request parsing and response rendering.
//!
//! Only what the query API needs: `GET`/`HEAD`, a path + query target, and
//! the connection-management headers (`connection`, `content-length`,
//! `transfer-encoding`). There are **no blocking socket reads here** — the
//! epoll reactor ([`crate::reactor`]) accumulates whatever bytes a
//! non-blocking read yielded into a per-connection buffer and feeds it to
//! [`parse_head`], which either asks for more bytes ([`Feed::Incomplete`]),
//! returns a complete head plus how many buffer bytes it consumed (so
//! pipelined requests parse back-to-back from one buffer), or fails with a
//! structured [`HttpError`] → the caller renders a JSON 4xx and closes.
//!
//! Reassembly is transparent: parsing a head from bytes that arrived one
//! byte at a time is byte-for-byte identical to parsing it from a single
//! buffer (gated by unit tests here and a proptest in
//! `tests/integration_reactor.rs`).
//!
//! Responses always carry `content-length` plus an explicit `connection:
//! keep-alive` or `connection: close` reflecting the actual disposition.

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parse-level failure with the status it should produce.
#[derive(Clone, Debug, PartialEq)]
pub struct HttpError {
    /// Status code (400, 405, 414, 431, 505…).
    pub status: u16,
    /// Machine-readable code.
    pub code: &'static str,
    /// Human detail.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            code,
            message: message.into(),
        }
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// `GET` or `HEAD`.
    pub method: String,
    /// Decoded path component (no query).
    pub path: String,
    /// Raw query string (after `?`, may be empty).
    pub query: String,
}

/// One complete request head parsed out of a connection buffer.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedHead {
    /// The request line.
    pub req: Request,
    /// Whether the client permits connection reuse after this exchange
    /// (HTTP/1.1 defaults to yes, HTTP/1.0 to no; an explicit `connection`
    /// header overrides either way).
    pub keep_alive: bool,
    /// Bytes of the input buffer this head consumed, including the blank
    /// line. The next pipelined request begins here.
    pub consumed: usize,
}

/// Result of feeding buffered bytes to the parser.
#[derive(Clone, Debug, PartialEq)]
pub enum Feed {
    /// No complete head yet; read more bytes and call again.
    Incomplete,
    /// A complete head (there may be more requests after `consumed`).
    Parsed(ParsedHead),
}

/// Incrementally parse one request head from the front of `buf`.
///
/// Stateless over the buffer: callers re-feed the same (growing) buffer
/// until it holds a full head, then drain `consumed` bytes. Errors are
/// terminal for the connection — the buffer contents after a malformed head
/// are untrustworthy, so the caller answers the error and closes.
pub fn parse_head(buf: &[u8]) -> Result<Feed, HttpError> {
    let Some((head_end, sep_len)) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(
                431,
                "head_too_large",
                "request head over 8 KiB",
            ));
        }
        return Ok(Feed::Incomplete);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::new(
            431,
            "head_too_large",
            "request head over 8 KiB",
        ));
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "bad_encoding", "request head is not UTF-8"))?;
    let mut lines = head.lines();
    let (req, mut keep_alive) = parse_request_line(lines.next().unwrap_or(""))?;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            // Tolerate stray header-less lines (telnet users); they carry
            // nothing we act on.
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            let n: u64 = value.parse().map_err(|_| {
                HttpError::new(
                    400,
                    "bad_content_length",
                    format!("unparsable content-length {value:?}"),
                )
            })?;
            if n > 0 {
                return Err(HttpError::new(
                    400,
                    "body_not_supported",
                    "request bodies are not accepted; the API is GET/HEAD only",
                ));
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::new(
                400,
                "body_not_supported",
                "transfer-encoding is not accepted; the API is GET/HEAD only",
            ));
        }
    }
    Ok(Feed::Parsed(ParsedHead {
        req,
        keep_alive,
        consumed: head_end + sep_len,
    }))
}

/// Find the head terminator: byte offset where the head ends plus the
/// terminator's length. Accepts `\r\n\r\n` or (leniently, for telnet and
/// printf-style test clients) a bare `\n\n` — whichever comes first.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let crlf = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| (p, 4));
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|p| (p, 2));
    match (crlf, lf) {
        (Some(c), Some(l)) => Some(if c.0 <= l.0 { c } else { l }),
        (c, l) => c.or(l),
    }
}

/// Parse `GET /path?query HTTP/1.1` → the request plus the version's
/// default keep-alive disposition (1.1 persistent, 1.0 one-shot).
pub fn parse_request_line(line: &str) -> Result<(Request, bool), HttpError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(
            400,
            "bad_request_line",
            format!("malformed request line {line:?}"),
        ));
    };
    if method.is_empty() || target.is_empty() {
        return Err(HttpError::new(
            400,
            "bad_request_line",
            "empty method or target",
        ));
    }
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::new(
            505,
            "bad_version",
            format!("unsupported version {version:?}"),
        ));
    }
    if !matches!(method, "GET" | "HEAD") {
        return Err(HttpError::new(
            405,
            "method_not_allowed",
            format!("method {method} not allowed; use GET"),
        ));
    }
    if target.len() > 4096 {
        return Err(HttpError::new(
            414,
            "uri_too_long",
            "request target over 4096 bytes",
        ));
    }
    if !target.starts_with('/') {
        return Err(HttpError::new(
            400,
            "bad_target",
            format!("target {target:?} must be absolute"),
        ));
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    Ok((
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: query.to_string(),
        },
        version == "HTTP/1.1",
    ))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// Render a response head. `content_type` is the media type
/// (`application/json` everywhere except the Prometheus text exposition);
/// `keep_alive` selects the `connection:` disposition the reactor actually
/// applies after flushing.
pub fn render_head(
    status: u16,
    body_len: usize,
    cache_state: Option<&str>,
    content_type: &str,
    keep_alive: bool,
) -> String {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {body_len}\r\nconnection: {}\r\n",
        reason(status),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(state) = cache_state {
        head.push_str("x-cache: ");
        head.push_str(state);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    head
}

/// Render a full response (head + body) into one owned buffer. `head_only`
/// elides the body (HEAD requests) while `content-length` still reflects
/// the would-be body.
pub fn render_response(
    status: u16,
    body: &str,
    cache_state: Option<&str>,
    content_type: &str,
    keep_alive: bool,
    head_only: bool,
) -> Vec<u8> {
    let head = render_head(status, body.len(), cache_state, content_type, keep_alive);
    let mut out = Vec::with_capacity(head.len() + if head_only { 0 } else { body.len() });
    out.extend_from_slice(head.as_bytes());
    if !head_only {
        out.extend_from_slice(body.as_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_target_with_query() {
        let (r, ka) =
            parse_request_line("GET /v1/characterize?domain=wordlm HTTP/1.1").expect("ok");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/characterize");
        assert_eq!(r.query, "domain=wordlm");
        assert!(ka, "HTTP/1.1 defaults to keep-alive");
        let (r, ka) = parse_request_line("HEAD / HTTP/1.0").expect("ok");
        assert_eq!(r.method, "HEAD");
        assert_eq!(r.query, "");
        assert!(!ka, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn malformed_request_lines_are_structured_errors() {
        assert_eq!(parse_request_line("").unwrap_err().status, 400);
        assert_eq!(parse_request_line("GET").unwrap_err().status, 400);
        assert_eq!(parse_request_line("GET /").unwrap_err().status, 400);
        assert_eq!(
            parse_request_line("GET / HTTP/1.1 extra")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse_request_line("POST / HTTP/1.1").unwrap_err().status,
            405
        );
        assert_eq!(parse_request_line("GET / SPDY/9").unwrap_err().status, 505);
        assert_eq!(
            parse_request_line("GET noslash HTTP/1.1")
                .unwrap_err()
                .status,
            400
        );
        let long = format!("GET /{} HTTP/1.1", "a".repeat(5000));
        assert_eq!(parse_request_line(&long).unwrap_err().status, 414);
    }

    #[test]
    fn head_end_detection_handles_both_line_endings() {
        assert!(find_head_end(b"GET / HTTP/1.1\r\n\r\n").is_some());
        assert!(find_head_end(b"GET / HTTP/1.1\n\n").is_some());
        assert!(find_head_end(b"GET / HTTP/1.1\r\n").is_none());
        // Whichever terminator comes first wins.
        assert_eq!(find_head_end(b"a\n\nb\r\n\r\n"), Some((1, 2)));
        assert_eq!(find_head_end(b"a\r\n\r\nb\n\n"), Some((1, 4)));
    }

    #[test]
    fn incremplete_feeds_ask_for_more_until_the_head_lands() {
        let wire = b"GET /v1/healthz HTTP/1.1\r\nhost: t\r\n\r\n";
        for split in 0..wire.len() {
            let fed = parse_head(&wire[..split]).expect("prefix parses or waits");
            assert_eq!(fed, Feed::Incomplete, "split at {split}");
        }
        match parse_head(wire).expect("full head") {
            Feed::Parsed(head) => {
                assert_eq!(head.req.path, "/v1/healthz");
                assert_eq!(head.consumed, wire.len());
                assert!(head.keep_alive);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn split_at_every_byte_boundary_equals_single_buffer_parse() {
        // Reassembling from two fragments must match the one-shot parse for
        // every possible split point — the reactor's partial-read contract.
        let wire = b"GET /v1/sweep?points=3 HTTP/1.1\r\nconnection: close\r\nhost: x\r\n\r\nGET";
        let whole = parse_head(wire).expect("whole parses");
        for split in 0..=wire.len() {
            let mut buf = Vec::new();
            buf.extend_from_slice(&wire[..split]);
            let first = parse_head(&buf).expect("prefix never errors");
            buf.extend_from_slice(&wire[split..]);
            let rejoined = parse_head(&buf).expect("rejoined parses");
            assert_eq!(rejoined, whole, "split at {split}");
            if let Feed::Parsed(ref head) = first {
                // If the prefix already held the whole head, it must agree.
                assert_eq!(Feed::Parsed(head.clone()), whole, "early split {split}");
            }
        }
        match whole {
            Feed::Parsed(head) => {
                assert!(!head.keep_alive, "explicit close honored");
                // Trailing pipelined bytes are not consumed.
                assert_eq!(&wire[head.consumed..], b"GET");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipelined_heads_parse_back_to_back() {
        let wire = b"GET /a HTTP/1.1\r\n\r\nGET /b?x=1 HTTP/1.1\r\nconnection: close\r\n\r\n";
        let mut buf = wire.to_vec();
        let Feed::Parsed(first) = parse_head(&buf).expect("first") else {
            panic!("first incomplete");
        };
        assert_eq!(first.req.path, "/a");
        assert!(first.keep_alive);
        buf.drain(..first.consumed);
        let Feed::Parsed(second) = parse_head(&buf).expect("second") else {
            panic!("second incomplete");
        };
        assert_eq!(second.req.path, "/b");
        assert_eq!(second.req.query, "x=1");
        assert!(!second.keep_alive);
        assert_eq!(second.consumed, buf.len());
    }

    #[test]
    fn connection_header_overrides_version_default() {
        let ka = |wire: &[u8]| match parse_head(wire).expect("parses") {
            Feed::Parsed(head) => head.keep_alive,
            other => panic!("unexpected {other:?}"),
        };
        assert!(!ka(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n"));
        assert!(ka(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.1\r\nconnection: x, close\r\n\r\n"));
    }

    #[test]
    fn oversized_heads_and_bodies_are_rejected() {
        // Head over the cap without a terminator: reject as soon as the
        // buffer exceeds the bound, not only at a terminator.
        let mut huge = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        huge.extend(std::iter::repeat_n(b'x', MAX_HEAD_BYTES + 1));
        assert_eq!(parse_head(&huge).unwrap_err().status, 431);
        // A declared request body is a structured 400.
        let body = b"GET / HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        let err = parse_head(body).unwrap_err();
        assert_eq!((err.status, err.code), (400, "body_not_supported"));
        let chunked = b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        assert_eq!(parse_head(chunked).unwrap_err().code, "body_not_supported");
        let bad = b"GET / HTTP/1.1\r\ncontent-length: banana\r\n\r\n";
        assert_eq!(parse_head(bad).unwrap_err().code, "bad_content_length");
        // content-length: 0 is harmless.
        let empty = b"GET / HTTP/1.1\r\ncontent-length: 0\r\n\r\n";
        assert!(matches!(parse_head(empty), Ok(Feed::Parsed(_))));
    }

    #[test]
    fn rendered_heads_reflect_the_disposition() {
        let ka = render_head(200, 2, Some("hit"), "application/json", true);
        assert!(ka.contains("connection: keep-alive\r\n"), "{ka}");
        assert!(ka.contains("x-cache: hit\r\n"), "{ka}");
        assert!(ka.contains("content-length: 2\r\n"), "{ka}");
        let close = render_head(400, 10, None, "application/json", false);
        assert!(close.contains("connection: close\r\n"), "{close}");
        assert!(!close.contains("x-cache"), "{close}");
        let head_only = render_response(200, "body", None, "application/json", true, true);
        assert!(!head_only.ends_with(b"body"), "HEAD elides the body");
        assert!(String::from_utf8(head_only)
            .expect("utf8")
            .contains("content-length: 4"));
    }
}
