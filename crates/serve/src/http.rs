//! Minimal HTTP/1.1 request parsing and response writing over `std::net`.
//!
//! Only what the query API needs: `GET`/`HEAD`, a path + query target, and
//! headers we ignore (except for reading until the blank line). Every
//! malformed input path returns a structured [`HttpError`] → the caller
//! renders a JSON 400; oversized or slow requests are bounded by a byte cap
//! and socket read timeout. Responses always carry `Content-Length` and
//! `Connection: close`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// How long a client may dribble its request head.
pub const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// A parse-level failure with the status it should produce.
#[derive(Clone, Debug, PartialEq)]
pub struct HttpError {
    /// Status code (400, 405, 414, 431, 505…).
    pub status: u16,
    /// Machine-readable code.
    pub code: &'static str,
    /// Human detail.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            code,
            message: message.into(),
        }
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// `GET` or `HEAD`.
    pub method: String,
    /// Decoded path component (no query).
    pub path: String,
    /// Raw query string (after `?`, may be empty).
    pub query: String,
}

/// Read and parse one request head from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::new(
                431,
                "head_too_large",
                "request head over 8 KiB",
            ));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::new(400, "read_failed", e.to_string()))?;
        if n == 0 {
            return Err(HttpError::new(
                400,
                "truncated",
                "connection closed mid-request",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
        if find_head_end(&buf).is_some() {
            break;
        }
    }
    let head_end = find_head_end(&buf).expect("checked");
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "bad_encoding", "request head is not UTF-8"))?;
    parse_request_line(head.lines().next().unwrap_or(""))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").or_else(|| {
        // Be lenient with bare-LF clients (telnet, printf tests).
        buf.windows(2).position(|w| w == b"\n\n")
    })
}

/// Parse `GET /path?query HTTP/1.1`.
pub fn parse_request_line(line: &str) -> Result<Request, HttpError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(
            400,
            "bad_request_line",
            format!("malformed request line {line:?}"),
        ));
    };
    if method.is_empty() || target.is_empty() {
        return Err(HttpError::new(
            400,
            "bad_request_line",
            "empty method or target",
        ));
    }
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::new(
            505,
            "bad_version",
            format!("unsupported version {version:?}"),
        ));
    }
    if !matches!(method, "GET" | "HEAD") {
        return Err(HttpError::new(
            405,
            "method_not_allowed",
            format!("method {method} not allowed; use GET"),
        ));
    }
    if target.len() > 4096 {
        return Err(HttpError::new(
            414,
            "uri_too_long",
            "request target over 4096 bytes",
        ));
    }
    if !target.starts_with('/') {
        return Err(HttpError::new(
            400,
            "bad_target",
            format!("target {target:?} must be absolute"),
        ));
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// Write a response. `content_type` is the media type (`application/json`
/// everywhere except the Prometheus text exposition); `head_only` elides
/// the body (HEAD requests).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    cache_state: Option<&str>,
    content_type: &str,
    head_only: bool,
) -> std::io::Result<()> {
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len(),
    );
    if let Some(state) = cache_state {
        head.push_str("x-cache: ");
        head.push_str(state);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if !head_only {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_target_with_query() {
        let r = parse_request_line("GET /v1/characterize?domain=wordlm HTTP/1.1").expect("ok");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/characterize");
        assert_eq!(r.query, "domain=wordlm");
        let r = parse_request_line("HEAD / HTTP/1.0").expect("ok");
        assert_eq!(r.method, "HEAD");
        assert_eq!(r.query, "");
    }

    #[test]
    fn malformed_request_lines_are_structured_errors() {
        assert_eq!(parse_request_line("").unwrap_err().status, 400);
        assert_eq!(parse_request_line("GET").unwrap_err().status, 400);
        assert_eq!(parse_request_line("GET /").unwrap_err().status, 400);
        assert_eq!(
            parse_request_line("GET / HTTP/1.1 extra")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse_request_line("POST / HTTP/1.1").unwrap_err().status,
            405
        );
        assert_eq!(parse_request_line("GET / SPDY/9").unwrap_err().status, 505);
        assert_eq!(
            parse_request_line("GET noslash HTTP/1.1")
                .unwrap_err()
                .status,
            400
        );
        let long = format!("GET /{} HTTP/1.1", "a".repeat(5000));
        assert_eq!(parse_request_line(&long).unwrap_err().status, 414);
    }

    #[test]
    fn head_end_detection_handles_both_line_endings() {
        assert!(find_head_end(b"GET / HTTP/1.1\r\n\r\n").is_some());
        assert!(find_head_end(b"GET / HTTP/1.1\n\n").is_some());
        assert!(find_head_end(b"GET / HTTP/1.1\r\n").is_none());
    }
}
