//! Sharded, content-addressed memoization cache with single-flight compute.
//!
//! Keys are [`frontier::QueryKey`] 128-bit content hashes; values are the
//! rendered JSON response bodies (`Arc<String>`, so a hit is a hash lookup
//! plus a refcount bump). Each shard is an independently locked LRU map, so
//! concurrent queries for different keys contend only 1/N of the time.
//!
//! **Single-flight:** the first request for a key installs a `Pending` slot
//! and computes outside the lock; concurrent requests for the same key block
//! on the flight's condvar and receive the same `Arc` — an expensive
//! characterization is computed exactly once no matter how many clients ask
//! simultaneously. A panicking compute poisons nobody: the pending slot is
//! removed, waiters get the error, and later requests recompute.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::trace::elapsed_us;

/// How a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Value was already resident.
    Hit,
    /// This request computed the value.
    Miss,
    /// Another in-flight request computed it; this one waited.
    Coalesced,
}

/// Where a lookup's time went, for the request trace context.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LookupTiming {
    /// Shard lock + probe (all outcomes).
    pub lookup_us: u64,
    /// Blocked on another request's flight (coalesced only).
    pub wait_us: u64,
    /// Running the compute closure (miss only; includes serialization done
    /// inside the closure).
    pub compute_us: u64,
}

type ComputeResult = Result<Arc<String>, String>;

struct Flight {
    done: Mutex<Option<ComputeResult>>,
    cv: Condvar,
}

enum Slot {
    Ready(Arc<String>),
    Pending(Arc<Flight>),
}

struct Entry {
    slot: Slot,
    last_used: u64,
}

struct Shard {
    map: HashMap<u128, Entry>,
}

/// Cache hit/miss/eviction counters (all monotonic).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups satisfied from a resident value.
    pub hits: AtomicU64,
    /// Lookups that computed the value.
    pub misses: AtomicU64,
    /// Lookups that waited on another request's compute.
    pub coalesced: AtomicU64,
    /// Values evicted to stay under capacity.
    pub evictions: AtomicU64,
    /// Computes that failed (panicked or returned an error).
    pub failures: AtomicU64,
}

/// The memoization cache.
pub struct MemoCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    /// Counters, exposed for `/v1/metrics`.
    pub stats: CacheStats,
}

impl MemoCache {
    /// A cache bounded to roughly `capacity` resident values, spread over
    /// `shards` independently locked shards.
    pub fn new(capacity: usize, shards: usize) -> MemoCache {
        let shards = shards.clamp(1, 64);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        MemoCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                    })
                })
                .collect(),
            per_shard_capacity,
            tick: AtomicU64::new(0),
            stats: CacheStats::default(),
        }
    }

    /// Total resident (ready) values across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard lock")
                    .map
                    .values()
                    .filter(|e| matches!(e.slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nominal capacity (values).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    fn shard_for(&self, key: u128) -> &Mutex<Shard> {
        // High bits select the shard; the map hashes the full key.
        let idx = ((key >> 96) as usize) % self.shards.len();
        &self.shards[idx]
    }

    fn touch(&self) -> u64 {
        // Relaxed: a single-atomic RMW is already totally ordered with other
        // RMWs on the same atomic, which is all LRU recency needs; ties
        // across shards carry no meaning.
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up `key`, computing the value with `compute` on a miss. Returns
    /// the body and how it was obtained. `compute` errors (including
    /// panics, reported as errors) are not cached.
    pub fn get_or_compute(
        &self,
        key: u128,
        compute: impl FnOnce() -> Result<String, String>,
    ) -> (ComputeResult, Outcome) {
        let (result, outcome, _) = self.get_or_compute_timed(key, compute);
        (result, outcome)
    }

    /// [`Self::get_or_compute`], additionally reporting where the lookup's
    /// time went (shard probe / flight wait / compute) for the request
    /// trace context.
    pub fn get_or_compute_timed(
        &self,
        key: u128,
        compute: impl FnOnce() -> Result<String, String>,
    ) -> (ComputeResult, Outcome, LookupTiming) {
        let probe_start = Instant::now();
        let flight: Arc<Flight>;
        {
            let mut shard = self.shard_for(key).lock().expect("cache shard lock");
            match shard.map.get_mut(&key) {
                Some(entry) => {
                    entry.last_used = self.touch();
                    match &entry.slot {
                        Slot::Ready(value) => {
                            let value = Arc::clone(value);
                            // Relaxed: standalone monotone tally. Exact
                            // cross-thread visibility in tests is given by
                            // the response write happening before the test's
                            // next request (TCP read → happens-before).
                            self.stats.hits.fetch_add(1, Ordering::Relaxed);
                            return (
                                Ok(value),
                                Outcome::Hit,
                                LookupTiming {
                                    lookup_us: elapsed_us(probe_start),
                                    ..LookupTiming::default()
                                },
                            );
                        }
                        Slot::Pending(f) => {
                            flight = Arc::clone(f);
                            // fall through to wait outside the shard lock
                        }
                    }
                }
                None => {
                    let f = Arc::new(Flight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    shard.map.insert(
                        key,
                        Entry {
                            slot: Slot::Pending(Arc::clone(&f)),
                            last_used: self.touch(),
                        },
                    );
                    drop(shard);
                    let lookup_us = elapsed_us(probe_start);
                    let compute_start = Instant::now();
                    let result = self.run_flight(key, f, compute);
                    return (
                        result,
                        Outcome::Miss,
                        LookupTiming {
                            lookup_us,
                            wait_us: 0,
                            compute_us: elapsed_us(compute_start),
                        },
                    );
                }
            }
        }
        // Wait for the in-flight compute.
        let lookup_us = elapsed_us(probe_start);
        // Relaxed: standalone monotone tally (see `hits` above).
        self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
        let wait_start = Instant::now();
        let mut done = flight.done.lock().expect("flight lock");
        while done.is_none() {
            done = flight.cv.wait(done).expect("flight wait");
        }
        (
            done.as_ref().expect("flight finished").clone(),
            Outcome::Coalesced,
            LookupTiming {
                lookup_us,
                wait_us: elapsed_us(wait_start),
                compute_us: 0,
            },
        )
    }

    fn run_flight(
        &self,
        key: u128,
        flight: Arc<Flight>,
        compute: impl FnOnce() -> Result<String, String>,
    ) -> ComputeResult {
        // Relaxed: standalone monotone tally; the value itself is published
        // via the shard mutex / flight condvar, never via this counter.
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let result: ComputeResult = match catch_unwind(AssertUnwindSafe(compute)) {
            Ok(Ok(body)) => Ok(Arc::new(body)),
            Ok(Err(e)) => Err(e),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "computation panicked".into());
                Err(format!("computation panicked: {msg}"))
            }
        };
        if result.is_err() {
            // Relaxed: standalone monotone tally, observed only by scrapes.
            self.stats.failures.fetch_add(1, Ordering::Relaxed);
        }
        {
            let mut shard = self.shard_for(key).lock().expect("cache shard lock");
            match &result {
                Ok(value) => {
                    if let Some(entry) = shard.map.get_mut(&key) {
                        entry.slot = Slot::Ready(Arc::clone(value));
                        entry.last_used = self.touch();
                    }
                    self.evict_if_needed(&mut shard);
                }
                Err(_) => {
                    // Drop the pending slot so a later request retries.
                    shard.map.remove(&key);
                }
            }
        }
        // Wake everyone coalesced on this flight.
        *flight.done.lock().expect("flight lock") = Some(result.clone());
        flight.cv.notify_all();
        result
    }

    /// Evict least-recently-used *ready* entries until the shard is at
    /// capacity. Pending flights are never evicted.
    fn evict_if_needed(&self, shard: &mut Shard) {
        loop {
            let ready = shard
                .map
                .values()
                .filter(|e| matches!(e.slot, Slot::Ready(_)))
                .count();
            if ready <= self.per_shard_capacity {
                return;
            }
            let Some((&victim, _)) = shard
                .map
                .iter()
                .filter(|(_, e)| matches!(e.slot, Slot::Ready(_)))
                .min_by_key(|(_, e)| e.last_used)
            else {
                return;
            };
            shard.map.remove(&victim);
            // Relaxed: standalone monotone tally; the removal itself is
            // ordered by the shard mutex held here.
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Hit rate over all lookups so far (0 when none).
    pub fn hit_rate(&self) -> f64 {
        // Relaxed loads: the counters are independent; a scrape landing
        // mid-request may see hits/misses skewed by one, harmless in a ratio.
        let hits =
            self.stats.hits.load(Ordering::Relaxed) + self.stats.coalesced.load(Ordering::Relaxed);
        let total = hits + self.stats.misses.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

// ------------------------------------------------------------- bytes cache

/// A fully pre-serialized response: the JSON body shared with the
/// [`MemoCache`]'s value plus two pre-rendered heads (`x-cache: hit`, one
/// per connection disposition). A warm hit is a single `writev` of
/// `[head, body]` — zero re-encode, zero copy of the body bytes.
pub struct CachedBytes {
    /// HTTP status the cached exchange produced (always 200 today; only
    /// successful cacheable responses are admitted).
    pub status: u16,
    /// Endpoint label for metrics/flight records.
    pub endpoint: &'static str,
    /// The response body, byte-identical to fresh serialization.
    pub body: Arc<String>,
    /// Pre-rendered head ending in `connection: keep-alive` + `x-cache: hit`.
    pub head_keep_alive: Vec<u8>,
    /// Pre-rendered head ending in `connection: close` + `x-cache: hit`.
    pub head_close: Vec<u8>,
}

struct BytesEntry {
    value: Arc<CachedBytes>,
    last_used: u64,
}

struct BytesShard {
    map: HashMap<String, BytesEntry>,
}

/// Response-bytes cache layered **above** the [`MemoCache`].
///
/// Keys are the raw request target (`/path?query`), values are
/// [`CachedBytes`]. Both layers memoize pure functions of the query, so
/// there is nothing to invalidate — the layers can evict independently
/// without any staleness risk; the only coupling is capacity (see DESIGN.md
/// § "Event-driven serve tier"). Entries are inserted by worker threads
/// after a cold compute and probed by the reactor thread before dispatch;
/// hit/miss tallies live in
/// [`ReactorStats`](crate::metrics::ReactorStats), not here, because the
/// probe site (the reactor) owns the counters.
pub struct BytesCache {
    shards: Vec<Mutex<BytesShard>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
}

impl BytesCache {
    /// A cache bounded to roughly `capacity` resident responses, spread over
    /// `shards` independently locked shards.
    pub fn new(capacity: usize, shards: usize) -> BytesCache {
        let shards = shards.clamp(1, 64);
        BytesCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(BytesShard {
                        map: HashMap::new(),
                    })
                })
                .collect(),
            per_shard_capacity: capacity.div_ceil(shards).max(1),
            tick: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, target: &str) -> &Mutex<BytesShard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        target.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Resident responses across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("bytes shard lock").map.len())
            .sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probe for `target`, refreshing its recency on a hit.
    pub fn get(&self, target: &str) -> Option<Arc<CachedBytes>> {
        // Relaxed: LRU recency only needs RMW total order (see MemoCache).
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(target).lock().expect("bytes shard lock");
        let entry = shard.map.get_mut(target)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.value))
    }

    /// Insert (or refresh) the pre-rendered response for `target`, evicting
    /// the least-recently-used entry if the shard is over capacity.
    pub fn insert(&self, target: String, value: CachedBytes) {
        // Relaxed: see `get`.
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(&target).lock().expect("bytes shard lock");
        shard.map.insert(
            target,
            BytesEntry {
                value: Arc::new(value),
                last_used: tick,
            },
        );
        while shard.map.len() > self.per_shard_capacity {
            let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            shard.map.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn second_lookup_hits_with_identical_value() {
        let cache = MemoCache::new(8, 2);
        let (first, o1) = cache.get_or_compute(42, || Ok("body".into()));
        let (second, o2) = cache.get_or_compute(42, || Ok("OTHER".into()));
        assert_eq!(o1, Outcome::Miss);
        assert_eq!(o2, Outcome::Hit);
        assert!(Arc::ptr_eq(&first.expect("ok"), &second.expect("ok")));
        assert_eq!(cache.stats.hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_identical_queries_compute_once() {
        let cache = Arc::new(MemoCache::new(8, 4));
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                let (value, _) = cache.get_or_compute(7, || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    Ok("expensive".into())
                });
                value.expect("ok")
            }));
        }
        let values: Vec<Arc<String>> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single-flight");
        assert!(values.iter().all(|v| v.as_str() == "expensive"));
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let cache = MemoCache::new(4, 1);
        for key in 0..8u128 {
            let (v, _) = cache.get_or_compute(key, || Ok(format!("v{key}")));
            v.expect("ok");
        }
        assert!(cache.len() <= 4, "len {} over capacity", cache.len());
        assert!(cache.stats.evictions.load(Ordering::Relaxed) >= 4);
        // The most recent key is still resident.
        let (_, outcome) = cache.get_or_compute(7, || Ok("recomputed".into()));
        assert_eq!(outcome, Outcome::Hit);
    }

    #[test]
    fn failed_computes_are_not_cached_and_retry() {
        let cache = MemoCache::new(8, 1);
        let (r1, _) = cache.get_or_compute(1, || Err("boom".into()));
        assert!(r1.is_err());
        let (r2, outcome) = cache.get_or_compute(1, || Ok("recovered".into()));
        assert_eq!(outcome, Outcome::Miss);
        assert_eq!(r2.expect("ok").as_str(), "recovered");
        assert_eq!(cache.stats.failures.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_computes_become_errors() {
        let cache = MemoCache::new(8, 1);
        let (r, _) = cache.get_or_compute(2, || panic!("kaboom"));
        let err = r.expect_err("panic becomes error");
        assert!(err.contains("kaboom"), "{err}");
        // Cache stays usable.
        let (r2, _) = cache.get_or_compute(2, || Ok("fine".into()));
        assert_eq!(r2.expect("ok").as_str(), "fine");
    }

    fn cached_bytes(endpoint: &'static str, body: &str) -> CachedBytes {
        let body = Arc::new(body.to_string());
        CachedBytes {
            status: 200,
            endpoint,
            head_keep_alive: crate::http::render_head(
                200,
                body.len(),
                Some("hit"),
                "application/json",
                true,
            )
            .into_bytes(),
            head_close: crate::http::render_head(
                200,
                body.len(),
                Some("hit"),
                "application/json",
                false,
            )
            .into_bytes(),
            body,
        }
    }

    #[test]
    fn bytes_cache_round_trips_and_shares_the_body() {
        let cache = BytesCache::new(8, 2);
        assert!(cache.get("/v1/characterize?domain=nmt").is_none());
        cache.insert(
            "/v1/characterize?domain=nmt".to_string(),
            cached_bytes("characterize", "{\"x\":1}"),
        );
        let hit = cache.get("/v1/characterize?domain=nmt").expect("resident");
        assert_eq!(hit.body.as_str(), "{\"x\":1}");
        assert_eq!(hit.endpoint, "characterize");
        let head = String::from_utf8(hit.head_keep_alive.clone()).expect("utf8");
        assert!(head.contains("x-cache: hit"), "{head}");
        assert!(head.contains("connection: keep-alive"), "{head}");
        assert!(head.contains(&format!("content-length: {}", hit.body.len())));
    }

    #[test]
    fn bytes_cache_evicts_least_recently_used() {
        let cache = BytesCache::new(4, 1);
        for i in 0..8 {
            cache.insert(format!("/k{i}"), cached_bytes("characterize", "{}"));
            // Keep /k0 hot so the eviction victim is always something else.
            let _ = cache.get("/k0");
        }
        assert!(cache.len() <= 4, "len {} over capacity", cache.len());
        assert!(cache.get("/k0").is_some(), "hot entry survived");
        assert!(cache.get("/k1").is_none(), "cold entry evicted");
    }
}
