//! SIGTERM / SIGINT → graceful-shutdown flag, without a libc crate.
//!
//! The workspace has no external dependencies, but the `signal` symbol is
//! in the C library every Rust binary already links. The handler only sets
//! an `AtomicBool` (async-signal-safe); the accept loop polls it.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{AtomicBool, Ordering, REQUESTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    // Keep the unused-import lint quiet on non-test builds.
    #[allow(unused)]
    fn _assert_type(_: &AtomicBool) {}
}

#[cfg(not(unix))]
mod imp {
    /// No signal wiring off Unix; shutdown happens via [`Server::shutdown`].
    pub fn install() {}
}

/// Install the SIGINT/SIGTERM handlers (idempotent).
pub fn install() {
    imp::install();
}

/// Has a shutdown signal arrived?
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Test hook: simulate a received signal.
#[doc(hidden)]
pub fn request_for_test() {
    REQUESTED.store(true, Ordering::SeqCst);
}
