//! Query-string parsing with structured errors.
//!
//! `?domain=wordlm&params=10000000&subbatch=16` → typed lookups. Every
//! failure mode — bad percent-encoding, duplicate keys, unparsable numbers,
//! unknown enum values — is an [`ApiError`] that renders as an HTTP 400 with
//! a JSON body; nothing in this module panics on hostile input.

use modelzoo::Domain;

use crate::json::Json;

/// A structured request-handling error: HTTP status + machine-readable code
/// + human message. Renders as the server's JSON error body.
#[derive(Clone, Debug, PartialEq)]
pub struct ApiError {
    /// HTTP status code to respond with.
    pub status: u16,
    /// Stable machine-readable error code (e.g. `bad_parameter`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// A 400 with the given code and message.
    pub fn bad_request(code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            code,
            message: message.into(),
        }
    }

    /// The JSON error body.
    pub fn body(&self) -> Json {
        Json::obj()
            .set("error", self.code)
            .set("message", self.message.as_str())
            .set("status", u64::from(self.status))
    }
}

/// Percent-decode a query component (`+` means space).
fn percent_decode(s: &str) -> Result<String, ApiError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).ok_or_else(|| {
                    ApiError::bad_request("bad_encoding", "truncated percent escape")
                })?;
                let hex = std::str::from_utf8(hex)
                    .map_err(|_| ApiError::bad_request("bad_encoding", "non-ASCII escape"))?;
                let byte = u8::from_str_radix(hex, 16).map_err(|_| {
                    ApiError::bad_request("bad_encoding", format!("invalid escape %{hex}"))
                })?;
                out.push(byte);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| ApiError::bad_request("bad_encoding", "query is not valid UTF-8"))
}

/// Parsed query parameters.
#[derive(Clone, Debug, Default)]
pub struct Query {
    pairs: Vec<(String, String)>,
}

impl Query {
    /// Parse the part after `?`. Empty string ⇒ no parameters.
    pub fn parse(raw: &str) -> Result<Query, ApiError> {
        let mut pairs = Vec::new();
        if raw.is_empty() {
            return Ok(Query { pairs });
        }
        if raw.len() > 2048 {
            return Err(ApiError::bad_request(
                "query_too_long",
                "query string over 2048 bytes",
            ));
        }
        for piece in raw.split('&') {
            if piece.is_empty() {
                continue;
            }
            let (k, v) = piece.split_once('=').unwrap_or((piece, ""));
            let k = percent_decode(k)?;
            let v = percent_decode(v)?;
            if pairs.iter().any(|(existing, _)| existing == &k) {
                return Err(ApiError::bad_request(
                    "duplicate_parameter",
                    format!("parameter {k:?} given more than once"),
                ));
            }
            pairs.push((k, v));
        }
        Ok(Query { pairs })
    }

    /// Remove and return `key`'s value. Used by the dispatcher to strip
    /// transport-level parameters (`debug`) before handlers validate the
    /// remainder with [`Query::check_known`], so cache keys never see them.
    pub fn take(&mut self, key: &str) -> Option<String> {
        let at = self.pairs.iter().position(|(k, _)| k == key)?;
        Some(self.pairs.remove(at).1)
    }

    /// Raw string value of `key`.
    pub fn raw(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Typed optional parameter.
    pub fn opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ApiError> {
        match self.raw(key) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| {
                ApiError::bad_request(
                    "bad_parameter",
                    format!("parameter {key}={v:?} is not a valid value"),
                )
            }),
        }
    }

    /// Typed required parameter.
    pub fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, ApiError> {
        self.opt(key)?.ok_or_else(|| {
            ApiError::bad_request(
                "missing_parameter",
                format!("parameter {key:?} is required"),
            )
        })
    }

    /// The `domain` parameter, by machine key (`wordlm`, `charlm`, `nmt`,
    /// `speech`, `resnet`).
    pub fn domain(&self) -> Result<Domain, ApiError> {
        let raw: String = self.required("domain")?;
        Domain::ALL
            .into_iter()
            .find(|d| d.key() == raw)
            .ok_or_else(|| {
                let known: Vec<&str> = Domain::ALL.iter().map(|d| d.key()).collect();
                ApiError::bad_request(
                    "unknown_domain",
                    format!(
                        "unknown domain {raw:?}; expected one of {}",
                        known.join(", ")
                    ),
                )
            })
    }

    /// Reject parameters outside `known` so typos fail loudly.
    pub fn check_known(&self, known: &[&str]) -> Result<(), ApiError> {
        for (k, _) in &self.pairs {
            if !known.contains(&k.as_str()) {
                return Err(ApiError::bad_request(
                    "unknown_parameter",
                    format!(
                        "unknown parameter {k:?}; expected one of {}",
                        known.join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typed_parameters() {
        let q = Query::parse("domain=wordlm&params=1000&subbatch=16").expect("parses");
        assert_eq!(q.domain().expect("domain"), Domain::WordLm);
        assert_eq!(q.opt::<u64>("params").expect("ok"), Some(1000));
        assert_eq!(q.opt::<u64>("missing").expect("ok"), None);
        assert!(q.check_known(&["domain", "params", "subbatch"]).is_ok());
    }

    #[test]
    fn take_removes_the_parameter() {
        let mut q = Query::parse("domain=wordlm&debug=timings").expect("parses");
        assert_eq!(q.take("debug").as_deref(), Some("timings"));
        assert_eq!(q.take("debug"), None);
        assert!(q.check_known(&["domain"]).is_ok(), "debug is gone");
    }

    #[test]
    fn percent_decoding_and_plus() {
        let q = Query::parse("name=a%20b+c%2F").expect("parses");
        assert_eq!(q.raw("name"), Some("a b c/"));
    }

    #[test]
    fn structured_errors_for_bad_input() {
        assert_eq!(Query::parse("a=%zz").unwrap_err().code, "bad_encoding");
        assert_eq!(Query::parse("a=%f").unwrap_err().code, "bad_encoding");
        assert_eq!(
            Query::parse("a=1&a=2").unwrap_err().code,
            "duplicate_parameter"
        );
        let q = Query::parse("domain=klingon").expect("parses");
        assert_eq!(q.domain().unwrap_err().code, "unknown_domain");
        let q = Query::parse("params=banana").expect("parses");
        assert_eq!(q.opt::<u64>("params").unwrap_err().code, "bad_parameter");
        let q = Query::parse("extra=1").expect("parses");
        assert_eq!(
            q.check_known(&["domain"]).unwrap_err().code,
            "unknown_parameter"
        );
        let q = Query::parse("").expect("parses");
        assert_eq!(q.domain().unwrap_err().code, "missing_parameter");
    }

    #[test]
    fn oversized_query_rejected() {
        let raw = format!("k={}", "x".repeat(3000));
        assert_eq!(Query::parse(&raw).unwrap_err().code, "query_too_long");
    }
}
