//! Request-scoped trace context: a request id plus per-stage monotonic
//! timings threaded from `handle_connection` down through parse, cache,
//! compute, and response writing.
//!
//! Every request carries one [`RequestTrace`]; stages accumulate
//! microseconds as the request moves through the server. The stage set is
//! disjoint by construction (each covers a distinct code region), so the
//! stage sum is a lower bound on — and in practice within a few percent of
//! — the request's wall-clock latency. The trace surfaces three ways:
//!
//! * the opt-in `debug=timings` query parameter echoes the breakdown in the
//!   response body,
//! * every finished request's stages land in the
//!   [flight recorder](crate::flight::FlightRecorder),
//! * sampled requests (`--trace-sample-rate`) are promoted to full
//!   [`obs`] spans, so `--trace` captures server-side Chrome timelines.

use std::time::Instant;

use crate::json::Json;

/// Stages a request passes through, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Accept-to-worker queue wait.
    Queue,
    /// HTTP head read + request-line and query-string parsing.
    Parse,
    /// Memo-cache shard lookup (lock + probe).
    CacheLookup,
    /// Blocked on another request's in-flight compute (coalesced requests).
    SingleFlightWait,
    /// Analysis compute (cache misses only).
    Compute,
    /// JSON rendering of the response body.
    Serialize,
    /// Writing status + body to the socket.
    Write,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 7;

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Queue,
        Stage::Parse,
        Stage::CacheLookup,
        Stage::SingleFlightWait,
        Stage::Compute,
        Stage::Serialize,
        Stage::Write,
    ];

    /// Stable snake_case key used in JSON bodies and span names.
    pub fn key(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Parse => "parse",
            Stage::CacheLookup => "cache_lookup",
            Stage::SingleFlightWait => "singleflight_wait",
            Stage::Compute => "compute",
            Stage::Serialize => "serialize",
            Stage::Write => "write",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Queue => 0,
            Stage::Parse => 1,
            Stage::CacheLookup => 2,
            Stage::SingleFlightWait => 3,
            Stage::Compute => 4,
            Stage::Serialize => 5,
            Stage::Write => 6,
        }
    }
}

/// Microseconds elapsed since `start`, saturating.
pub fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// One request's trace context.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Monotonic per-server request id (1-based).
    pub id: u64,
    /// When the connection was accepted (latency epoch).
    pub accepted: Instant,
    /// Whether this request was sampled for full span capture.
    pub sampled: bool,
    stages: [u64; STAGE_COUNT],
}

impl RequestTrace {
    /// A fresh trace for request `id` accepted at `accepted`.
    pub fn new(id: u64, accepted: Instant, sampled: bool) -> RequestTrace {
        RequestTrace {
            id,
            accepted,
            sampled,
            stages: [0; STAGE_COUNT],
        }
    }

    /// Accumulate `us` into `stage` (stages may be visited more than once,
    /// e.g. head parse and query parse both land in [`Stage::Parse`]).
    pub fn add(&mut self, stage: Stage, us: u64) {
        self.stages[stage.index()] = self.stages[stage.index()].saturating_add(us);
    }

    /// Microseconds accumulated in `stage`.
    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.stages[stage.index()]
    }

    /// All stage timings, indexed like [`Stage::ALL`].
    pub fn stages(&self) -> [u64; STAGE_COUNT] {
        self.stages
    }

    /// Sum over all stages.
    pub fn sum_us(&self) -> u64 {
        self.stages.iter().sum()
    }

    /// Wall-clock microseconds since the request was accepted.
    pub fn elapsed_us(&self) -> u64 {
        elapsed_us(self.accepted)
    }

    /// The per-stage breakdown as a JSON object (`{"queue_us": .., ...}`).
    pub fn timings_json(&self) -> Json {
        Stage::ALL.iter().fold(Json::obj(), |acc, stage| {
            acc.set(&format!("{}_us", stage.key()), self.stage_us(*stage))
        })
    }

    /// Emit this request's timeline into the global obs recorder: one
    /// `serve.request` span covering `total_us`, with one `serve.stage.*`
    /// child span per nonzero stage laid out back-to-back. The layout is
    /// synthetic (stages are cumulative sums, not raw timestamps) but the
    /// durations are measured, so the Chrome trace reads true.
    pub fn emit_spans(&self, target: &str, endpoint: &str, status: u16, total_us: u64) {
        let rec = obs::recorder();
        let end_us = rec.now_us();
        let start_us = end_us.saturating_sub(total_us);
        rec.record(obs::TraceEvent {
            name: "serve.request".to_string(),
            category: "serve".to_string(),
            start_us,
            dur_us: total_us,
            thread: 0,
            kind: obs::EventKind::Complete,
            args: vec![
                ("id".to_string(), obs::JsonValue::U64(self.id)),
                (
                    "target".to_string(),
                    obs::JsonValue::Str(target.to_string()),
                ),
                (
                    "endpoint".to_string(),
                    obs::JsonValue::Str(endpoint.to_string()),
                ),
                ("status".to_string(), obs::JsonValue::U64(u64::from(status))),
            ],
        });
        let mut offset = start_us;
        for stage in Stage::ALL {
            let dur = self.stage_us(stage);
            if dur == 0 {
                continue;
            }
            rec.record(obs::TraceEvent {
                name: format!("serve.stage.{}", stage.key()),
                category: "serve".to_string(),
                start_us: offset,
                dur_us: dur,
                thread: 0,
                kind: obs::EventKind::Complete,
                args: vec![("id".to_string(), obs::JsonValue::U64(self.id))],
            });
            offset = offset.saturating_add(dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_accumulate_and_sum() {
        let mut t = RequestTrace::new(7, Instant::now(), false);
        t.add(Stage::Parse, 10);
        t.add(Stage::Parse, 5);
        t.add(Stage::Compute, 100);
        assert_eq!(t.stage_us(Stage::Parse), 15);
        assert_eq!(t.sum_us(), 115);
        let json = t.timings_json();
        assert_eq!(json.path("parse_us").and_then(Json::as_f64), Some(15.0));
        assert_eq!(json.path("compute_us").and_then(Json::as_f64), Some(100.0));
        assert_eq!(json.path("queue_us").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn sampled_traces_emit_request_and_stage_spans() {
        let before = obs::recorder().len();
        let mut t = RequestTrace::new(42, Instant::now(), true);
        t.add(Stage::Queue, 3);
        t.add(Stage::Compute, 20);
        t.emit_spans("/v1/test", "test", 200, 30);
        let events = obs::recorder().events();
        let new: Vec<_> = events.iter().skip(before).collect();
        assert!(new.iter().any(|e| e.name == "serve.request"));
        assert!(new.iter().any(|e| e.name == "serve.stage.queue"));
        assert!(new.iter().any(|e| e.name == "serve.stage.compute"));
        // Zero-duration stages are elided.
        assert!(!new.iter().any(|e| e.name == "serve.stage.parse"));
    }
}
