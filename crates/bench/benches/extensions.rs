//! Benches for the §6.2.3 extension features: precision casting, optimizer
//! rewriting, gradient-compression scaling, and the hardware design-space
//! exploration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;
use std::time::Duration;

use analysis::{hardware_sensitivity, hardware_variants, lstm_p_config};
use cgraph::{apply_optimizer, build_training_step, cast_float_precision, DType, Optimizer};
use modelzoo::{build_word_lm, ModelConfig};
use parsim::{data_parallel_point_compressed, CommConfig, GradCompression, WorkerStep};
use roofline::Accelerator;

fn bench_cast_precision(c: &mut Criterion) {
    let model = ModelConfig::WordLm(lstm_p_config()).build_training();
    let mut g = c.benchmark_group("ext_cast_precision");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    g.bench_function("lstm_p_to_f16", |b| {
        b.iter_batched(
            || model.graph.clone(),
            |mut graph| {
                cast_float_precision(&mut graph, DType::F16);
                black_box(graph)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_optimizer_rewrite(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_optimizer_rewrite");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for (name, opt) in [("momentum", Optimizer::Momentum), ("adam", Optimizer::Adam)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut m = build_word_lm(&lstm_p_config());
                    let step = build_training_step(&mut m.graph, m.loss).unwrap();
                    (m, step)
                },
                |(mut m, step)| {
                    apply_optimizer(&mut m.graph, &step, opt).unwrap();
                    black_box(m)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_compression_sweep(c: &mut Criterion) {
    let accel = Accelerator::v100_like();
    let comm = CommConfig::default();
    let worker = WorkerStep {
        compute_seconds: 11.5,
        alg_flops: 1.16e14,
        gradient_bytes: 33.6e9,
        samples_per_step: 128.0 * 80.0,
    };
    static REPORT: Once = Once::new();
    REPORT.call_once(|| {
        for (name, s) in [
            ("f32", GradCompression::None),
            ("int8", GradCompression::Int8),
            ("ternary", GradCompression::Ternary),
        ] {
            let p = data_parallel_point_compressed(&worker, 256, 77e9, &accel, &comm, s);
            eprintln!(
                "[extension] compression {name} @256 workers: comm {:.2} s, epoch {:.1} days",
                p.comm_seconds, p.epoch_days
            );
        }
    });
    c.bench_function("ext_compression_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..=12u64 {
                let p = data_parallel_point_compressed(
                    &worker,
                    1 << i,
                    77e9,
                    &accel,
                    &comm,
                    black_box(GradCompression::Int8),
                );
                total += p.epoch_days;
            }
            black_box(total)
        })
    });
}

fn bench_hardware_sensitivity(c: &mut Criterion) {
    let model = ModelConfig::WordLm(lstm_p_config()).build_training();
    let variants = hardware_variants();
    let mut g = c.benchmark_group("ext_hardware_sensitivity");
    g.sample_size(10).measurement_time(Duration::from_secs(15));
    g.bench_function("lstm_p_design_space", |b| {
        b.iter(|| black_box(hardware_sensitivity(&model, 128, &variants)))
    });
    g.finish();
}

criterion_group!(
    extensions,
    bench_cast_precision,
    bench_optimizer_rewrite,
    bench_compression_sweep,
    bench_hardware_sensitivity
);
criterion_main!(extensions);
