//! Ablation benches for the design choices called out in DESIGN.md. Each
//! compares alternatives head-to-head; the *reported quantity* (footprint,
//! modeled step time) is printed once per run so the quality difference is
//! visible next to the wall-clock cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;
use std::time::Duration;

use cgraph::{footprint, Scheduler};
use modelzoo::{Domain, ModelConfig};
use parsim::{ring_allreduce_seconds, tree_allreduce_seconds, CommConfig};
use roofline::{per_op_step_time, Accelerator, CacheModel};
use symath::Bindings;

fn medium_model() -> modelzoo::ModelGraph {
    ModelConfig::default_for(Domain::WordLm)
        .with_target_params(100_000_000)
        .build_training()
}

/// Ablation 1: footprint scheduler — program order vs greedy min-peak.
fn ablate_footprint_scheduler(c: &mut Criterion) {
    let model = medium_model();
    let bindings = model.bindings_with_batch(64);
    static REPORT: Once = Once::new();
    REPORT.call_once(|| {
        // Report on two structurally different graphs: the word LM (a long
        // chain, where the schedulers tie) and the bidirectional speech
        // encoder (heavy fan-out, where greedy's short-sightedness loses to
        // program order — the reason Scheduler::Best exists).
        for (name, domain) in [("wordlm", Domain::WordLm), ("speech", Domain::Speech)] {
            let m = ModelConfig::default_for(domain)
                .with_target_params(100_000_000)
                .build_training();
            let b = m.bindings_with_batch(64);
            let po = footprint(&m.graph, &b, Scheduler::ProgramOrder).unwrap();
            let gr = footprint(&m.graph, &b, Scheduler::GreedyMinPeak).unwrap();
            eprintln!(
                "[ablation] footprint {name}: program-order {:.3} GB vs greedy {:.3} GB",
                po.peak_bytes as f64 / 1e9,
                gr.peak_bytes as f64 / 1e9
            );
        }
    });
    let mut g = c.benchmark_group("ablate_footprint_scheduler");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for (name, sched) in [
        ("program_order", Scheduler::ProgramOrder),
        ("greedy_min_peak", Scheduler::GreedyMinPeak),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    footprint(&model.graph, &bindings, sched)
                        .unwrap()
                        .peak_bytes,
                )
            })
        });
    }
    g.finish();
}

/// Ablation 2: cache model — algorithmic vs square-tile vs panel-stream
/// (reproduces the §6.1 utilization drop).
fn ablate_cache_model(c: &mut Criterion) {
    let model = ModelConfig::WordLm(analysis::lstm_p_config()).build_training();
    let bindings = model.bindings_with_batch(128);
    let accel = Accelerator::v100_like();
    static REPORT: Once = Once::new();
    REPORT.call_once(|| {
        for m in [
            CacheModel::Algorithmic,
            CacheModel::SquareTile,
            CacheModel::PanelStream,
        ] {
            let t = per_op_step_time(&model.graph, &bindings, &accel, m).unwrap();
            let stats = roofline::cache_aware_stats(&model.graph, &bindings, &accel, m).unwrap();
            eprintln!(
                "[ablation] cache {m:?}: {:.2} TB accessed, step {:.2} s, utilization {:.1}%",
                stats.bytes / 1e12,
                t.seconds,
                100.0 * t.flop_utilization
            );
        }
        eprintln!("[ablation] note: re-streamed traffic stays below each GEMM's compute");
        eprintln!("[ablation] roofline at subbatch 128, so step time is traffic-insensitive");
        eprintln!("[ablation] here; the utilization drop vs the whole-graph roofline (80%)");
        eprintln!("[ablation] comes from memory-bound non-GEMM ops. See EXPERIMENTS.md.");
    });
    let mut g = c.benchmark_group("ablate_cache_model");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for (name, m) in [
        ("algorithmic", CacheModel::Algorithmic),
        ("square_tile", CacheModel::SquareTile),
        ("panel_stream", CacheModel::PanelStream),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    per_op_step_time(&model.graph, &bindings, &accel, m)
                        .unwrap()
                        .seconds,
                )
            })
        });
    }
    g.finish();
}

/// Ablation 3: symbolic evaluation — evaluating cached symbolic stats at a
/// new batch vs rebuilding the whole graph.
fn ablate_symbolic_eval(c: &mut Criterion) {
    let cfg = ModelConfig::default_for(Domain::WordLm).with_target_params(100_000_000);
    let model = cfg.build_training();
    let stats = model.graph.stats();
    let mut g = c.benchmark_group("ablate_symbolic_eval");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    g.bench_function("eval_cached_symbolic", |b| {
        let mut batch = 1.0;
        b.iter(|| {
            batch += 1.0;
            black_box(
                stats
                    .flops
                    .eval(&Bindings::new().with(modelzoo::BATCH_SYM, batch))
                    .unwrap(),
            )
        })
    });
    g.bench_function("rebuild_graph_per_batch", |b| {
        let mut batch = 1u64;
        b.iter(|| {
            batch += 1;
            let m = cfg.build_training();
            black_box(
                m.graph
                    .stats()
                    .eval(&m.bindings_with_batch(batch))
                    .unwrap()
                    .flops,
            )
        })
    });
    g.finish();
}

/// Ablation 4: allreduce algorithm — ring vs tree at the case-study scale.
fn ablate_allreduce(c: &mut Criterion) {
    let comm = CommConfig::default();
    static REPORT: Once = Once::new();
    REPORT.call_once(|| {
        eprintln!(
            "[ablation] allreduce of 33.6 GB over 1024 workers: ring {:.2} s vs tree {:.2} s",
            ring_allreduce_seconds(33.6e9, 1024, &comm),
            tree_allreduce_seconds(33.6e9, 1024, &comm)
        );
    });
    let mut g = c.benchmark_group("ablate_allreduce");
    g.bench_function("ring_model", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for n in 1..=1024u64 {
                total += ring_allreduce_seconds(black_box(33.6e9), n, &comm);
            }
            black_box(total)
        })
    });
    g.bench_function("tree_model", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for n in 1..=1024u64 {
                total += tree_allreduce_seconds(black_box(33.6e9), n, &comm);
            }
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablate_footprint_scheduler,
    ablate_cache_model,
    ablate_symbolic_eval,
    ablate_allreduce
);
criterion_main!(ablations);
