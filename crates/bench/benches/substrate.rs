//! Raw substrate performance: the symbolic engine, graph construction,
//! autodiff, cost evaluation, and footprint simulation — the operations
//! every analysis in this workspace is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cgraph::{build_training_step, footprint, Scheduler};
use modelzoo::{build_word_lm, Domain, ModelConfig, WordLmConfig};
use symath::{Bindings, Expr, Rat};

fn symath_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("symath");
    let h = Expr::sym("bench_h");
    let v = Expr::sym("bench_v");
    let b = Expr::sym("bench_b");
    g.bench_function("polynomial_arith", |bch| {
        bch.iter(|| {
            // The word-LM cost form: q(16h²l + 2hv) per sample, batched.
            let flops = (Expr::int(16) * h.pow(Rat::TWO) * Expr::int(2) + Expr::int(2) * &h * &v)
                * Expr::int(80)
                * &b;
            black_box(flops)
        })
    });
    let expr = (Expr::int(16) * h.pow(Rat::TWO) * Expr::int(2) + Expr::int(2) * &h * &v)
        * Expr::int(80)
        * &b;
    let bind = Bindings::new()
        .with("bench_h", 8192.0)
        .with("bench_v", 793471.0)
        .with("bench_b", 128.0);
    g.bench_function("eval", |bch| {
        bch.iter(|| black_box(expr.eval(&bind).unwrap()))
    });
    g.bench_function("subst", |bch| {
        bch.iter(|| black_box(expr.subst(symath::Symbol::new("bench_h"), &Expr::int(8192))))
    });
    g.finish();
}

fn graph_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph");
    g.sample_size(20).measurement_time(Duration::from_secs(10));
    let cfg = WordLmConfig {
        vocab: 10_000,
        hidden: 512,
        layers: 2,
        seq_len: 80,
        projection: None,
        tied_embedding: true,
    };
    g.bench_function("build_word_lm_forward", |b| {
        b.iter(|| black_box(build_word_lm(&cfg)))
    });
    g.bench_function("autodiff_word_lm", |b| {
        b.iter_batched(
            || build_word_lm(&cfg),
            |mut m| {
                build_training_step(&mut m.graph, m.loss).unwrap();
                black_box(m)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    let model = build_word_lm(&cfg).into_training();
    g.bench_function("stats_symbolic", |b| {
        b.iter(|| black_box(model.graph.stats()))
    });
    let stats = model.graph.stats();
    let bindings = model.bindings_with_batch(128);
    g.bench_function("stats_eval", |b| {
        b.iter(|| black_box(stats.eval(&bindings).unwrap()))
    });
    g.bench_function("validate", |b| {
        b.iter(|| black_box(model.graph.validate().is_ok()))
    });
    g.finish();
}

fn footprint_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("footprint");
    g.sample_size(10).measurement_time(Duration::from_secs(15));
    for (name, domain, params) in [
        ("wordlm_100m", Domain::WordLm, 100_000_000u64),
        ("resnet_50m", Domain::ImageClassification, 50_000_000),
        ("speech_50m", Domain::Speech, 50_000_000),
    ] {
        let model = ModelConfig::default_for(domain)
            .with_target_params(params)
            .build_training();
        let bindings = model.bindings_with_batch(32);
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    footprint(&model.graph, &bindings, Scheduler::GreedyMinPeak)
                        .unwrap()
                        .peak_bytes,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    substrate,
    symath_ops,
    graph_construction,
    footprint_simulation
);
criterion_main!(substrate);
