//! Criterion benches that regenerate the paper's figure series (one bench
//! per figure). Figure 6 is a pure function sweep; 7–10 share the
//! characterization machinery; 11 and 12 exercise the subbatch and
//! data-parallel analyses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use analysis::{fig11_batches, subbatch_analysis, sweep_domain};
use modelzoo::{Domain, ModelConfig};
use parsim::{data_parallel_sweep, CommConfig, WorkerStep};
use roofline::Accelerator;
use scaling::{LearningCurve, SketchCurve};

fn fig6_learning_curve(c: &mut Criterion) {
    let sketch = SketchCurve {
        power_law: LearningCurve::new(12.0, -0.25),
        best_guess_error: 4.0,
        irreducible_error: 0.08,
    };
    c.bench_function("fig6_learning_curve", |b| {
        b.iter(|| {
            let pts: Vec<f64> = (0..400)
                .map(|i| sketch.error_at(10f64.powf(i as f64 / 33.0)))
                .collect();
            black_box(pts)
        })
    });
}

fn sweep_bench(
    c: &mut Criterion,
    name: &str,
    extract: fn(&analysis::CharacterizationPoint) -> f64,
) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10).measurement_time(Duration::from_secs(15));
    for domain in [Domain::WordLm, Domain::ImageClassification] {
        g.bench_function(domain.key(), |b| {
            b.iter(|| {
                let pts = sweep_domain(black_box(domain), 20_000_000, 200_000_000, 4);
                let series: Vec<(f64, f64)> = pts.iter().map(|p| (p.params, extract(p))).collect();
                black_box(series)
            })
        });
    }
    g.finish();
}

fn fig7_flops_scaling(c: &mut Criterion) {
    sweep_bench(c, "fig7_flops_scaling", |p| p.flops_per_sample);
}

fn fig8_bytes_scaling(c: &mut Criterion) {
    sweep_bench(c, "fig8_bytes_scaling", |p| p.bytes_per_step);
}

fn fig9_intensity_scaling(c: &mut Criterion) {
    sweep_bench(c, "fig9_intensity_scaling", |p| p.op_intensity);
}

fn fig10_footprint(c: &mut Criterion) {
    sweep_bench(c, "fig10_footprint", |p| p.footprint_bytes);
}

fn fig11_subbatch(c: &mut Criterion) {
    let accel = Accelerator::v100_like();
    let cfg = ModelConfig::default_for(Domain::WordLm).with_target_params(23_800_000_000);
    let mut g = c.benchmark_group("fig11_subbatch");
    g.sample_size(10).measurement_time(Duration::from_secs(15));
    g.bench_function("wordlm_frontier", |b| {
        b.iter(|| black_box(subbatch_analysis(&cfg, &fig11_batches(), &accel, false)))
    });
    g.finish();
}

fn fig12_data_parallel(c: &mut Criterion) {
    let accel = Accelerator::v100_like();
    let comm = CommConfig::default();
    let worker = WorkerStep {
        compute_seconds: 17.0,
        alg_flops: 123e12,
        gradient_bytes: 33.6e9,
        samples_per_step: 128.0 * 80.0,
    };
    let counts: Vec<u64> = (0..=14).map(|i| 1u64 << i).collect();
    c.bench_function("fig12_data_parallel", |b| {
        b.iter(|| {
            black_box(data_parallel_sweep(
                &worker,
                black_box(&counts),
                77e9,
                &accel,
                &comm,
            ))
        })
    });
}

criterion_group!(
    figures,
    fig6_learning_curve,
    fig7_flops_scaling,
    fig8_bytes_scaling,
    fig9_intensity_scaling,
    fig10_footprint,
    fig11_subbatch,
    fig12_data_parallel
);
criterion_main!(figures);
