//! Criterion benches that regenerate the paper's tables (one bench per
//! table). Each measures the end-to-end cost of producing the table's
//! numbers from scratch; the printed results themselves are produced by the
//! `tables` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use analysis::{fit_trends, frontier_row, sweep_domain_batches, word_lm_case_study};
use modelzoo::Domain;
use parsim::CommConfig;
use roofline::Accelerator;
use scaling::table1;

fn table1_projection(c: &mut Criterion) {
    c.bench_function("table1_projection", |b| {
        b.iter(|| {
            let rows = table1();
            let projections: Vec<_> = rows.iter().map(|r| r.project()).collect();
            black_box(projections)
        })
    });
}

fn table2_asymptotics(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_asymptotics");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    // One representative recurrent domain and the CNN; full Table 2 runs in
    // the `tables` binary.
    for domain in [Domain::WordLm, Domain::ImageClassification] {
        g.bench_function(domain.key(), |b| {
            b.iter(|| {
                let pts =
                    sweep_domain_batches(black_box(domain), 50_000_000, 400_000_000, 3, &[16, 128]);
                black_box(fit_trends(&pts))
            })
        });
    }
    g.finish();
}

fn table3_frontier(c: &mut Criterion) {
    let accel = Accelerator::v100_like();
    let mut g = c.benchmark_group("table3_frontier");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    for domain in Domain::ALL {
        g.bench_function(domain.key(), |b| {
            b.iter(|| black_box(frontier_row(black_box(domain), &accel)))
        });
    }
    g.finish();
}

fn table5_case_study(c: &mut Criterion) {
    let accel = Accelerator::v100_like();
    let comm = CommConfig::default();
    let mut g = c.benchmark_group("table5_case_study");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    g.bench_function("word_lm", |b| {
        b.iter(|| black_box(word_lm_case_study(&accel, &comm)))
    });
    g.finish();
}

criterion_group!(
    tables,
    table1_projection,
    table2_asymptotics,
    table3_frontier,
    table5_case_study
);
criterion_main!(tables);
