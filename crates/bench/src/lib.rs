//! Shared report plumbing for the table/figure regenerators.

#![warn(missing_docs)]

/// A simple fixed-width text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with per-column widths; first column left-aligned.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        if cols == 0 {
            return String::new();
        }
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i].saturating_sub(c.chars().count());
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
                if i + 1 < cells.len() {
                    line.push_str("  ");
                }
            }
            line
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float in engineering style with `digits` significant decimals.
pub fn eng(value: f64, digits: usize) -> String {
    if value == 0.0 {
        return "0".into();
    }
    let magnitude = value.abs();
    if (0.01..10_000.0).contains(&magnitude) {
        format!("{value:.digits$}")
    } else {
        format!("{value:.digits$e}")
    }
}

/// Format a ratio like `971x`.
pub fn times(value: f64) -> String {
    if value >= 100.0 {
        format!("{value:.0}x")
    } else {
        format!("{value:.1}x")
    }
}

/// Print a titled section header.
pub fn section(title: impl std::fmt::Display) {
    println!("\n=== {title} ===\n");
}

/// Parse a `--table N` / `--figure N` style CLI argument; `Ok(None)` = all.
///
/// Delegates to the structured flag parser shared with the `serve` binary
/// ([`serve::flags::Flags`]). A present flag with a missing, flag-like, or
/// non-numeric value is reported as an `Err` so the binaries can print
/// usage instead of panicking.
pub fn parse_selector(flag: &str) -> Result<Option<u32>, String> {
    serve::flags::Flags::from_env().get(flag)
}

/// Reject unknown `--flags` (typo guard shared with the `serve` binary).
pub fn check_known_flags(known: &[&str]) -> Result<(), String> {
    serve::flags::Flags::from_env().check_known(known)
}

/// Parse a `--trace PATH` argument, falling back to the `FRONTIER_TRACE`
/// environment variable. `None` means tracing stays in memory only.
pub fn parse_trace_path() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .or_else(|| obs::trace_path_from_env().map(std::path::PathBuf::from))
}

/// Flush the global recorder: write the JSONL trace to `path` and a
/// Chrome-trace JSON array to `<path>.chrome.json`. Prints a short note so
/// the user knows where the trace landed.
pub fn export_trace(path: &std::path::Path) -> std::io::Result<()> {
    let rec = obs::recorder();
    rec.write_jsonl(path)?;
    let chrome = path.with_extension(match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{ext}.chrome.json"),
        None => "chrome.json".to_string(),
    });
    rec.write_chrome_trace(&chrome)?;
    eprintln!(
        "trace: {} events -> {} (+ {})",
        rec.len(),
        path.display(),
        chrome.display()
    );
    Ok(())
}

/// Export the trace if the CLI/env selected a path; report failures to
/// stderr without aborting the run.
pub fn finish_trace() {
    if let Some(path) = parse_trace_path() {
        if let Err(e) = export_trace(&path) {
            eprintln!("trace: failed to write {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("22222"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn zero_column_table_renders_empty() {
        let t = Table::new(Vec::<String>::new());
        assert_eq!(t.render(), "");
    }

    #[test]
    fn single_column_table_renders() {
        let mut t = Table::new(["only"]);
        t.row(["x"]);
        let s = t.render();
        assert!(s.starts_with("only\n----\n"));
    }

    #[test]
    fn selector_parses_value_and_absence() {
        let flags = serve::flags::Flags::from_args(["--table", "3"]);
        assert_eq!(flags.get::<u32>("--table"), Ok(Some(3)));
        assert_eq!(flags.get::<u32>("--figure"), Ok(None));
    }

    #[test]
    fn selector_rejects_garbage_without_panicking() {
        let flags = serve::flags::Flags::from_args(["--table", "two"]);
        let err = flags.get::<u32>("--table").unwrap_err();
        assert!(err.contains("--table"), "{err}");
        assert!(err.contains("two"), "{err}");
        let flags = serve::flags::Flags::from_args(["--table"]);
        assert!(flags.get::<u32>("--table").is_err());
    }

    #[test]
    fn eng_formats_ranges() {
        assert_eq!(eng(0.0, 2), "0");
        assert_eq!(eng(3.25159, 2), "3.25");
        assert_eq!(eng(1.5e13, 2), "1.50e13");
    }

    #[test]
    fn times_formats() {
        assert_eq!(times(971.2), "971x");
        assert_eq!(times(6.6), "6.6x");
    }
}
