//! `inferbench` — exactness and timing gate for the inference subsystem.
//!
//! ```text
//! inferbench [--reps N] [--summary PATH] [--min-speedup X]
//! ```
//!
//! Two arms, each gated on bit-identity before anything is timed:
//!
//! * **characterization** — the symbolic [`analysis::InferEngine`] sweep
//!   over a (decode batch, context) grid versus [`analysis::characterize_infer`],
//!   the brute-force oracle that rebuilds the concrete prefill and decode
//!   graphs at every point. Every [`analysis::InferPoint`] must compare `==`
//!   (every `f64` bit-identical). Timings then separate the **cold** path
//!   (a fresh engine: family build + instance binds) from the **warm** path
//!   (memoized closed forms), reporting p50 per grid pass and per-point
//!   throughput.
//! * **SLO plan search** — [`parsim::infer_search`] versus
//!   [`parsim::enumerate_infer_naive`] over registry-wide spaces at several
//!   SLO tightness levels, with the Pareto frontier and argmin recomputed
//!   from the naive set through the library's reference operators.
//!
//! Exits nonzero on any mismatch or when the warm symbolic sweep's speedup
//! over the brute-force rebuilds falls below `--min-speedup` (default 1.5).
//! `--summary PATH` writes the numbers as JSON (see `BENCH_infer.json`).

use std::process::ExitCode;
use std::time::Instant;

use analysis::{
    characterize_infer, infer_search_space, InferConfig, InferEngine, InferPlanRequest,
};
use parsim::{
    enumerate_infer_naive, infer_argmin_point, infer_pareto_frontier_reference, infer_search,
    SloTarget,
};
use serve::flags::Flags;
use serve::json::Json;

const USAGE: &str = "usage: inferbench [--reps N] [--summary PATH] [--min-speedup X]
  --reps         grid/search passes per timing arm (default 50)
  --summary      write a JSON summary to this path
  --min-speedup  fail if warm-symbolic/brute falls below this (default 1.5)";

/// Prompt length shared by every characterization point (a realistic
/// prefill well clear of the decode-like one-token degenerate case).
const PROMPT: u64 = 512;

/// Decode batch ladder × context ladder for the characterization grid.
const BATCHES: [u64; 5] = [1, 4, 16, 64, 256];
const CONTEXTS: [u64; 3] = [512, 1024, 4096];

/// SLO tightness levels swept by the search arm: a tight interactive
/// target (the latency floor prunes hardest), the case study's default,
/// and a lax batch-offline target.
const SLOS: [(f64, f64, f64); 3] = [
    (0.010, 0.100, 50_000.0),
    (0.050, 0.500, 20_000.0),
    (0.500, 5.000, 1_000.0),
];

fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Time `reps` calls of `f`, returning per-call microsecond samples sorted
/// ascending.
fn sample_us<T>(reps: u32, mut f: impl FnMut() -> T) -> Vec<u64> {
    let mut samples = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed().as_micros() as u64);
    }
    samples.sort_unstable();
    samples
}

struct CharacterizeRun {
    points: usize,
    identical: bool,
    cold_p50_us: u64,
    warm_p50_us: u64,
    brute_p50_us: u64,
    warm_points_per_s: f64,
    speedup_warm_vs_brute: f64,
}

fn run_characterize(reps: u32) -> CharacterizeRun {
    let cfg = InferConfig::default();
    let grid: Vec<(u64, u64)> = BATCHES
        .iter()
        .flat_map(|&b| CONTEXTS.iter().map(move |&c| (b, c)))
        .collect();

    let brute = |grid: &[(u64, u64)]| {
        grid.iter()
            .map(|&(b, c)| characterize_infer(&cfg, b, PROMPT, c))
            .collect::<Vec<_>>()
    };

    // Untimed equivalence gate: symbolic sweep == brute rebuilds, `==` on
    // every point (and a fresh engine agrees with the warmed global one).
    let warm_points = InferEngine::global().characterize_grid(&cfg, PROMPT, &grid);
    let cold_points = InferEngine::new().characterize_grid(&cfg, PROMPT, &grid);
    let brute_points = brute(&grid);
    let identical = warm_points == brute_points && cold_points == brute_points;
    if !identical {
        eprintln!("inferbench: symbolic characterization diverges from brute-force rebuilds");
    }

    let cold = sample_us(reps, || {
        InferEngine::new().characterize_grid(&cfg, PROMPT, &grid)
    });
    let warm = sample_us(reps, || {
        InferEngine::global().characterize_grid(&cfg, PROMPT, &grid)
    });
    let brute_samples = sample_us(reps, || brute(&grid));

    let warm_p50_us = quantile_us(&warm, 0.5);
    let brute_p50_us = quantile_us(&brute_samples, 0.5);
    CharacterizeRun {
        points: grid.len(),
        identical,
        cold_p50_us: quantile_us(&cold, 0.5),
        warm_p50_us,
        brute_p50_us,
        warm_points_per_s: if warm_p50_us > 0 {
            grid.len() as f64 / (warm_p50_us as f64 / 1e6)
        } else {
            f64::INFINITY
        },
        speedup_warm_vs_brute: if warm_p50_us > 0 {
            brute_p50_us as f64 / warm_p50_us as f64
        } else {
            f64::INFINITY
        },
    }
}

struct SearchRun {
    tpot_ms: f64,
    ttft_ms: f64,
    target_tokens_per_s: f64,
    considered: u64,
    evaluated: u64,
    pruned: u64,
    feasible: usize,
    naive_ms: f64,
    pruned_ms: f64,
    identical: bool,
}

fn run_search(tpot_s: f64, ttft_s: f64, target_tokens_per_s: f64, reps: u32) -> SearchRun {
    let req = InferPlanRequest::registry_default(
        InferConfig::default(),
        PROMPT,
        1024,
        SloTarget {
            p99_token_seconds: tpot_s,
            ttft_seconds: ttft_s,
        },
        target_tokens_per_s,
        1 << 14,
    );
    let space = infer_search_space(&req);

    // Brute arm: the full deliverable — feasible set, frontier, argmin —
    // through the reference operators.
    let brute = |space: &parsim::InferSearchSpace| {
        let feasible = enumerate_infer_naive(space);
        let pareto = infer_pareto_frontier_reference(&feasible);
        let best = infer_argmin_point(&feasible);
        (feasible, pareto, best)
    };

    // One untimed pass each for the equivalence gate.
    let result = infer_search(&space);
    let (feasible, pareto, best) = brute(&space);
    let identical = result.feasible == feasible && result.pareto == pareto && result.best == best;
    if !identical {
        eprintln!(
            "inferbench: tpot {} ms: pruned SLO search diverges from naive enumeration",
            tpot_s * 1e3
        );
    }

    let naive_start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(brute(std::hint::black_box(&space)));
    }
    let naive_ms = naive_start.elapsed().as_secs_f64() * 1e3;
    let pruned_start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(infer_search(std::hint::black_box(&space)));
    }
    let pruned_ms = pruned_start.elapsed().as_secs_f64() * 1e3;

    let s = &result.stats;
    SearchRun {
        tpot_ms: tpot_s * 1e3,
        ttft_ms: ttft_s * 1e3,
        target_tokens_per_s,
        considered: s.considered,
        evaluated: s.evaluated,
        pruned: s.pruned_memory + s.pruned_latency + s.pruned_over_cap,
        feasible: result.feasible.len(),
        naive_ms,
        pruned_ms,
        identical,
    }
}

fn main() -> ExitCode {
    let flags = Flags::from_env();
    if flags.switch("--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let parsed = (|| -> Result<(u32, Option<String>, f64), String> {
        flags.check_known(&["--reps", "--summary", "--min-speedup", "--help"])?;
        Ok((
            flags.get_or("--reps", 50u32)?,
            flags.get::<String>("--summary")?,
            flags.get_or("--min-speedup", 1.5f64)?,
        ))
    })();
    let (reps, summary_path, min_speedup) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("inferbench: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    println!(
        "inferbench: {}x{} characterization grid + registry SLO search at {} tightness levels, {reps} reps",
        BATCHES.len(),
        CONTEXTS.len(),
        SLOS.len()
    );

    let ch = run_characterize(reps);
    let mut table = bench::Table::new(["arm", "p50 us / pass", "points/s", "speedup", "identical"]);
    table.row([
        "brute rebuild".to_string(),
        ch.brute_p50_us.to_string(),
        format!(
            "{:.0}",
            ch.points as f64 / (ch.brute_p50_us.max(1) as f64 / 1e6)
        ),
        "1x".to_string(),
        ch.identical.to_string(),
    ]);
    table.row([
        "symbolic cold".to_string(),
        ch.cold_p50_us.to_string(),
        format!(
            "{:.0}",
            ch.points as f64 / (ch.cold_p50_us.max(1) as f64 / 1e6)
        ),
        bench::times(ch.brute_p50_us as f64 / ch.cold_p50_us.max(1) as f64),
        ch.identical.to_string(),
    ]);
    table.row([
        "symbolic warm".to_string(),
        ch.warm_p50_us.to_string(),
        format!("{:.0}", ch.warm_points_per_s),
        bench::times(ch.speedup_warm_vs_brute),
        ch.identical.to_string(),
    ]);
    println!("\ncharacterization ({} grid points per pass)", ch.points);
    println!("{}", table.render());

    let searches: Vec<SearchRun> = SLOS
        .iter()
        .map(|&(tpot, ttft, target)| run_search(tpot, ttft, target, reps))
        .collect();
    let mut table = bench::Table::new([
        "tpot ms",
        "ttft ms",
        "tok/s",
        "considered",
        "evaluated",
        "pruned",
        "feasible",
        "naive ms",
        "pruned ms",
        "speedup",
        "identical",
    ]);
    for r in &searches {
        table.row([
            format!("{}", r.tpot_ms),
            format!("{}", r.ttft_ms),
            format!("{}", r.target_tokens_per_s),
            r.considered.to_string(),
            r.evaluated.to_string(),
            r.pruned.to_string(),
            r.feasible.to_string(),
            format!("{:.2}", r.naive_ms),
            format!("{:.2}", r.pruned_ms),
            bench::times(r.naive_ms / r.pruned_ms),
            r.identical.to_string(),
        ]);
    }
    println!("SLO plan search (registry x batch ladder x pow2 replicas)");
    println!("{}", table.render());

    let naive_total: f64 = searches.iter().map(|r| r.naive_ms).sum();
    let pruned_total: f64 = searches.iter().map(|r| r.pruned_ms).sum();
    let search_speedup = naive_total / pruned_total;
    let all_identical = ch.identical && searches.iter().all(|r| r.identical);
    println!(
        "total: warm symbolic {} vs brute rebuilds; pruned search {} vs naive",
        bench::times(ch.speedup_warm_vs_brute),
        bench::times(search_speedup)
    );

    if let Some(path) = summary_path {
        let spaces: Vec<Json> = searches
            .iter()
            .map(|r| {
                Json::obj()
                    .set("tpot_ms", r.tpot_ms)
                    .set("ttft_ms", r.ttft_ms)
                    .set("target_tokens_per_s", r.target_tokens_per_s)
                    .set("considered", r.considered)
                    .set("evaluated", r.evaluated)
                    .set("pruned", r.pruned)
                    .set("feasible", r.feasible as u64)
                    .set("naive_ms", r.naive_ms)
                    .set("pruned_ms", r.pruned_ms)
                    .set("speedup_vs_naive", r.naive_ms / r.pruned_ms)
                    .set("bit_identical", r.identical)
            })
            .collect();
        let doc = Json::obj()
            .set("reps", reps)
            .set(
                "characterize",
                Json::obj()
                    .set("grid_points", ch.points as u64)
                    .set("prompt", PROMPT)
                    .set("cold_p50_us", ch.cold_p50_us)
                    .set("warm_p50_us", ch.warm_p50_us)
                    .set("brute_p50_us", ch.brute_p50_us)
                    .set("warm_points_per_s", ch.warm_points_per_s)
                    .set("speedup_warm_vs_brute", ch.speedup_warm_vs_brute)
                    .set("bit_identical", ch.identical),
            )
            .set(
                "search",
                Json::obj()
                    .set("naive_ms", naive_total)
                    .set("pruned_ms", pruned_total)
                    .set("speedup_pruned_vs_naive", search_speedup)
                    .set("spaces", spaces),
            )
            .set("min_speedup_required", min_speedup)
            .set("all_bit_identical", all_identical);
        if let Err(e) = std::fs::write(&path, doc.render() + "\n") {
            eprintln!("inferbench: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("summary -> {path}");
    }

    if !all_identical {
        eprintln!("inferbench: FAIL — symbolic/pruned paths diverge from the brute oracles");
        return ExitCode::FAILURE;
    }
    if ch.speedup_warm_vs_brute < min_speedup {
        eprintln!(
            "inferbench: FAIL — warm symbolic speedup {:.2}x below required {min_speedup}x",
            ch.speedup_warm_vs_brute
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
