//! Regenerate the paper's Tables 1–5.
//!
//! ```sh
//! cargo run --release -p bench --bin tables             # all tables
//! cargo run --release -p bench --bin tables -- --table 3
//! ```

use analysis::{fit_domain_trends, table3, word_lm_case_study};
use bench::{check_known_flags, eng, finish_trace, parse_selector, section, times, Table};
use modelzoo::{Domain, ModelConfig};
use parsim::CommConfig;
use roofline::Accelerator;
use scaling::table1 as table1_rows;

/// Print a TFprof-style per-op breakdown for one workload's training step
/// and emit the top ops into the trace recorder.
fn profile_workload(domain: Domain) {
    let cfg = ModelConfig::default_for(domain);
    let model = cfg.build_training();
    let bindings = model.bindings_with_batch(domain.default_subbatch());
    let prof = model.graph.profile(&bindings).expect("all symbols bound");
    prof.check_consistency(1e-6)
        .expect("per-op attribution sums to graph totals");
    println!(
        "-- {} per-op profile ({} ops, subbatch {}) --",
        domain.label(),
        prof.ops.len(),
        domain.default_subbatch()
    );
    println!("{}", prof.render_top(8));
    println!("{}", prof.render_groups("by phase", &prof.by_phase()));
    let rec = obs::recorder();
    for op in prof.top_by_flops(8) {
        rec.instant(
            "profile.op",
            vec![
                ("workload".into(), obs::JsonValue::from(domain.key())),
                ("op".into(), obs::JsonValue::from(op.name.as_str())),
                ("kind".into(), obs::JsonValue::from(op.kind)),
                ("flops".into(), obs::JsonValue::from(op.flops)),
                ("bytes".into(), obs::JsonValue::from(op.bytes())),
            ],
        );
    }
}

fn table1() {
    section("Table 1: Learning Curve and Model Size Scaling Relationships");
    let mut t = Table::new([
        "Domain (model)",
        "Current SOTA",
        "Desired SOTA",
        "alpha",
        "beta_g",
        "sigma",
        "beta_p",
        "Data scale",
        "Model scale",
    ]);
    for row in table1_rows() {
        let p = row.project();
        t.row([
            row.domain.label().to_string(),
            format!("{} {}", row.current_sota, row.metric),
            format!("{}", row.desired_sota),
            format!("{}", row.learning.alpha),
            format!("{}", row.learning.beta_g),
            format!("{:e}", row.model.sigma),
            format!("{}", row.model.beta_p),
            times(p.data_scale),
            times(p.model_scale),
        ]);
    }
    println!("{}", t.render());
    println!("paper: data 33-971x, model 6.6-456x (speech computes to ~19x from the");
    println!("published constants; all other rows match — see EXPERIMENTS.md)");
}

fn table2() {
    section("Table 2: Asymptotic Application-Level Compute Requirements (fitted)");
    println!("fitting per-domain trends from model-size x subbatch sweeps ...\n");
    let mut t = Table::new([
        "Domain (model)",
        "FLOPs/param (gamma)",
        "bytes/param (lambda)",
        "bytes/(b*sqrt(p)) (mu)",
        "footprint B/param (delta)",
    ]);
    let paper = [
        (Domain::WordLm, 481.0, 1755.0, 30784.0, 11.94),
        (Domain::CharLm, 900.0, 3510.0, 102980.0, 12.47),
        (Domain::Nmt, 149.0, 533.0, 22653.0, 10.32),
        (Domain::Speech, 775.0, 3100.0, 162750.0, 32.94),
        (Domain::ImageClassification, 1111.0, 66.7, 268862.0, 42.57),
    ];
    for (domain, g_p, l_p, m_p, d_p) in paper {
        // Fit in the large-model regime where the asymptotic forms hold.
        let (lo, hi) = match domain {
            Domain::ImageClassification => (100_000_000, 800_000_000),
            _ => (300_000_000, 3_000_000_000),
        };
        let tr = fit_domain_trends(domain, lo, hi, 3, &[16, 64, 128]);
        t.row([
            domain.label().to_string(),
            format!("{:.0} (paper {g_p:.0})", tr.gamma),
            format!("{:.0} (paper {l_p:.0})", tr.lambda),
            format!("{:.0} (paper {m_p:.0})", tr.mu),
            format!("{:.1} (paper {d_p})", tr.delta),
        ]);
    }
    println!("{}", t.render());
    for (domain, ..) in paper {
        profile_workload(domain);
    }
}

fn table3_print() {
    section("Table 3: Application-Level Training Requirements at Target Accuracy");
    let accel = Accelerator::v100_like();
    let rows = table3(&accel);
    let mut t = Table::new([
        "Domain (model)",
        "Data",
        "Params",
        "Subbatch",
        "TFLOPs/step",
        "TB/step",
        "MinMem GB",
        "Step (s)",
        "Epoch (days)",
    ]);
    for r in rows {
        t.row([
            r.domain_label.to_string(),
            eng(r.data_samples, 1),
            eng(r.built_params, 2),
            format!("{}", r.subbatch),
            format!("{:.0}", r.tflops_per_step),
            format!("{:.1}", r.mem_tb_per_step),
            format!("{:.0}", r.min_mem_gb),
            format!("{:.1}", r.step.seconds),
            eng(r.epoch_days, 1),
        ]);
    }
    println!("{}", t.render());
    println!("paper rows: wordlm 1444 TF / 41.5 TB / 272 GB / 115 s / 31k days;");
    println!("charlm 12618/488/1703/1007/3.5M; nmt 499/18.4/185/39.8/16k;");
    println!("speech 72/2.8/30/5.8/93; resnet 28/0.4/34/2.3/84.");
    println!("note: epoch accounting counts b*q tokens per step (see EXPERIMENTS.md).");
}

fn table4() {
    section("Table 4: Target Accelerator Configuration");
    let a = Accelerator::v100_like();
    let mut t = Table::new(["Component", "Configuration"]);
    t.row([
        "Compute throughput, 32-bit",
        &format!("{:.2} TFLOP/s", a.peak_flops / 1e12),
    ]);
    t.row([
        "On-chip cache",
        &format!("{:.0} MB", a.cache_bytes / 1048576.0),
    ]);
    t.row([
        "Memory bandwidth",
        &format!("{:.0} GB/s", a.peak_mem_bw / 1e9),
    ]);
    t.row([
        "Memory capacity (off-chip)",
        &format!("{:.0} GB", a.mem_capacity / 1073741824.0),
    ]);
    t.row([
        "Inter-device bandwidth",
        &format!("{:.0} GB/s", a.interconnect_bw / 1e9),
    ]);
    t.row(["Ridge point", &format!("{:.1} FLOP/B", a.ridge_point())]);
    t.row([
        "Ridge point (achievable)",
        &format!("{:.1} FLOP/B", a.achievable_ridge_point()),
    ]);
    println!("{}", t.render());
}

fn table5() {
    section("Table 5: Step-by-Step Word LM Parallelization Case Study");
    let study = word_lm_case_study(&Accelerator::v100_like(), &CommConfig::default());
    println!(
        "LSTM-p: v={} h={} proj={:?} -> {:.2e} params; dataset {:.1e} words\n",
        study.config.vocab,
        study.config.hidden,
        study.config.projection,
        study.params,
        study.dataset_words
    );
    let mut t = Table::new([
        "Optimization stage",
        "Accels",
        "Batch",
        "Mem/accel GB",
        "Days/epoch",
        "FLOP util",
    ]);
    for r in &study.rows {
        t.row([
            r.stage.to_string(),
            format!("{}", r.accelerators),
            format!("{}", r.global_batch),
            format!("{:.1}", r.mem_per_accel_gb),
            format!("{:.1}", r.days_per_epoch),
            format!("{:.1}%", 100.0 * r.flop_utilization),
        ]);
    }
    println!("{}", t.render());
    println!("paper stages: 2707 d @80% -> 4671 d @46% -> 6.2 d @34% (1024) ->");
    println!("11.1 d @38% (512) -> 7.2 d @14.5% (2048, {{60,17,17,32}} GB) ->");
    println!("7.2 d @14.5% ({{32,31,31,32}} GB).");
}

fn main() {
    let usage = |e: String| -> ! {
        eprintln!("{e}");
        eprintln!("usage: tables [--table N] [--trace PATH]");
        std::process::exit(2);
    };
    if let Err(e) = check_known_flags(&["--table", "--trace"]) {
        usage(e);
    }
    let selector = parse_selector("--table").unwrap_or_else(|e| usage(e));
    match selector {
        Some(1) => table1(),
        Some(2) => table2(),
        Some(3) => table3_print(),
        Some(4) => table4(),
        Some(5) => table5(),
        Some(n) => {
            eprintln!("unknown table {n}; the paper has tables 1-5");
            std::process::exit(2);
        }
        None => {
            table1();
            table2();
            table3_print();
            table4();
            table5();
        }
    }
    finish_trace();
}
