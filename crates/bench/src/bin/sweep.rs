//! `sweep` — timing gate for the symbolic sweep engine.
//!
//! ```text
//! sweep [--points N] [--summary PATH] [--min-speedup X] [--min-batched-speedup X]
//! ```
//!
//! Runs the full Figure 7–10 characterization grid (all five domains, a
//! log-spaced model-size sweep at each domain's default subbatch) four
//! ways and checks that each produces **bit-identical** points:
//!
//! * **brute** — per point: rebuild the training graph, per-op unfolded
//!   stats walk, reference footprint simulation (the pre-optimization
//!   pipeline);
//! * **folded** — per point: rebuild the graph, but fold repeated cost
//!   classes in `stats()` and use the incremental greedy scheduler
//!   (today's [`analysis::characterize`]);
//! * **symbolic** — one width-symbolic family build per domain via a cold
//!   [`analysis::FamilyEngine`], then exact substitution per point with
//!   per-point stack-VM evaluation;
//! * **batched** — re-price the whole grid on the now-warm engine through
//!   [`FamilyEngine::characterize_many`]: closed forms evaluated by the
//!   batched register VM, footprints priced against the cached family
//!   plans. This is the steady state of a server answering repeated
//!   sweeps; best of three repetitions, since at this scale single-core
//!   scheduling noise rivals the pass itself.
//!
//! All passes run single-threaded so the timings compare algorithms,
//! not rayon scheduling. Exits nonzero on any equivalence mismatch, when
//! symbolic speedup over brute falls below `--min-speedup` (default 10), or
//! when the batched pass's speedup over the per-point symbolic pass falls
//! below `--min-batched-speedup` (default 2).
//! `--summary PATH` writes the numbers as JSON (see `BENCH_sweep.json`).

use std::process::ExitCode;
use std::time::Instant;

use analysis::{characterize, CharacterizationPoint, FamilyEngine};
use cgraph::{footprint_reference, Scheduler};
use modelzoo::{Domain, ModelConfig};
use serve::flags::Flags;
use serve::json::Json;

const USAGE: &str =
    "usage: sweep [--points N] [--summary PATH] [--min-speedup X] [--min-batched-speedup X]
  --points               sweep points per domain (default 9)
  --summary              write a JSON summary to this path
  --min-speedup          fail if symbolic/brute falls below this (default 10)
  --min-batched-speedup  fail if batched/symbolic falls below this (default 2)";

/// The Figure 7–10 model-size range swept per domain.
const LO_PARAMS: u64 = 1_000_000;
const HI_PARAMS: u64 = 1_000_000_000;

/// Brute-force baseline: the per-point pipeline before subgraph folding and
/// the incremental scheduler — full rebuild, unfolded per-op stats walk,
/// reference footprint simulation.
fn characterize_brute(cfg: &ModelConfig, subbatch: u64) -> CharacterizationPoint {
    let model = cfg.build_training();
    let bindings = model.bindings_with_batch(subbatch);
    let n = model
        .graph
        .stats_unfolded()
        .eval(&bindings)
        .expect("all symbols bound");
    let fp = footprint_reference(&model.graph, &bindings, Scheduler::Best).expect("bound");
    CharacterizationPoint {
        params: n.params,
        subbatch,
        flops_per_step: n.flops,
        flops_per_sample: n.flops / subbatch as f64,
        bytes_per_step: n.bytes,
        op_intensity: n.flops / n.bytes,
        footprint_bytes: fp.peak_bytes as f64,
        seq_len: model.seq_len,
    }
}

struct DomainRun {
    domain: Domain,
    points: usize,
    brute_ms: f64,
    folded_ms: f64,
    symbolic_ms: f64,
    batched_ms: f64,
    identical: bool,
}

fn time_pass<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

fn run_domain(domain: Domain, n_points: usize) -> DomainRun {
    let subbatch = domain.default_subbatch();
    let configs = modelzoo::sweep_configs(domain, LO_PARAMS, HI_PARAMS, n_points);

    let (brute, brute_ms) = time_pass(|| {
        configs
            .iter()
            .map(|cfg| characterize_brute(cfg, subbatch))
            .collect::<Vec<_>>()
    });
    let (folded, folded_ms) = time_pass(|| {
        configs
            .iter()
            .map(|cfg| characterize(cfg, subbatch))
            .collect::<Vec<_>>()
    });
    // Cold engine: the timing includes the one-time family build.
    let engine = FamilyEngine::new();
    let (symbolic, symbolic_ms) = time_pass(|| {
        configs
            .iter()
            .map(|cfg| engine.characterize(cfg, subbatch))
            .collect::<Vec<_>>()
    });
    // Warm batched re-price: the families and instances are cached now, so
    // this times the batched register VM plus the plan-driven footprint
    // simulation. Best of three repetitions.
    let jobs: Vec<(ModelConfig, u64)> = configs.iter().map(|c| (*c, subbatch)).collect();
    let mut batched = Vec::new();
    let mut batched_ms = f64::INFINITY;
    for _ in 0..3 {
        let (pts, ms) = time_pass(|| engine.characterize_many(&jobs));
        batched_ms = batched_ms.min(ms);
        batched = pts;
    }

    let identical = brute == folded && folded == symbolic && symbolic == batched;
    if !identical {
        for (i, (((b, f), s), v)) in brute
            .iter()
            .zip(&folded)
            .zip(&symbolic)
            .zip(&batched)
            .enumerate()
        {
            if b != f || f != s || s != v {
                eprintln!(
                    "sweep: {} point {i} diverges:\n  brute    {b:?}\n  folded   {f:?}\n  symbolic {s:?}\n  batched  {v:?}",
                    domain.key()
                );
            }
        }
    }
    DomainRun {
        domain,
        points: configs.len(),
        brute_ms,
        folded_ms,
        symbolic_ms,
        batched_ms,
        identical,
    }
}

fn main() -> ExitCode {
    let flags = Flags::from_env();
    if flags.switch("--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let parsed = (|| -> Result<(usize, Option<String>, f64, f64), String> {
        flags.check_known(&[
            "--points",
            "--summary",
            "--min-speedup",
            "--min-batched-speedup",
            "--help",
        ])?;
        Ok((
            flags.get_or("--points", 9usize)?,
            flags.get::<String>("--summary")?,
            flags.get_or("--min-speedup", 10.0f64)?,
            flags.get_or("--min-batched-speedup", 2.0f64)?,
        ))
    })();
    let (n_points, summary_path, min_speedup, min_batched) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sweep: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    println!(
        "sweep: Figure 7-10 grid, {n_points} points/domain over {LO_PARAMS}..{HI_PARAMS} params"
    );
    let runs: Vec<DomainRun> = Domain::ALL
        .into_iter()
        .map(|d| run_domain(d, n_points))
        .collect();

    let mut table = bench::Table::new([
        "domain",
        "points",
        "brute ms",
        "folded ms",
        "symbolic ms",
        "batched ms",
        "speedup",
        "identical",
    ]);
    for r in &runs {
        table.row([
            r.domain.key().to_string(),
            r.points.to_string(),
            format!("{:.1}", r.brute_ms),
            format!("{:.1}", r.folded_ms),
            format!("{:.1}", r.symbolic_ms),
            format!("{:.1}", r.batched_ms),
            bench::times(r.brute_ms / r.symbolic_ms),
            r.identical.to_string(),
        ]);
    }
    println!("\n{}", table.render());

    let brute_total: f64 = runs.iter().map(|r| r.brute_ms).sum();
    let folded_total: f64 = runs.iter().map(|r| r.folded_ms).sum();
    let symbolic_total: f64 = runs.iter().map(|r| r.symbolic_ms).sum();
    let batched_total: f64 = runs.iter().map(|r| r.batched_ms).sum();
    let speedup = brute_total / symbolic_total;
    let batched_speedup = symbolic_total / batched_total;
    let all_identical = runs.iter().all(|r| r.identical);
    println!(
        "total: brute {brute_total:.1} ms  folded {folded_total:.1} ms  \
         symbolic {symbolic_total:.1} ms  batched {batched_total:.1} ms  \
         speedup {}  batched-vs-symbolic {}",
        bench::times(speedup),
        bench::times(batched_speedup)
    );

    if let Some(path) = summary_path {
        let domains: Vec<Json> = runs
            .iter()
            .map(|r| {
                Json::obj()
                    .set("domain", r.domain.key())
                    .set("points", r.points)
                    .set("brute_ms", r.brute_ms)
                    .set("folded_ms", r.folded_ms)
                    .set("symbolic_ms", r.symbolic_ms)
                    .set("batched_ms", r.batched_ms)
                    .set("speedup_vs_brute", r.brute_ms / r.symbolic_ms)
                    .set("speedup_batched_vs_symbolic", r.symbolic_ms / r.batched_ms)
                    .set("bit_identical", r.identical)
            })
            .collect();
        let doc = Json::obj()
            .set("points_per_domain", n_points)
            .set("lo_params", LO_PARAMS)
            .set("hi_params", HI_PARAMS)
            .set("brute_ms", brute_total)
            .set("folded_ms", folded_total)
            .set("symbolic_ms", symbolic_total)
            .set("symbolic_batched_ms", batched_total)
            .set("speedup_symbolic_vs_brute", speedup)
            .set("speedup_folded_vs_brute", brute_total / folded_total)
            .set("speedup_batched_vs_symbolic", batched_speedup)
            .set("min_speedup_required", min_speedup)
            .set("min_batched_speedup_required", min_batched)
            .set("all_bit_identical", all_identical)
            .set("domains", domains);
        if let Err(e) = std::fs::write(&path, doc.render() + "\n") {
            eprintln!("sweep: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("summary -> {path}");
    }

    if !all_identical {
        eprintln!("sweep: FAIL — fast paths diverge from brute force");
        return ExitCode::FAILURE;
    }
    if speedup < min_speedup {
        eprintln!("sweep: FAIL — symbolic speedup {speedup:.1}x below required {min_speedup}x");
        return ExitCode::FAILURE;
    }
    if batched_speedup < min_batched {
        eprintln!(
            "sweep: FAIL — batched speedup {batched_speedup:.1}x over per-point symbolic \
             below required {min_batched}x"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
