//! Regenerate the paper's Figures 6–12 as data series.
//!
//! ```sh
//! cargo run --release -p bench --bin figures              # all figures
//! cargo run --release -p bench --bin figures -- --figure 9
//! ```

use analysis::{fig11_batches, subbatch_analysis, sweep_domain};
use bench::{check_known_flags, eng, finish_trace, parse_selector, section, Table};
use modelzoo::{Domain, ModelConfig};
use parsim::{data_parallel_sweep, CommConfig, WorkerStep};
use roofline::{per_op_step_time, Accelerator, CacheModel};
use scaling::{scaling_for, LearningCurve, SketchCurve};

const SWEEP_LO: u64 = 10_000_000;
const SWEEP_HI: u64 = 600_000_000;
const SWEEP_N: usize = 6;

fn fig6() {
    section("Figure 6: Sketch of power-law learning curves");
    let sketch = SketchCurve {
        power_law: LearningCurve::new(12.0, -0.25),
        best_guess_error: 4.0,
        irreducible_error: 0.08,
    };
    println!(
        "small-data boundary: {:.1e} samples; irreducible boundary: {:.1e} samples\n",
        sketch.small_data_boundary(),
        sketch.irreducible_boundary()
    );
    let mut t = Table::new(["samples", "generalization error", "region"]);
    for exp in 0..=12 {
        let m = 10f64.powi(exp);
        let e = sketch.error_at(m);
        let region = if m < sketch.small_data_boundary() {
            "small data"
        } else if m < sketch.irreducible_boundary() {
            "power-law"
        } else {
            "irreducible"
        };
        t.row([format!("1e{exp}"), format!("{e:.4}"), region.to_string()]);
    }
    println!("{}", t.render());
}

fn domain_sweep_figure(
    title: &str,
    value: fn(&analysis::CharacterizationPoint) -> f64,
    unit: &str,
) {
    section(title);
    println!("model-size sweep per domain at the paper's profiling subbatch\n");
    let mut t = Table::new(["domain", "params", unit]);
    for domain in Domain::ALL {
        let points = sweep_domain(domain, SWEEP_LO, SWEEP_HI, SWEEP_N);
        for p in &points {
            t.row([domain.key().to_string(), eng(p.params, 2), eng(value(p), 3)]);
        }
    }
    println!("{}", t.render());
}

fn fig7() {
    domain_sweep_figure(
        "Figure 7: per-sample FLOPs vs model size",
        |p| p.flops_per_sample / 1e9,
        "GFLOPs/step/sample",
    );
}

fn fig8() {
    domain_sweep_figure(
        "Figure 8: algorithmic GB accessed per step vs model size",
        |p| p.bytes_per_step / 1e9,
        "GB/step",
    );
}

fn fig9() {
    domain_sweep_figure(
        "Figure 9: operational intensity vs model size",
        |p| p.op_intensity,
        "FLOP/B",
    );
}

fn fig10() {
    domain_sweep_figure(
        "Figure 10: minimal memory footprint vs model size",
        |p| p.footprint_bytes / 1e9,
        "footprint GB",
    );
}

fn fig11() {
    section("Figure 11: subbatch size vs op intensity and step time per sample");
    let accel = Accelerator::v100_like();
    let projection = scaling_for(Domain::WordLm).project();
    let cfg = ModelConfig::default_for(Domain::WordLm)
        .with_target_params(projection.target_params as u64);
    let r = subbatch_analysis(&cfg, &fig11_batches(), &accel, false);
    let mut t = Table::new(["subbatch", "FLOP/B", "step time/sample (s)"]);
    for p in &r.points {
        t.row([
            format!("{}", p.batch),
            format!("{:.1}", p.op_intensity),
            format!("{:.4}", p.sec_per_sample),
        ]);
    }
    println!("{}", t.render());
    println!(
        "accelerator ridge point: {:.1} FLOP/B",
        accel.achievable_ridge_point()
    );
    match r.ridge_match {
        Some(b) => println!(
            "ridge match at b = {b:.0}; chosen b = {} (paper: 128)",
            r.chosen
        ),
        None => println!("chosen b = {}", r.chosen),
    }
}

fn fig12() {
    section("Figure 12: data-parallel scaling of the frontier word LM");
    let accel = Accelerator::v100_like();
    let comm = CommConfig::default();
    let study = analysis::word_lm_case_study(&accel, &comm);
    let aware = &study.rows[1];
    let steps_per_epoch = study.dataset_words / (128.0 * study.config.seq_len as f64);
    let compute_seconds = aware.days_per_epoch * 86_400.0 / steps_per_epoch;
    let worker = WorkerStep {
        compute_seconds,
        alg_flops: compute_seconds * accel.peak_flops * aware.flop_utilization,
        gradient_bytes: 4.0 * study.params,
        samples_per_step: 128.0 * study.config.seq_len as f64,
    };
    let counts: Vec<u64> = (0..=14).map(|i| 1u64 << i).collect();
    let mut t = Table::new(["workers", "days/epoch", "FLOP util"]);
    for p in data_parallel_sweep(&worker, &counts, study.dataset_words, &accel, &comm) {
        t.row([
            format!("{}", p.workers),
            format!("{:.2}", p.epoch_days),
            format!("{:.1}%", 100.0 * p.flop_utilization),
        ]);
    }
    println!("{}", t.render());
    println!("paper anchors: 512 workers -> 11.1 days @38%; 1024 -> 6.2 days @34%");
    let _ = per_op_step_time; // (re-exported for parity with the case study)
    let _ = CacheModel::PanelStream;
}

fn main() {
    let usage = |e: String| -> ! {
        eprintln!("{e}");
        eprintln!("usage: figures [--figure N] [--trace PATH]");
        std::process::exit(2);
    };
    if let Err(e) = check_known_flags(&["--figure", "--trace"]) {
        usage(e);
    }
    let selector = parse_selector("--figure").unwrap_or_else(|e| usage(e));
    match selector {
        Some(6) => fig6(),
        Some(7) => fig7(),
        Some(8) => fig8(),
        Some(9) => fig9(),
        Some(10) => fig10(),
        Some(11) => fig11(),
        Some(12) => fig12(),
        Some(n) => {
            eprintln!("unknown figure {n}; reproducible figures are 6-12");
            std::process::exit(2);
        }
        None => {
            fig6();
            fig7();
            fig8();
            fig9();
            fig10();
            fig11();
            fig12();
        }
    }
    finish_trace();
}
