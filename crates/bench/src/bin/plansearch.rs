//! `plansearch` — timing gate for the pruned plan-search enumeration.
//!
//! ```text
//! plansearch [--reps N] [--summary PATH] [--min-speedup X]
//! ```
//!
//! For every domain, builds the full joint plan-search space — the whole
//! accelerator registry × a subbatch ladder × pipeline microbatch options ×
//! the power-of-two worker ladder — through [`analysis::plan_search_space`]
//! (symbolic characterization excluded from the timings), then enumerates
//! it two ways at several epoch deadlines:
//!
//! * **naive** — [`parsim::enumerate_naive`]: price every in-cap lattice
//!   point through the planner's formulas, filter afterwards;
//! * **pruned** — [`parsim::search`]: skip memory-infeasible variants
//!   wholesale, cut each worker ladder at the fleet cap, and drop
//!   allreduce-dominated points before pricing them.
//!
//! The gate is exactness first: the pruned feasible set, Pareto frontier,
//! and argmin plan must be **bit-identical** to the naive enumeration
//! (frontier and argmin recomputed from the naive set with the library's
//! own operators). Exits nonzero on any mismatch or when the pruned
//! speedup over naive falls below `--min-speedup` (default 1.5).
//! `--summary PATH` writes the numbers as JSON (see `BENCH_plansearch.json`).

use std::process::ExitCode;
use std::time::Instant;

use analysis::PlanSearchRequest;
use modelzoo::Domain;
use parsim::{
    argmin_point, enumerate_naive, pareto_frontier_reference, search, SearchPoint, SearchSpace,
};
use serve::flags::Flags;
use serve::json::Json;

const USAGE: &str = "usage: plansearch [--reps N] [--summary PATH] [--min-speedup X]
  --reps         repetitions per space for stable timings (default 100)
  --summary      write a JSON summary to this path
  --min-speedup  fail if pruned/naive falls below this (default 1.5)";

/// Epoch deadlines swept per domain: a near-impossible crunch (where the
/// allreduce floor prunes hardest), the paper's week, and a lax month.
const DAYS: [f64; 3] = [0.5, 7.5, 30.0];

struct SpaceRun {
    domain: Domain,
    days: f64,
    considered: u64,
    evaluated: u64,
    pruned: u64,
    feasible: usize,
    naive_ms: f64,
    pruned_ms: f64,
    identical: bool,
}

fn run_space(domain: Domain, days: f64, reps: u32) -> SpaceRun {
    let mut req = PlanSearchRequest::registry_default(domain, days, 1 << 22);
    let base = domain.default_subbatch();
    req.subbatches = vec![base, base * 2, base * 4];
    req.microbatches = vec![1, 2, 4, 8, 16, 32];
    let space: SearchSpace = analysis::plan_search_space(&req);

    // Brute arm: the full deliverable — feasible set, frontier, argmin —
    // through the reference operators.
    let brute = |space: &SearchSpace| {
        let feasible: Vec<SearchPoint> = enumerate_naive(space);
        let pareto = pareto_frontier_reference(&feasible);
        let best = argmin_point(&feasible);
        (feasible, pareto, best)
    };

    // One untimed pass each for the equivalence gate.
    let result = search(&space);
    let (feasible, pareto, best) = brute(&space);
    let identical = result.feasible == feasible && result.pareto == pareto && result.best == best;
    if !identical {
        eprintln!(
            "plansearch: {} days={days}: pruned search diverges from naive enumeration",
            domain.key()
        );
    }

    let naive_start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(brute(std::hint::black_box(&space)));
    }
    let naive_ms = naive_start.elapsed().as_secs_f64() * 1e3;
    let pruned_start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(search(std::hint::black_box(&space)));
    }
    let pruned_ms = pruned_start.elapsed().as_secs_f64() * 1e3;

    let s = &result.stats;
    SpaceRun {
        domain,
        days,
        considered: s.considered,
        evaluated: s.evaluated,
        pruned: s.pruned_memory + s.pruned_over_cap + s.pruned_comm_bound,
        feasible: result.feasible.len(),
        naive_ms,
        pruned_ms,
        identical,
    }
}

fn main() -> ExitCode {
    let flags = Flags::from_env();
    if flags.switch("--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let parsed = (|| -> Result<(u32, Option<String>, f64), String> {
        flags.check_known(&["--reps", "--summary", "--min-speedup", "--help"])?;
        Ok((
            flags.get_or("--reps", 100u32)?,
            flags.get::<String>("--summary")?,
            flags.get_or("--min-speedup", 1.5f64)?,
        ))
    })();
    let (reps, summary_path, min_speedup) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("plansearch: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    println!(
        "plansearch: registry-wide joint search per domain, deadlines {DAYS:?} days, {reps} reps"
    );
    let runs: Vec<SpaceRun> = Domain::ALL
        .into_iter()
        .flat_map(|d| DAYS.map(|days| run_space(d, days, reps)))
        .collect();

    let mut table = bench::Table::new([
        "domain",
        "days",
        "considered",
        "evaluated",
        "pruned",
        "feasible",
        "naive ms",
        "pruned ms",
        "speedup",
        "identical",
    ]);
    for r in &runs {
        table.row([
            r.domain.key().to_string(),
            format!("{}", r.days),
            r.considered.to_string(),
            r.evaluated.to_string(),
            r.pruned.to_string(),
            r.feasible.to_string(),
            format!("{:.1}", r.naive_ms),
            format!("{:.1}", r.pruned_ms),
            bench::times(r.naive_ms / r.pruned_ms),
            r.identical.to_string(),
        ]);
    }
    println!("\n{}", table.render());

    let naive_total: f64 = runs.iter().map(|r| r.naive_ms).sum();
    let pruned_total: f64 = runs.iter().map(|r| r.pruned_ms).sum();
    let speedup = naive_total / pruned_total;
    let all_identical = runs.iter().all(|r| r.identical);
    let considered: u64 = runs.iter().map(|r| r.considered).sum();
    let evaluated: u64 = runs.iter().map(|r| r.evaluated).sum();
    println!(
        "total: naive {naive_total:.1} ms  pruned {pruned_total:.1} ms  speedup {}  \
         ({evaluated}/{considered} points priced)",
        bench::times(speedup)
    );

    if let Some(path) = summary_path {
        let spaces: Vec<Json> = runs
            .iter()
            .map(|r| {
                Json::obj()
                    .set("domain", r.domain.key())
                    .set("days", r.days)
                    .set("considered", r.considered)
                    .set("evaluated", r.evaluated)
                    .set("pruned", r.pruned)
                    .set("feasible", r.feasible as u64)
                    .set("naive_ms", r.naive_ms)
                    .set("pruned_ms", r.pruned_ms)
                    .set("speedup_vs_naive", r.naive_ms / r.pruned_ms)
                    .set("bit_identical", r.identical)
            })
            .collect();
        let doc = Json::obj()
            .set("reps", reps)
            .set(
                "deadlines_days",
                DAYS.iter().copied().map(Json::Num).collect::<Vec<_>>(),
            )
            .set("considered", considered)
            .set("evaluated", evaluated)
            .set("naive_ms", naive_total)
            .set("pruned_ms", pruned_total)
            .set("speedup_pruned_vs_naive", speedup)
            .set("min_speedup_required", min_speedup)
            .set("all_bit_identical", all_identical)
            .set("spaces", spaces);
        if let Err(e) = std::fs::write(&path, doc.render() + "\n") {
            eprintln!("plansearch: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("summary -> {path}");
    }

    if !all_identical {
        eprintln!("plansearch: FAIL — pruned search diverges from naive enumeration");
        return ExitCode::FAILURE;
    }
    if speedup < min_speedup {
        eprintln!("plansearch: FAIL — pruned speedup {speedup:.2}x below required {min_speedup}x");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
