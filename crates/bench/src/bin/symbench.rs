//! `symbench` — interner effectiveness gauge for the `symath` hash-consing
//! layer.
//!
//! ```text
//! symbench [--summary PATH] [--min-eval-speedup X]
//! ```
//!
//! Builds the word-LM and char-LM width-symbolic families (the two with the
//! deepest unrolls), computes their interned stats, and binds three sweep
//! widths each — first **cold** (empty caches warm up) and then **warm**
//! (an identical pass that should run almost entirely out of the interner
//! and memo caches). For each pass it reports the intern hit rate, the
//! op-memo hit rate, heap allocations (counted by a wrapping global
//! allocator), and wall time. `--summary PATH` writes the numbers as JSON
//! (see `BENCH_symath.json`).
//!
//! The warm pass is the number that matters: a healthy interner re-answers
//! a repeated family build with a near-1.0 intern hit rate and near-zero
//! fresh table growth.
//!
//! A third section times **evaluation only**: the nine bound stats roots of
//! each family priced across a 64-point subbatch grid, once through the
//! per-point stack VM ([`InternedGraphStats::eval`]) and once through the
//! batched register VM ([`symath::batch_program`] + `eval_grid`). Both
//! produce bit-identical values; the section reports the wall-time ratio
//! and the `symath` batch counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use modelzoo::{Domain, ModelConfig, BATCH_SYM};
use serve::flags::Flags;
use serve::json::Json;
use symath::{batch_program, batch_stats, intern_stats, Bindings};

/// Allocation-counting wrapper around the system allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const USAGE: &str = "usage: symbench [--summary PATH] [--min-eval-speedup X]
  --summary           write a JSON summary to this path
  --min-eval-speedup  fail unless batched eval beats the stack VM by X (default 1)";

/// The three sweep sizes bound per family (spanning the Figure 7–10 range).
const TARGETS: [u64; 3] = [1_000_000, 100_000_000, 1_000_000_000];

struct Pass {
    label: &'static str,
    ms: f64,
    allocations: u64,
    intern_hits: u64,
    intern_misses: u64,
    intern_hit_rate: f64,
    memo_hits: u64,
    memo_misses: u64,
    memo_hit_rate: f64,
    table_growth: u64,
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// One family workload: symbolic training build, interned stats, and three
/// width-bound evaluations — the exact shape of a sweep engine miss.
fn family_workload(domain: Domain) -> f64 {
    let base = ModelConfig::default_for(domain);
    let fam = base.build_family_training();
    let stats = fam.graph.stats_interned();
    let mut acc = 0.0;
    for target in TARGETS {
        let cfg = base.with_target_params(target);
        let widths = cfg.family_widths();
        let bound = stats.bind_all(&widths);
        let bindings = fam.bindings_with_batch(domain.default_subbatch());
        let n = bound.eval(&bindings).expect("all symbols bound");
        acc += n.flops;
    }
    acc
}

fn measure(label: &'static str, domains: &[Domain]) -> Pass {
    let before = intern_stats();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    let mut sink = 0.0;
    for &domain in domains {
        sink += family_workload(domain);
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(sink);
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let after = intern_stats();
    Pass {
        label,
        ms,
        allocations,
        intern_hits: after.intern_hits - before.intern_hits,
        intern_misses: after.intern_misses - before.intern_misses,
        intern_hit_rate: rate(
            after.intern_hits - before.intern_hits,
            after.intern_misses - before.intern_misses,
        ),
        memo_hits: after.memo_hits - before.memo_hits,
        memo_misses: after.memo_misses - before.memo_misses,
        memo_hit_rate: rate(
            after.memo_hits - before.memo_hits,
            after.memo_misses - before.memo_misses,
        ),
        table_growth: after.table_len - before.table_len,
    }
}

/// Subbatch grid the eval-only section prices (64 points).
const EVAL_GRID: std::ops::RangeInclusive<u64> = 1..=64;

/// Repetitions of the eval-only passes (each is microseconds on its own).
const EVAL_REPS: usize = 200;

struct EvalOnly {
    roots: usize,
    grid_points: usize,
    reps: usize,
    stack_ms: f64,
    batched_ms: f64,
    identical: bool,
}

/// Price each family's nine bound stats roots across the subbatch grid,
/// per-point stack VM vs one batched grid evaluation per rep.
fn eval_only(domains: &[Domain]) -> EvalOnly {
    let mut stack_ms = 0.0;
    let mut batched_ms = 0.0;
    let mut roots_total = 0;
    let mut identical = true;
    let points: Vec<Bindings> = EVAL_GRID
        .map(|b| Bindings::new().with(BATCH_SYM, b as f64))
        .collect();
    for &domain in domains {
        let base = ModelConfig::default_for(domain);
        let fam = base.build_family_training();
        let stats = fam.graph.stats_interned();
        let bound = stats.bind_all(&base.with_target_params(100_000_000).family_widths());
        let roots = [
            bound.flops,
            bound.flops_forward,
            bound.flops_backward,
            bound.flops_update,
            bound.bytes,
            bound.bytes_read,
            bound.bytes_written,
            bound.params,
            bound.io,
        ];
        roots_total += roots.len();
        // Warm both compile caches so the timings compare evaluation only.
        let stack_ref: Vec<_> = points.iter().map(|p| bound.eval(p).unwrap()).collect();
        let prog = batch_program(&roots);
        let grid = prog.eval_grid(&points).unwrap();
        for (p, n) in stack_ref.iter().enumerate() {
            identical &= grid[0][p] == Ok(n.flops) && grid[7][p] == Ok(n.params);
        }

        let start = Instant::now();
        let mut sink = 0.0;
        for _ in 0..EVAL_REPS {
            for p in &points {
                let n = bound.eval(p).unwrap();
                sink += n.flops + n.params;
            }
        }
        stack_ms += start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(sink);

        let start = Instant::now();
        let mut sink = 0.0;
        for _ in 0..EVAL_REPS {
            let g = prog.eval_grid(&points).unwrap();
            sink += g[0][0].as_ref().unwrap() + g[7][points.len() - 1].as_ref().unwrap();
        }
        batched_ms += start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(sink);
    }
    EvalOnly {
        roots: roots_total,
        grid_points: points.len(),
        reps: EVAL_REPS,
        stack_ms,
        batched_ms,
        identical,
    }
}

fn pass_json(p: &Pass) -> Json {
    Json::obj()
        .set("ms", p.ms)
        .set("allocations", p.allocations)
        .set("intern_hits", p.intern_hits)
        .set("intern_misses", p.intern_misses)
        .set("intern_hit_rate", p.intern_hit_rate)
        .set("memo_hits", p.memo_hits)
        .set("memo_misses", p.memo_misses)
        .set("memo_hit_rate", p.memo_hit_rate)
        .set("table_growth", p.table_growth)
}

fn main() -> ExitCode {
    let flags = Flags::from_env();
    if flags.switch("--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (summary_path, min_eval_speedup) = match (|| -> Result<_, String> {
        flags.check_known(&["--summary", "--min-eval-speedup", "--help"])?;
        Ok((
            flags.get::<String>("--summary")?,
            flags.get::<f64>("--min-eval-speedup")?.unwrap_or(1.0),
        ))
    })() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("symbench: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let domains = [Domain::WordLm, Domain::CharLm];
    let cold = measure("cold", &domains);
    let warm = measure("warm", &domains);

    println!("pass    ms        allocs   intern-hit  memo-hit  table-growth");
    for p in [&cold, &warm] {
        println!(
            "{:<6} {:>9.1} {:>9} {:>10.3} {:>9.3} {:>13}",
            p.label, p.ms, p.allocations, p.intern_hit_rate, p.memo_hit_rate, p.table_growth
        );
    }

    let evals = eval_only(&domains);
    let eval_speedup = evals.stack_ms / evals.batched_ms;
    let bstats = batch_stats();
    println!(
        "\neval-only ({} roots x {} points x {} reps): stack {:.1} ms  batched {:.1} ms  \
         speedup {:.1}x  identical {}",
        evals.roots,
        evals.grid_points,
        evals.reps,
        evals.stack_ms,
        evals.batched_ms,
        eval_speedup,
        evals.identical
    );
    println!(
        "batch VM: {} programs compiled, {} cache hits, {} instrs, {} regs, {} cse reuses, \
         {} evals over {} points",
        bstats.programs_compiled,
        bstats.program_cache_hits,
        bstats.instructions,
        bstats.registers,
        bstats.cse_reuses,
        bstats.evals,
        bstats.points
    );

    // A warm identical workload must be answered by the caches, the batched
    // VM must agree with the stack VM bit-for-bit, and — under
    // `--min-eval-speedup` — the batched grid evaluation must beat the
    // per-point stack VM by the required factor.
    let healthy = warm.intern_hit_rate > 0.99
        && warm.table_growth == 0
        && evals.identical
        && eval_speedup >= min_eval_speedup;
    if !healthy {
        eprintln!(
            "symbench: FAIL — warm pass missed the caches (intern hit rate {:.3}, table growth {}), \
             batched VM diverged (identical {}), or batched eval speedup {:.1}x fell below the \
             required {:.1}x",
            warm.intern_hit_rate, warm.table_growth, evals.identical, eval_speedup, min_eval_speedup
        );
    }

    if let Some(path) = summary_path {
        let total = intern_stats();
        let doc = Json::obj()
            .set(
                "workload",
                "wordlm+charlm family build, 3 widths bound each",
            )
            .set("cold", pass_json(&cold))
            .set("warm", pass_json(&warm))
            .set("warm_cache_healthy", healthy)
            .set(
                "eval_only",
                Json::obj()
                    .set("roots", evals.roots)
                    .set("grid_points", evals.grid_points)
                    .set("reps", evals.reps)
                    .set("stack_ms", evals.stack_ms)
                    .set("batched_ms", evals.batched_ms)
                    .set("speedup_batched_vs_stack", eval_speedup)
                    .set("min_speedup_required", min_eval_speedup)
                    .set("bit_identical", evals.identical),
            )
            .set(
                "batch_vm",
                Json::obj()
                    .set("programs_compiled", bstats.programs_compiled)
                    .set("program_cache_hits", bstats.program_cache_hits)
                    .set("instructions", bstats.instructions)
                    .set("registers", bstats.registers)
                    .set("cse_reuses", bstats.cse_reuses)
                    .set("evals", bstats.evals)
                    .set("points", bstats.points),
            )
            .set("table_len", total.table_len)
            .set("programs_compiled", total.programs_compiled);
        if let Err(e) = std::fs::write(&path, doc.render() + "\n") {
            eprintln!("symbench: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("summary written to {path}");
    }

    if healthy {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
