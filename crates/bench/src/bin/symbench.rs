//! `symbench` — interner effectiveness gauge for the `symath` hash-consing
//! layer.
//!
//! ```text
//! symbench [--summary PATH]
//! ```
//!
//! Builds the word-LM and char-LM width-symbolic families (the two with the
//! deepest unrolls), computes their interned stats, and binds three sweep
//! widths each — first **cold** (empty caches warm up) and then **warm**
//! (an identical pass that should run almost entirely out of the interner
//! and memo caches). For each pass it reports the intern hit rate, the
//! op-memo hit rate, heap allocations (counted by a wrapping global
//! allocator), and wall time. `--summary PATH` writes the numbers as JSON
//! (see `BENCH_symath.json`).
//!
//! The warm pass is the number that matters: a healthy interner re-answers
//! a repeated family build with a near-1.0 intern hit rate and near-zero
//! fresh table growth.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use modelzoo::{Domain, ModelConfig};
use serve::flags::Flags;
use serve::json::Json;
use symath::intern_stats;

/// Allocation-counting wrapper around the system allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const USAGE: &str = "usage: symbench [--summary PATH]
  --summary  write a JSON summary to this path";

/// The three sweep sizes bound per family (spanning the Figure 7–10 range).
const TARGETS: [u64; 3] = [1_000_000, 100_000_000, 1_000_000_000];

struct Pass {
    label: &'static str,
    ms: f64,
    allocations: u64,
    intern_hits: u64,
    intern_misses: u64,
    intern_hit_rate: f64,
    memo_hits: u64,
    memo_misses: u64,
    memo_hit_rate: f64,
    table_growth: u64,
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// One family workload: symbolic training build, interned stats, and three
/// width-bound evaluations — the exact shape of a sweep engine miss.
fn family_workload(domain: Domain) -> f64 {
    let base = ModelConfig::default_for(domain);
    let fam = base.build_family_training();
    let stats = fam.graph.stats_interned();
    let mut acc = 0.0;
    for target in TARGETS {
        let cfg = base.with_target_params(target);
        let widths = cfg.family_widths();
        let bound = stats.bind_all(&widths);
        let bindings = fam.bindings_with_batch(domain.default_subbatch());
        let n = bound.eval(&bindings).expect("all symbols bound");
        acc += n.flops;
    }
    acc
}

fn measure(label: &'static str, domains: &[Domain]) -> Pass {
    let before = intern_stats();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    let mut sink = 0.0;
    for &domain in domains {
        sink += family_workload(domain);
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(sink);
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let after = intern_stats();
    Pass {
        label,
        ms,
        allocations,
        intern_hits: after.intern_hits - before.intern_hits,
        intern_misses: after.intern_misses - before.intern_misses,
        intern_hit_rate: rate(
            after.intern_hits - before.intern_hits,
            after.intern_misses - before.intern_misses,
        ),
        memo_hits: after.memo_hits - before.memo_hits,
        memo_misses: after.memo_misses - before.memo_misses,
        memo_hit_rate: rate(
            after.memo_hits - before.memo_hits,
            after.memo_misses - before.memo_misses,
        ),
        table_growth: after.table_len - before.table_len,
    }
}

fn pass_json(p: &Pass) -> Json {
    Json::obj()
        .set("ms", p.ms)
        .set("allocations", p.allocations)
        .set("intern_hits", p.intern_hits)
        .set("intern_misses", p.intern_misses)
        .set("intern_hit_rate", p.intern_hit_rate)
        .set("memo_hits", p.memo_hits)
        .set("memo_misses", p.memo_misses)
        .set("memo_hit_rate", p.memo_hit_rate)
        .set("table_growth", p.table_growth)
}

fn main() -> ExitCode {
    let flags = Flags::from_env();
    if flags.switch("--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let summary_path = match (|| -> Result<Option<String>, String> {
        flags.check_known(&["--summary", "--help"])?;
        flags.get::<String>("--summary")
    })() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("symbench: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let domains = [Domain::WordLm, Domain::CharLm];
    let cold = measure("cold", &domains);
    let warm = measure("warm", &domains);

    println!("pass    ms        allocs   intern-hit  memo-hit  table-growth");
    for p in [&cold, &warm] {
        println!(
            "{:<6} {:>9.1} {:>9} {:>10.3} {:>9.3} {:>13}",
            p.label, p.ms, p.allocations, p.intern_hit_rate, p.memo_hit_rate, p.table_growth
        );
    }

    // A warm identical workload must be answered by the caches.
    let healthy = warm.intern_hit_rate > 0.99 && warm.table_growth == 0;
    if !healthy {
        eprintln!(
            "symbench: FAIL — warm pass missed the caches (intern hit rate {:.3}, table growth {})",
            warm.intern_hit_rate, warm.table_growth
        );
    }

    if let Some(path) = summary_path {
        let total = intern_stats();
        let doc = Json::obj()
            .set(
                "workload",
                "wordlm+charlm family build, 3 widths bound each",
            )
            .set("cold", pass_json(&cold))
            .set("warm", pass_json(&warm))
            .set("warm_cache_healthy", healthy)
            .set("table_len", total.table_len)
            .set("programs_compiled", total.programs_compiled);
        if let Err(e) = std::fs::write(&path, doc.render() + "\n") {
            eprintln!("symbench: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("summary written to {path}");
    }

    if healthy {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
