//! `loadgen` — TCP load generator for the `serve` query server.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--threads N] [--requests M]
//!         [--summary PATH] [--spawn]
//! ```
//!
//! Drives a mixed endpoint workload with `--threads` clients issuing
//! `--requests` requests each, and reports throughput plus p50/p95/p99
//! latency — separately for the **cold** pass (first time each expensive
//! query is seen, cache empty) and the **warm** pass (every repeat is a
//! cache hit). With `--spawn` it boots an in-process server on an ephemeral
//! port first, so one command produces an end-to-end benchmark.
//!
//! `--summary PATH` writes the numbers as JSON (see `BENCH_serve.json`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::Mutex;

use serve::flags::Flags;
use serve::json::Json;
use serve::{ServeConfig, Server};

const USAGE: &str = "usage: loadgen [--addr HOST:PORT] [--threads N] [--requests M] \
[--summary PATH] [--spawn]
  --addr      server to drive (default 127.0.0.1:8080)
  --threads   concurrent client threads (default 4)
  --requests  requests per thread in the warm pass (default 50)
  --summary   write a JSON summary to this path
  --spawn     boot an in-process serve instance on an ephemeral port";

/// The mixed workload. Expensive analysis queries plus cheap liveness
/// traffic, all against the default-scale models so the cold pass stays in
/// seconds.
const MIX: &[&str] = &[
    "/v1/characterize?domain=wordlm&subbatch=16",
    "/v1/characterize?domain=nmt&subbatch=32",
    "/v1/sweep?domain=wordlm&lo=1000000&hi=100000000&points=7",
    "/v1/project?domain=speech",
    "/v1/subbatch?domain=charlm&params=10000000",
    "/v1/plan?domain=resnet&accels=16384",
    "/v1/infer/characterize?batch=64&prompt=512&context=1024",
    "/v1/infer/sweep?batch=1,4,16,64&context=512,2048",
    "/v1/infer/plan?tpot_ms=50&ttft_ms=500&tokens_per_s=20000",
    "/v1/healthz",
    "/v1/metrics",
];

/// The paths whose first computation is expensive (cold pass targets).
const EXPENSIVE: usize = 9;

/// One HTTP exchange: returns (status, x-cache header, body).
fn fetch(addr: SocketAddr, path: &str) -> Result<(u16, Option<String>, String), String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "response without head/body separator".to_string())?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {:?}", head.lines().next().unwrap_or("")))?;
    let cache = head
        .lines()
        .find_map(|l| l.strip_prefix("x-cache: ").map(str::to_string));
    Ok((status, cache, body.to_string()))
}

/// Exact per-request latency samples. The server's own `Histogram` is
/// log₂-bucketed — right for unbounded rolling metrics, but quantile
/// readback returns bucket upper bounds, so a warm pass whose latencies all
/// land in one bucket reports p50 == p95 == p99 == max. A load generator
/// knows its request count up front; it can afford every sample and report
/// true order statistics.
#[derive(Default)]
struct Samples(Mutex<Vec<u64>>);

impl Samples {
    fn record_us(&self, us: u64) {
        self.0.lock().expect("samples lock").push(us);
    }

    fn sorted_us(&self) -> Vec<u64> {
        let mut v = self.0.lock().expect("samples lock").clone();
        v.sort_unstable();
        v
    }
}

/// Nearest-rank quantile of an ascending sample vector (0 when empty).
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Warm-pass latency samples and error counts broken out per endpoint path,
/// for the machine-readable summary CI diffs against `BENCH_serve.json`.
#[derive(Default)]
struct PerEndpoint(Mutex<std::collections::BTreeMap<String, (Vec<u64>, u64)>>);

impl PerEndpoint {
    fn record(&self, path: &str, us: u64, ok: bool) {
        let mut map = self.0.lock().expect("per-endpoint lock");
        let entry = map.entry(path.to_string()).or_default();
        entry.0.push(us);
        if !ok {
            entry.1 += 1;
        }
    }

    /// `{path: {count, p50_us, p95_us, p99_us, errors}}`.
    fn to_json(&self) -> Json {
        let map = self.0.lock().expect("per-endpoint lock");
        let mut doc = Json::obj();
        for (path, (samples, errors)) in map.iter() {
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            doc = doc.set(
                path.as_str(),
                Json::obj()
                    .set("count", sorted.len())
                    .set("p50_us", quantile_us(&sorted, 0.5))
                    .set("p95_us", quantile_us(&sorted, 0.95))
                    .set("p99_us", quantile_us(&sorted, 0.99))
                    .set("errors", *errors),
            );
        }
        doc
    }
}

struct Counters {
    ok: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    transport_errors: AtomicU64,
    cache_hits: AtomicU64,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            ok: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            transport_errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    fn record(&self, result: &Result<(u16, Option<String>, String), String>) {
        match result {
            Ok((status, cache, _)) => {
                match status {
                    200..=299 => self.ok.fetch_add(1, Ordering::Relaxed),
                    400..=499 => self.client_errors.fetch_add(1, Ordering::Relaxed),
                    _ => self.server_errors.fetch_add(1, Ordering::Relaxed),
                };
                if matches!(cache.as_deref(), Some("hit" | "coalesced")) {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.transport_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn timed_fetch(
    addr: SocketAddr,
    path: &str,
    samples: &Samples,
    counters: &Counters,
) -> Result<(u16, Option<String>, String), String> {
    let start = Instant::now();
    let result = fetch(addr, path);
    let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    samples.record_us(us);
    counters.record(&result);
    result
}

fn main() -> ExitCode {
    let flags = Flags::from_env();
    if flags.switch("--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let parsed = (|| -> Result<(String, usize, usize, Option<String>, bool), String> {
        flags.check_known(&[
            "--addr",
            "--threads",
            "--requests",
            "--summary",
            "--spawn",
            "--help",
        ])?;
        Ok((
            flags.get_or("--addr", "127.0.0.1:8080".to_string())?,
            flags.get_or("--threads", 4usize)?,
            flags.get_or("--requests", 50usize)?,
            flags.get::<String>("--summary")?,
            flags.switch("--spawn"),
        ))
    })();
    let (addr_flag, threads, requests, summary_path, spawn) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("loadgen: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Optionally boot the server in-process (ephemeral port, drained on exit).
    let spawned = if spawn {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        };
        match Server::start(&config) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("loadgen: failed to spawn server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr: SocketAddr = match spawned {
        Some(ref server) => server.local_addr(),
        None => match addr_flag.to_socket_addrs().ok().and_then(|mut a| a.next()) {
            Some(addr) => addr,
            None => {
                eprintln!("loadgen: cannot resolve {addr_flag:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        },
    };
    println!("loadgen: driving http://{addr} with {threads} threads x {requests} requests");

    // Cold pass: first touch of each expensive endpoint, sequentially, while
    // the cache has never seen them.
    let cold = Samples::default();
    let cold_counters = Counters::new();
    for path in &MIX[..EXPENSIVE] {
        if let Err(e) = timed_fetch(addr, path, &cold, &cold_counters) {
            eprintln!("loadgen: cold {path}: {e}");
        }
    }

    // Warm pass: concurrent mixed traffic; every expensive query repeats the
    // cold pass, so it should be served from cache.
    let warm = Arc::new(Samples::default());
    let warm_characterize = Arc::new(Samples::default());
    let per_endpoint = Arc::new(PerEndpoint::default());
    let counters = Arc::new(Counters::new());
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads.max(1) {
        let warm = Arc::clone(&warm);
        let warm_characterize = Arc::clone(&warm_characterize);
        let per_endpoint = Arc::clone(&per_endpoint);
        let counters = Arc::clone(&counters);
        handles.push(std::thread::spawn(move || {
            for i in 0..requests {
                let path = MIX[(t + i) % MIX.len()];
                let samples: &Samples = if path.starts_with("/v1/characterize") {
                    &warm_characterize
                } else {
                    &warm
                };
                let start = Instant::now();
                let result = timed_fetch(addr, path, samples, &counters);
                let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                let endpoint = path.split('?').next().unwrap_or(path);
                let ok = matches!(result, Ok((status, ..)) if (200..300).contains(&status));
                per_endpoint.record(endpoint, us, ok);
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = started.elapsed().as_secs_f64();
    drop(spawned); // graceful drain before reporting

    let total = (threads.max(1) * requests) as u64;
    let throughput = if elapsed > 0.0 {
        total as f64 / elapsed
    } else {
        0.0
    };
    let cold_sorted = cold.sorted_us();
    let warm_sorted = warm.sorted_us();
    let warm_char_sorted = warm_characterize.sorted_us();
    let cold_p50 = quantile_us(&cold_sorted, 0.5);
    let warm_char_p50 = quantile_us(&warm_char_sorted, 0.5);
    let speedup = if warm_char_p50 > 0 {
        cold_p50 as f64 / warm_char_p50 as f64
    } else {
        f64::INFINITY
    };

    println!(
        "\ncold pass ({} expensive endpoints, cache empty):",
        EXPENSIVE
    );
    println!(
        "  p50 {} us   max {} us",
        cold_p50,
        cold_sorted.last().copied().unwrap_or(0)
    );
    println!("warm pass ({total} requests in {elapsed:.2}s, {throughput:.0} req/s):");
    println!(
        "  characterize p50 {} us   all-endpoints p50 {} us  p95 {} us  p99 {} us",
        warm_char_p50,
        quantile_us(&warm_sorted, 0.5),
        quantile_us(&warm_sorted, 0.95),
        quantile_us(&warm_sorted, 0.99),
    );
    println!("  cold/warm characterize p50 speedup: {speedup:.0}x");
    println!(
        "  ok {}  4xx {}  5xx {}  transport errors {}  cache hits {}",
        counters.ok.load(Ordering::Relaxed),
        counters.client_errors.load(Ordering::Relaxed),
        counters.server_errors.load(Ordering::Relaxed),
        counters.transport_errors.load(Ordering::Relaxed),
        counters.cache_hits.load(Ordering::Relaxed),
    );

    if let Some(path) = summary_path {
        let doc = Json::obj()
            .set("threads", threads)
            .set("requests_per_thread", requests)
            .set("total_requests", total)
            .set("elapsed_seconds", elapsed)
            .set("throughput_rps", throughput)
            .set(
                "cold",
                Json::obj()
                    .set("p50_us", cold_p50)
                    .set("max_us", cold_sorted.last().copied().unwrap_or(0)),
            )
            .set(
                "warm",
                Json::obj()
                    .set("characterize_p50_us", warm_char_p50)
                    .set("p50_us", quantile_us(&warm_sorted, 0.5))
                    .set("p95_us", quantile_us(&warm_sorted, 0.95))
                    .set("p99_us", quantile_us(&warm_sorted, 0.99))
                    .set("max_us", warm_sorted.last().copied().unwrap_or(0)),
            )
            .set("cold_over_warm_characterize_p50", speedup)
            .set("per_endpoint", per_endpoint.to_json())
            .set(
                "responses",
                Json::obj()
                    .set("ok", counters.ok.load(Ordering::Relaxed))
                    .set(
                        "client_errors",
                        counters.client_errors.load(Ordering::Relaxed),
                    )
                    .set(
                        "server_errors",
                        counters.server_errors.load(Ordering::Relaxed),
                    )
                    .set(
                        "transport_errors",
                        counters.transport_errors.load(Ordering::Relaxed),
                    )
                    .set("cache_hits", counters.cache_hits.load(Ordering::Relaxed)),
            );
        if let Err(e) = std::fs::write(&path, doc.render() + "\n") {
            eprintln!("loadgen: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  summary -> {path}");
    }

    let failed = counters.server_errors.load(Ordering::Relaxed)
        + counters.transport_errors.load(Ordering::Relaxed);
    if failed > 0 {
        eprintln!("loadgen: {failed} failed requests");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
