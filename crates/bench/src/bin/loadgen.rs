//! `loadgen` — TCP load generator for the `serve` query server.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--threads N] [--requests M]
//!         [--keep-alive] [--pipeline-depth D] [--summary PATH] [--spawn]
//! ```
//!
//! Drives a mixed endpoint workload with `--threads` clients issuing
//! `--requests` requests each, and reports throughput plus p50/p95/p99
//! latency — separately for the **cold** pass (first time each expensive
//! query is seen, cache empty), the **warm per-connection** pass (every
//! repeat is a cache hit, but each request pays a fresh TCP connect), and
//! optionally a **warm keep-alive** pass (`--keep-alive`: one persistent
//! connection per thread, optionally pipelined `--pipeline-depth` deep).
//! With `--spawn` it boots an in-process server on an ephemeral port first,
//! so one command produces an end-to-end benchmark.
//!
//! Every client socket sets `TCP_NODELAY`, and connection setup is timed as
//! its own `connect_us` component — earlier versions folded connect (and
//! Nagle/delayed-ACK stalls) into warm p50, which made every endpoint
//! report an identical flat ~5 ms.
//!
//! `--summary PATH` writes the numbers as JSON (see `BENCH_serve.json`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::Mutex;

use serve::flags::Flags;
use serve::json::Json;
use serve::{ServeConfig, Server};

const USAGE: &str = "usage: loadgen [--addr HOST:PORT] [--threads N] [--requests M] \
[--keep-alive] [--pipeline-depth D] [--summary PATH] [--spawn]
  --addr            server to drive (default 127.0.0.1:8080)
  --threads         concurrent client threads (default 4)
  --requests        requests per thread in each warm pass (default 50)
  --keep-alive      add a warm pass over persistent connections
  --pipeline-depth  requests in flight per keep-alive connection (default 1)
  --summary         write a JSON summary to this path
  --spawn           boot an in-process serve instance on an ephemeral port";

/// The mixed workload. Expensive analysis queries plus cheap liveness
/// traffic, all against the default-scale models so the cold pass stays in
/// seconds.
const MIX: &[&str] = &[
    "/v1/characterize?domain=wordlm&subbatch=16",
    "/v1/characterize?domain=nmt&subbatch=32",
    "/v1/sweep?domain=wordlm&lo=1000000&hi=100000000&points=7",
    "/v1/project?domain=speech",
    "/v1/subbatch?domain=charlm&params=10000000",
    "/v1/plan?domain=resnet&accels=16384",
    "/v1/infer/characterize?batch=64&prompt=512&context=1024",
    "/v1/infer/sweep?batch=1,4,16,64&context=512,2048",
    "/v1/infer/plan?tpot_ms=50&ttft_ms=500&tokens_per_s=20000",
    "/v1/healthz",
    "/v1/metrics",
];

/// The paths whose first computation is expensive (cold pass targets).
const EXPENSIVE: usize = 9;

/// One parsed HTTP response.
struct Response {
    status: u16,
    cache: Option<String>,
    /// The server signalled it will close the connection after this.
    close: bool,
}

/// One per-connection HTTP exchange. Returns the response plus how long
/// the TCP connect took (`connect_us`), so connection setup is never
/// silently folded into service latency.
fn fetch(addr: SocketAddr, path: &str) -> Result<(Response, u64), String> {
    let connect_start = Instant::now();
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let connect_us = u64::try_from(connect_start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, _body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "response without head/body separator".to_string())?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {:?}", head.lines().next().unwrap_or("")))?;
    let cache = head
        .lines()
        .find_map(|l| l.strip_prefix("x-cache: ").map(str::to_string));
    Ok((
        Response {
            status,
            cache,
            close: true,
        },
        connect_us,
    ))
}

/// A persistent keep-alive client: one connection reused across requests
/// (reconnecting if the server closes it), responses framed by
/// `content-length` rather than EOF. Supports writing a batch of pipelined
/// requests before reading any response.
struct KeepAliveClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Bytes read past the previous response (pipelined successors).
    buf: Vec<u8>,
    reconnects: u64,
}

impl KeepAliveClient {
    fn new(addr: SocketAddr) -> KeepAliveClient {
        KeepAliveClient {
            addr,
            stream: None,
            buf: Vec::new(),
            reconnects: 0,
        }
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream, String> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))
                .map_err(|e| format!("connect {}: {e}", self.addr))?;
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
            self.buf.clear();
            self.stream = Some(stream);
            self.reconnects += 1;
        }
        Ok(self.stream.as_mut().expect("just ensured"))
    }

    fn drop_connection(&mut self) {
        self.stream = None;
        self.buf.clear();
    }

    /// Write `paths` back-to-back (one flush), then read the matching
    /// responses in order. Returns one `Response` per request.
    fn pipelined(&mut self, paths: &[&str]) -> Result<Vec<Response>, String> {
        let stream = self.ensure_connected()?;
        let mut wire = String::new();
        for path in paths {
            wire.push_str(&format!("GET {path} HTTP/1.1\r\nhost: loadgen\r\n\r\n"));
        }
        if let Err(e) = stream.write_all(wire.as_bytes()) {
            self.drop_connection();
            return Err(format!("write: {e}"));
        }
        let mut responses = Vec::with_capacity(paths.len());
        for _ in paths {
            match self.read_response() {
                Ok(resp) => {
                    let close = resp.close;
                    responses.push(resp);
                    if close {
                        // Server is done with this connection; any further
                        // pipelined requests in this batch were discarded.
                        self.drop_connection();
                        if responses.len() < paths.len() {
                            return Err("connection closed mid-pipeline".to_string());
                        }
                    }
                }
                Err(e) => {
                    self.drop_connection();
                    return Err(e);
                }
            }
        }
        Ok(responses)
    }

    /// Read one `content-length`-framed response from the connection.
    fn read_response(&mut self) -> Result<Response, String> {
        let head_end = loop {
            if let Some(pos) = find_subslice(&self.buf, b"\r\n\r\n") {
                break pos;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let body_start = head_end + 4;
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad status line {:?}", head.lines().next().unwrap_or("")))?;
        let mut content_length = 0usize;
        let mut cache = None;
        let mut close = false;
        for line in head.lines().skip(1) {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value
                        .parse()
                        .map_err(|_| format!("bad content-length {value:?}"))?;
                }
                "x-cache" => cache = Some(value.to_string()),
                "connection" => close = value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        self.buf.drain(..body_start + content_length);
        Ok(Response {
            status,
            cache,
            close,
        })
    }

    /// Pull more bytes off the socket into the buffer.
    fn fill(&mut self) -> Result<(), String> {
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| "connection closed".to_string())?;
        let mut chunk = [0u8; 16 * 1024];
        match stream.read(&mut chunk) {
            Ok(0) => Err("connection closed mid-response".to_string()),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e) => Err(format!("read: {e}")),
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Exact per-request latency samples. The server's own `Histogram` is
/// log₂-bucketed — right for unbounded rolling metrics, but quantile
/// readback returns bucket upper bounds, so a warm pass whose latencies all
/// land in one bucket reports p50 == p95 == p99 == max. A load generator
/// knows its request count up front; it can afford every sample and report
/// true order statistics.
#[derive(Default)]
struct Samples(Mutex<Vec<u64>>);

impl Samples {
    fn record_us(&self, us: u64) {
        self.0.lock().expect("samples lock").push(us);
    }

    fn sorted_us(&self) -> Vec<u64> {
        let mut v = self.0.lock().expect("samples lock").clone();
        v.sort_unstable();
        v
    }
}

/// Nearest-rank quantile of an ascending sample vector (0 when empty).
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// `{p50_us, p95_us, p99_us, max_us}` of a sample set.
fn quantiles_json(sorted: &[u64]) -> Json {
    Json::obj()
        .set("p50_us", quantile_us(sorted, 0.5))
        .set("p95_us", quantile_us(sorted, 0.95))
        .set("p99_us", quantile_us(sorted, 0.99))
        .set("max_us", sorted.last().copied().unwrap_or(0))
}

/// Warm-pass latency samples and error counts broken out per endpoint path,
/// for the machine-readable summary CI diffs against `BENCH_serve.json`.
#[derive(Default)]
struct PerEndpoint(Mutex<std::collections::BTreeMap<String, (Vec<u64>, u64)>>);

impl PerEndpoint {
    fn record(&self, path: &str, us: u64, ok: bool) {
        let mut map = self.0.lock().expect("per-endpoint lock");
        let entry = map.entry(path.to_string()).or_default();
        entry.0.push(us);
        if !ok {
            entry.1 += 1;
        }
    }

    /// `{path: {count, p50_us, p95_us, p99_us, errors}}`.
    fn to_json(&self) -> Json {
        let map = self.0.lock().expect("per-endpoint lock");
        let mut doc = Json::obj();
        for (path, (samples, errors)) in map.iter() {
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            doc = doc.set(
                path.as_str(),
                Json::obj()
                    .set("count", sorted.len())
                    .set("p50_us", quantile_us(&sorted, 0.5))
                    .set("p95_us", quantile_us(&sorted, 0.95))
                    .set("p99_us", quantile_us(&sorted, 0.99))
                    .set("errors", *errors),
            );
        }
        doc
    }
}

#[derive(Default)]
struct Counters {
    ok: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    transport_errors: AtomicU64,
    cache_hits: AtomicU64,
}

impl Counters {
    fn record_response(&self, resp: &Response) {
        match resp.status {
            200..=299 => self.ok.fetch_add(1, Ordering::Relaxed),
            400..=499 => self.client_errors.fetch_add(1, Ordering::Relaxed),
            _ => self.server_errors.fetch_add(1, Ordering::Relaxed),
        };
        if matches!(resp.cache.as_deref(), Some("hit" | "coalesced")) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .set("ok", self.ok.load(Ordering::Relaxed))
            .set("client_errors", self.client_errors.load(Ordering::Relaxed))
            .set("server_errors", self.server_errors.load(Ordering::Relaxed))
            .set(
                "transport_errors",
                self.transport_errors.load(Ordering::Relaxed),
            )
            .set("cache_hits", self.cache_hits.load(Ordering::Relaxed))
    }

    fn failed(&self) -> u64 {
        self.server_errors.load(Ordering::Relaxed) + self.transport_errors.load(Ordering::Relaxed)
    }
}

/// One per-connection exchange with split timing: `connect_us` recorded
/// apart from the service (write→last byte) time that lands in `samples`.
fn timed_fetch(
    addr: SocketAddr,
    path: &str,
    samples: &Samples,
    connects: &Samples,
    counters: &Counters,
) -> Result<Response, String> {
    let start = Instant::now();
    let result = fetch(addr, path);
    let total_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    match result {
        Ok((resp, connect_us)) => {
            connects.record_us(connect_us);
            samples.record_us(total_us.saturating_sub(connect_us));
            counters.record_response(&resp);
            Ok(resp)
        }
        Err(e) => {
            samples.record_us(total_us);
            counters.transport_errors.fetch_add(1, Ordering::Relaxed);
            Err(e)
        }
    }
}

struct Config {
    addr_flag: String,
    threads: usize,
    requests: usize,
    keep_alive: bool,
    pipeline_depth: usize,
    summary_path: Option<String>,
    spawn: bool,
}

fn parse_flags(flags: &Flags) -> Result<Config, String> {
    flags.check_known(&[
        "--addr",
        "--threads",
        "--requests",
        "--keep-alive",
        "--pipeline-depth",
        "--summary",
        "--spawn",
        "--help",
    ])?;
    Ok(Config {
        addr_flag: flags.get_or("--addr", "127.0.0.1:8080".to_string())?,
        threads: flags.get_or("--threads", 4usize)?,
        requests: flags.get_or("--requests", 50usize)?,
        keep_alive: flags.switch("--keep-alive"),
        pipeline_depth: flags.get_or("--pipeline-depth", 1usize)?,
        summary_path: flags.get::<String>("--summary")?,
        spawn: flags.switch("--spawn"),
    })
}

/// Warm pass over persistent connections: one keep-alive client per
/// thread, `depth` requests pipelined per batch. Returns
/// `(samples, counters, elapsed_seconds, reconnects)`.
fn keepalive_pass(
    addr: SocketAddr,
    threads: usize,
    requests: usize,
    depth: usize,
) -> (Arc<Samples>, Arc<Counters>, f64, u64) {
    let samples = Arc::new(Samples::default());
    let counters = Arc::new(Counters::default());
    let reconnects = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads.max(1) {
        let samples = Arc::clone(&samples);
        let counters = Arc::clone(&counters);
        let reconnects = Arc::clone(&reconnects);
        handles.push(std::thread::spawn(move || {
            let mut client = KeepAliveClient::new(addr);
            let mut sent = 0usize;
            while sent < requests {
                let batch_len = depth.max(1).min(requests - sent);
                let paths: Vec<&str> = (0..batch_len)
                    .map(|k| MIX[(t + sent + k) % MIX.len()])
                    .collect();
                let start = Instant::now();
                match client.pipelined(&paths) {
                    Ok(responses) => {
                        // Individual responses inside a pipelined batch are
                        // not separable on the wire; attribute an equal
                        // share of the batch time to each.
                        let per_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
                            / batch_len as u64;
                        for resp in &responses {
                            samples.record_us(per_us);
                            counters.record_response(resp);
                        }
                    }
                    Err(_) => {
                        counters
                            .transport_errors
                            .fetch_add(batch_len as u64, Ordering::Relaxed);
                    }
                }
                sent += batch_len;
            }
            // First connect is expected; anything beyond it is a
            // mid-run reconnect worth surfacing.
            reconnects.fetch_add(client.reconnects.saturating_sub(1), Ordering::Relaxed);
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    (
        samples,
        counters,
        started.elapsed().as_secs_f64(),
        reconnects.load(Ordering::Relaxed),
    )
}

fn main() -> ExitCode {
    let flags = Flags::from_env();
    if flags.switch("--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let config = match parse_flags(&flags) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (threads, requests) = (config.threads, config.requests);

    // Optionally boot the server in-process (ephemeral port, drained on exit).
    let spawned = if config.spawn {
        let serve_config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        };
        match Server::start(&serve_config) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("loadgen: failed to spawn server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr: SocketAddr = match spawned {
        Some(ref server) => server.local_addr(),
        None => match config
            .addr_flag
            .to_socket_addrs()
            .ok()
            .and_then(|mut a| a.next())
        {
            Some(addr) => addr,
            None => {
                eprintln!("loadgen: cannot resolve {:?}\n{USAGE}", config.addr_flag);
                return ExitCode::from(2);
            }
        },
    };
    println!("loadgen: driving http://{addr} with {threads} threads x {requests} requests");

    // Cold pass: first touch of each expensive endpoint, sequentially, while
    // the cache has never seen them.
    let cold = Samples::default();
    let cold_connects = Samples::default();
    let cold_counters = Counters::default();
    for path in &MIX[..EXPENSIVE] {
        if let Err(e) = timed_fetch(addr, path, &cold, &cold_connects, &cold_counters) {
            eprintln!("loadgen: cold {path}: {e}");
        }
    }

    // Warm per-connection pass: concurrent mixed traffic, a fresh TCP
    // connection per request; every expensive query repeats the cold pass,
    // so it should be served from cache.
    let warm = Arc::new(Samples::default());
    let warm_connects = Arc::new(Samples::default());
    let warm_characterize = Arc::new(Samples::default());
    let per_endpoint = Arc::new(PerEndpoint::default());
    let counters = Arc::new(Counters::default());
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads.max(1) {
        let warm = Arc::clone(&warm);
        let warm_connects = Arc::clone(&warm_connects);
        let warm_characterize = Arc::clone(&warm_characterize);
        let per_endpoint = Arc::clone(&per_endpoint);
        let counters = Arc::clone(&counters);
        handles.push(std::thread::spawn(move || {
            for i in 0..requests {
                let path = MIX[(t + i) % MIX.len()];
                let samples: &Samples = if path.starts_with("/v1/characterize") {
                    &warm_characterize
                } else {
                    &warm
                };
                let start = Instant::now();
                let result = timed_fetch(addr, path, samples, &warm_connects, &counters);
                let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                let endpoint = path.split('?').next().unwrap_or(path);
                let ok = matches!(&result, Ok(resp) if (200..300).contains(&resp.status));
                per_endpoint.record(endpoint, us, ok);
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = started.elapsed().as_secs_f64();

    // Warm keep-alive pass: same mix, persistent pipelined connections.
    let keepalive = if config.keep_alive {
        Some(keepalive_pass(
            addr,
            threads,
            requests,
            config.pipeline_depth,
        ))
    } else {
        None
    };
    drop(spawned); // graceful drain before reporting

    let total = (threads.max(1) * requests) as u64;
    let throughput = if elapsed > 0.0 {
        total as f64 / elapsed
    } else {
        0.0
    };
    let cold_sorted = cold.sorted_us();
    let warm_sorted = warm.sorted_us();
    let warm_connect_sorted = warm_connects.sorted_us();
    let warm_char_sorted = warm_characterize.sorted_us();
    let cold_p50 = quantile_us(&cold_sorted, 0.5);
    let warm_char_p50 = quantile_us(&warm_char_sorted, 0.5);
    let speedup = if warm_char_p50 > 0 {
        cold_p50 as f64 / warm_char_p50 as f64
    } else {
        f64::INFINITY
    };

    println!(
        "\ncold pass ({} expensive endpoints, cache empty):",
        EXPENSIVE
    );
    println!(
        "  p50 {} us   max {} us",
        cold_p50,
        cold_sorted.last().copied().unwrap_or(0)
    );
    println!(
        "warm per-connection pass ({total} requests in {elapsed:.2}s, {throughput:.0} req/s):"
    );
    println!(
        "  characterize p50 {} us   all-endpoints p50 {} us  p95 {} us  p99 {} us",
        warm_char_p50,
        quantile_us(&warm_sorted, 0.5),
        quantile_us(&warm_sorted, 0.95),
        quantile_us(&warm_sorted, 0.99),
    );
    println!(
        "  connect p50 {} us  p99 {} us (reported apart from service time)",
        quantile_us(&warm_connect_sorted, 0.5),
        quantile_us(&warm_connect_sorted, 0.99),
    );
    println!("  cold/warm characterize p50 speedup: {speedup:.0}x");
    println!(
        "  ok {}  4xx {}  5xx {}  transport errors {}  cache hits {}",
        counters.ok.load(Ordering::Relaxed),
        counters.client_errors.load(Ordering::Relaxed),
        counters.server_errors.load(Ordering::Relaxed),
        counters.transport_errors.load(Ordering::Relaxed),
        counters.cache_hits.load(Ordering::Relaxed),
    );
    if let Some((ka_samples, ka_counters, ka_elapsed, ka_reconnects)) = &keepalive {
        let ka_sorted = ka_samples.sorted_us();
        let ka_total = ka_sorted.len() as u64;
        let ka_throughput = if *ka_elapsed > 0.0 {
            ka_total as f64 / ka_elapsed
        } else {
            0.0
        };
        println!(
            "warm keep-alive pass ({ka_total} requests in {ka_elapsed:.2}s, depth {}): {ka_throughput:.0} req/s",
            config.pipeline_depth.max(1),
        );
        println!(
            "  p50 {} us  p95 {} us  p99 {} us  reconnects {ka_reconnects}",
            quantile_us(&ka_sorted, 0.5),
            quantile_us(&ka_sorted, 0.95),
            quantile_us(&ka_sorted, 0.99),
        );
        println!(
            "  ok {}  4xx {}  5xx {}  transport errors {}  cache hits {}",
            ka_counters.ok.load(Ordering::Relaxed),
            ka_counters.client_errors.load(Ordering::Relaxed),
            ka_counters.server_errors.load(Ordering::Relaxed),
            ka_counters.transport_errors.load(Ordering::Relaxed),
            ka_counters.cache_hits.load(Ordering::Relaxed),
        );
    }

    if let Some(path) = &config.summary_path {
        let mut doc = Json::obj()
            .set("threads", threads)
            .set("requests_per_thread", requests)
            .set("total_requests", total)
            .set("elapsed_seconds", elapsed)
            .set("throughput_rps", throughput)
            .set(
                "cold",
                Json::obj()
                    .set("p50_us", cold_p50)
                    .set("max_us", cold_sorted.last().copied().unwrap_or(0)),
            )
            .set(
                "warm",
                Json::obj()
                    .set("characterize_p50_us", warm_char_p50)
                    .set("p50_us", quantile_us(&warm_sorted, 0.5))
                    .set("p95_us", quantile_us(&warm_sorted, 0.95))
                    .set("p99_us", quantile_us(&warm_sorted, 0.99))
                    .set("max_us", warm_sorted.last().copied().unwrap_or(0)),
            )
            .set("connect", quantiles_json(&warm_connect_sorted))
            .set("cold_over_warm_characterize_p50", speedup)
            .set("per_endpoint", per_endpoint.to_json())
            .set("responses", counters.to_json());
        if let Some((ka_samples, ka_counters, ka_elapsed, ka_reconnects)) = &keepalive {
            let ka_sorted = ka_samples.sorted_us();
            let ka_total = ka_sorted.len() as u64;
            let ka_throughput = if *ka_elapsed > 0.0 {
                ka_total as f64 / ka_elapsed
            } else {
                0.0
            };
            doc = doc.set(
                "warm_keepalive",
                Json::obj()
                    .set("pipeline_depth", config.pipeline_depth.max(1))
                    .set("total_requests", ka_total)
                    .set("elapsed_seconds", *ka_elapsed)
                    .set("throughput_rps", ka_throughput)
                    .set("reconnects", *ka_reconnects)
                    .set("p50_us", quantile_us(&ka_sorted, 0.5))
                    .set("p95_us", quantile_us(&ka_sorted, 0.95))
                    .set("p99_us", quantile_us(&ka_sorted, 0.99))
                    .set("max_us", ka_sorted.last().copied().unwrap_or(0))
                    .set("responses", ka_counters.to_json()),
            );
        }
        if let Err(e) = std::fs::write(path, doc.render() + "\n") {
            eprintln!("loadgen: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  summary -> {path}");
    }

    let mut failed = counters.failed();
    if let Some((_, ka_counters, ..)) = &keepalive {
        failed += ka_counters.failed();
    }
    if failed > 0 {
        eprintln!("loadgen: {failed} failed requests");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
