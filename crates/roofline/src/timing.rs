//! Roofline step-time estimation (paper §5.2.2).

use cgraph::NumericStats;
use serde::{Deserialize, Serialize};

use crate::accel::Accelerator;

/// Which side of the roofline bounds a workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Bound {
    /// Limited by compute throughput.
    Compute,
    /// Limited by memory bandwidth.
    Memory,
}

/// A roofline time estimate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RooflineTime {
    /// Estimated execution time, seconds.
    pub seconds: f64,
    /// Binding resource.
    pub bound: Bound,
    /// Achieved fraction of *peak* compute throughput
    /// (the paper's "algorithmic FLOP utilization").
    pub flop_utilization: f64,
}

/// Best-case roofline execution time of a workload with the given
/// algorithmic FLOPs and bytes (paper Eq. in §5.2.2):
/// `rt = max(c / 0.8·x_c, a / 0.7·x_a)`.
pub fn roofline_time(flops: f64, bytes: f64, accel: &Accelerator) -> RooflineTime {
    assert!(flops >= 0.0 && bytes >= 0.0);
    let t_c = flops / accel.achievable_flops();
    let t_m = bytes / accel.achievable_bw();
    let (seconds, bound) = if t_c >= t_m {
        (t_c, Bound::Compute)
    } else {
        (t_m, Bound::Memory)
    };
    let flop_utilization = if seconds > 0.0 {
        flops / (seconds * accel.peak_flops)
    } else {
        0.0
    };
    RooflineTime {
        seconds,
        bound,
        flop_utilization,
    }
}

/// Roofline time of a whole training step from its cost summary.
pub fn step_time(stats: &NumericStats, accel: &Accelerator) -> RooflineTime {
    roofline_time(stats.flops, stats.bytes, accel)
}

/// Training time for one pass over `dataset_samples` samples when each step
/// consumes `batch` samples and takes `step_seconds`.
pub fn epoch_seconds(dataset_samples: f64, batch: f64, step_seconds: f64) -> f64 {
    assert!(batch > 0.0 && dataset_samples >= 0.0);
    (dataset_samples / batch) * step_seconds
}

/// Convert seconds to days (the paper's epoch-time unit).
pub fn to_days(seconds: f64) -> f64 {
    seconds / 86_400.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_at_high_intensity() {
        let a = Accelerator::v100_like();
        // intensity 100 FLOP/B >> ridge 19.9 → compute bound at 80% of peak.
        let r = roofline_time(100e12, 1e12, &a);
        assert_eq!(r.bound, Bound::Compute);
        assert!((r.flop_utilization - 0.8).abs() < 1e-12);
        assert!((r.seconds - 100e12 / (0.8 * 15.67e12)).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_at_low_intensity() {
        let a = Accelerator::v100_like();
        // intensity 1 FLOP/B << ridge → memory bound, poor utilization.
        let r = roofline_time(1e12, 1e12, &a);
        assert_eq!(r.bound, Bound::Memory);
        assert!(r.flop_utilization < 0.1);
    }

    #[test]
    fn crossover_at_achievable_ridge() {
        let a = Accelerator::v100_like();
        let ridge = a.achievable_ridge_point();
        let below = roofline_time(0.99 * ridge * 1e9, 1e9, &a);
        let above = roofline_time(1.01 * ridge * 1e9, 1e9, &a);
        assert_eq!(below.bound, Bound::Memory);
        assert_eq!(above.bound, Bound::Compute);
    }

    #[test]
    fn epoch_time_scales_inverse_batch() {
        let one = epoch_seconds(1e6, 32.0, 0.1);
        let two = epoch_seconds(1e6, 64.0, 0.1);
        assert!((one - 2.0 * two).abs() < 1e-9);
        assert!((to_days(86_400.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table3_step_times_from_paper_flop_counts() {
        // Table 3 step seconds follow from its TFLOPs/step via the roofline:
        // speech 72 TFLOPs → 5.8 s; word LM 1444 TFLOPs → 115 s.
        let a = Accelerator::v100_like();
        let speech = roofline_time(72e12, 2.8e12, &a);
        assert!(
            (speech.seconds - 5.8).abs() < 0.3,
            "step {}",
            speech.seconds
        );
        let wordlm = roofline_time(1444e12, 41.5e12, &a);
        assert!(
            (wordlm.seconds - 115.0).abs() < 3.0,
            "step {}",
            wordlm.seconds
        );
    }

    #[test]
    fn table3_resnet_epoch_band() {
        // ResNet row: 28 TFLOPs/step at subbatch 32, 2.3 s/step, 84 days for
        // a 103M-image epoch (each batch element is one sample).
        let a = Accelerator::v100_like();
        let r = roofline_time(28e12, 0.4e12, &a);
        assert!((r.seconds - 2.3).abs() < 0.2, "step {}", r.seconds);
        let days = to_days(epoch_seconds(103e6, 32.0, r.seconds));
        assert!((days - 84.0).abs() < 8.0, "epoch days {days}");
    }
}
