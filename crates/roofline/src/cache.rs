//! Cache-hierarchy-aware memory-traffic models for large matrix multiplies
//! (paper §6.1).
//!
//! Algorithmic bytes undercount the traffic of a large matmul: a tiled
//! implementation must re-stream portions of the inputs from off-chip memory
//! whenever the working set exceeds the on-chip cache. The paper models
//! "a common, tiled matrix multiply implementation" (citing Coleman &
//! McKinley 1995) and reports that it cuts the word-LM case study's
//! algorithmic FLOP utilization from 80% to 46%.
//!
//! Three models are provided, from optimistic to faithful-to-the-paper:
//!
//! * [`CacheModel::Algorithmic`] — each operand byte touched exactly once.
//! * [`CacheModel::SquareTile`] — optimal square tiling with three `t×t`
//!   tiles resident (`t = √(Z/3e)`): inputs are re-streamed once per tile
//!   row/column of the output. This is a lower bound on a good GEMM.
//! * [`CacheModel::PanelStream`] — the "common implementation": the output
//!   is computed in row panels of height `t_m = Z/(2·k·e)` (a panel of A
//!   plus streaming room must fit in cache); all of B is re-streamed for
//!   every panel, i.e. `⌈m/t_m⌉` times. The symmetric column-panel schedule
//!   is also evaluated and the cheaper of the two is charged.

use cgraph::{Graph, NumericStats, Op, OpKind};
use serde::{Deserialize, Serialize};
use symath::{Bindings, UnboundSymbol};

use crate::accel::Accelerator;
use crate::timing::{roofline_time, RooflineTime};

/// Which memory-traffic model to charge matmuls with.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CacheModel {
    /// Paper §2.1 algorithmic bytes (no cache effects).
    Algorithmic,
    /// Optimal square tiling (optimistic bound).
    SquareTile,
    /// Common panel-streaming GEMM (the paper's §6.1 model).
    PanelStream,
}

/// Algorithmic element traffic of an `m×k · k×n` matmul.
fn algorithmic_elems(m: f64, k: f64, n: f64) -> f64 {
    m * k + k * n + 2.0 * m * n
}

/// Square-tile traffic in bytes: `t = √(Z/3e)`; A re-streamed per output
/// tile column, B per output tile row.
pub fn matmul_traffic_square(m: f64, k: f64, n: f64, cache_bytes: f64, e: f64) -> f64 {
    assert!(m >= 1.0 && k >= 1.0 && n >= 1.0 && cache_bytes > 0.0 && e > 0.0);
    let t = (cache_bytes / (3.0 * e)).sqrt().max(1.0);
    let tiled = 2.0 * m * n + m * k * (n / t).ceil() + k * n * (m / t).ceil();
    e * tiled.max(algorithmic_elems(m, k, n))
}

/// Panel-streaming traffic in bytes (the paper's model): the GEMM runs over
/// contraction blocks of depth `k_c = min(k, √(Z/e))` (the depth that
/// balances stationary-panel re-streaming against output revisits); within a
/// block, resident panels of height `t = Z/(2·k_c·e)` hold one operand while
/// the other streams. The cheaper of the row-panel and column-panel
/// schedules is charged:
///
/// ```text
/// row: m·k + ⌈m/t⌉·k·n + 2·m·n·⌈k/k_c⌉
/// col: k·n + ⌈n/t⌉·m·k + 2·m·n·⌈k/k_c⌉
/// ```
pub fn matmul_traffic_panel(m: f64, k: f64, n: f64, cache_bytes: f64, e: f64) -> f64 {
    assert!(m >= 1.0 && k >= 1.0 && n >= 1.0 && cache_bytes > 0.0 && e > 0.0);
    let k_c = k.min((cache_bytes / e).sqrt()).max(1.0);
    let panel = (cache_bytes / (2.0 * k_c * e)).floor().max(1.0);
    let out_revisits = 2.0 * m * n * (k / k_c).ceil();
    let row_schedule = m * k + (m / panel).ceil() * k * n + out_revisits;
    let col_schedule = k * n + (n / panel).ceil() * m * k + out_revisits;
    e * row_schedule
        .min(col_schedule)
        .max(algorithmic_elems(m, k, n))
}

/// Traffic under the selected model.
pub fn matmul_traffic(m: f64, k: f64, n: f64, cache_bytes: f64, e: f64, model: CacheModel) -> f64 {
    match model {
        CacheModel::Algorithmic => e * algorithmic_elems(m, k, n),
        CacheModel::SquareTile => matmul_traffic_square(m, k, n, cache_bytes, e),
        CacheModel::PanelStream => matmul_traffic_panel(m, k, n, cache_bytes, e),
    }
}

/// Extract `(m, k, n)` of a matmul-like op under `bindings` (batch dims
/// folded into `m`); `None` for non-matmul ops.
fn matmul_dims(
    graph: &Graph,
    op: &Op,
    bindings: &Bindings,
) -> Result<Option<(f64, f64, f64)>, UnboundSymbol> {
    let (ta, tb, batched) = match op.kind {
        OpKind::MatMul { ta, tb } => (ta, tb, false),
        OpKind::BatchMatMul { ta, tb } => (ta, tb, true),
        _ => return Ok(None),
    };
    let a = &graph.tensor(op.inputs[0]).shape;
    let b = &graph.tensor(op.inputs[1]).shape;
    let r = a.rank();
    let dim = |s: &cgraph::Shape, i: usize| s.dim(i).eval(bindings);
    let (mut m, k) = if ta {
        (dim(a, r - 1)?, dim(a, r - 2)?)
    } else {
        (dim(a, r - 2)?, dim(a, r - 1)?)
    };
    let rb = b.rank();
    let n = if tb { dim(b, rb - 2)? } else { dim(b, rb - 1)? };
    if batched {
        for i in 0..r - 2 {
            m *= dim(a, i)?;
        }
    }
    Ok(Some((m, k, n)))
}

/// Bytes accessed by `op`, with matmuls charged under `model`.
pub fn op_bytes_with_cache(
    graph: &Graph,
    op: &Op,
    bindings: &Bindings,
    accel: &Accelerator,
    model: CacheModel,
) -> Result<f64, UnboundSymbol> {
    let (r, w) = graph.op_bytes(op);
    let algorithmic = r.eval(bindings)? + w.eval(bindings)?;
    if model == CacheModel::Algorithmic {
        return Ok(algorithmic);
    }
    if let Some((m, k, n)) = matmul_dims(graph, op, bindings)? {
        let e = graph.tensor(op.outputs[0]).dtype.size_bytes() as f64;
        let modeled = matmul_traffic(m, k, n, accel.cache_bytes, e, model);
        Ok(modeled.max(algorithmic))
    } else {
        Ok(algorithmic)
    }
}

/// Whole-graph cost summary with matmul bytes charged under `model`.
pub fn cache_aware_stats(
    graph: &Graph,
    bindings: &Bindings,
    accel: &Accelerator,
    model: CacheModel,
) -> Result<NumericStats, UnboundSymbol> {
    let mut stats = graph.stats().eval(bindings)?;
    let mut extra = 0.0;
    for op in graph.ops() {
        let (r, w) = graph.op_bytes(op);
        let algorithmic = r.eval(bindings)? + w.eval(bindings)?;
        let modeled = op_bytes_with_cache(graph, op, bindings, accel, model)?;
        extra += modeled - algorithmic;
    }
    stats.bytes += extra;
    stats.bytes_read += extra; // re-streaming is read traffic
    Ok(stats)
}

/// Per-op roofline execution time of a training step: each op is bounded by
/// compute or memory individually and the times are summed (sequential
/// execution). This is the paper's "cache-hierarchy-aware" timing when
/// `model = PanelStream` (Table 5 row 2).
pub fn per_op_step_time(
    graph: &Graph,
    bindings: &Bindings,
    accel: &Accelerator,
    model: CacheModel,
) -> Result<RooflineTime, UnboundSymbol> {
    let _span = obs::span("roofline.per_op_step_time")
        .with_arg("graph", graph.name.as_str())
        .with_arg("ops", graph.ops().len())
        .with_arg("cache_model", format!("{model:?}"));
    let mut seconds = 0.0;
    let mut total_flops = 0.0;
    for op in graph.ops() {
        let flops = graph.op_flops(op).eval(bindings)?;
        let bytes = op_bytes_with_cache(graph, op, bindings, accel, model)?;
        let t = roofline_time(flops, bytes, accel);
        seconds += t.seconds;
        total_flops += flops;
    }
    let flop_utilization = if seconds > 0.0 {
        total_flops / (seconds * accel.peak_flops)
    } else {
        0.0
    };
    let bound = if flop_utilization >= 0.5 * accel.achievable_flops_frac {
        crate::timing::Bound::Compute
    } else {
        crate::timing::Bound::Memory
    };
    Ok(RooflineTime {
        seconds,
        bound,
        flop_utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matmul_pays_only_algorithmic_traffic() {
        // Everything fits in a 6MB cache: 100×100 matrices are 40KB each.
        for model in [CacheModel::SquareTile, CacheModel::PanelStream] {
            let bytes = matmul_traffic(100.0, 100.0, 100.0, 6e6, 4.0, model);
            assert_eq!(bytes, 4.0 * (100.0 * 100.0 * 4.0), "{model:?}");
        }
    }

    #[test]
    fn large_square_matmul_restreams_under_both_models() {
        let m = 16384.0;
        let algorithmic = 4.0 * m * m * 4.0;
        for model in [CacheModel::SquareTile, CacheModel::PanelStream] {
            let bytes = matmul_traffic(m, m, m, 6e6, 4.0, model);
            assert!(bytes > 5.0 * algorithmic, "{model:?}: {bytes}");
        }
    }

    #[test]
    fn all_models_bounded_below_by_algorithmic() {
        for &(m, k, n) in &[
            (128.0, 8192.0, 32768.0),
            (128.0, 32768.0, 8192.0),
            (8192.0, 8192.0, 8192.0),
            (10240.0, 1024.0, 793471.0),
            (1.0, 1.0, 1.0),
        ] {
            let alg = 4.0 * algorithmic_elems(m, k, n);
            let sq = matmul_traffic_square(m, k, n, 6e6, 4.0);
            let pn = matmul_traffic_panel(m, k, n, 6e6, 4.0);
            assert!(sq >= alg, "({m},{k},{n}): square {sq} < algorithmic {alg}");
            assert!(pn >= alg, "({m},{k},{n}): panel {pn} < algorithmic {alg}");
        }
    }

    #[test]
    fn frontier_square_matmul_pays_order_of_magnitude_restreaming() {
        // A 16384³ matmul (frontier hidden-dim scale at large batch): the
        // working set exceeds the 6MB cache by ~500×, and the panel model
        // charges >10× the algorithmic traffic (the paper's "streaming
        // inputs from memory multiple times", §6.2.3).
        let a = Accelerator::v100_like();
        let m = 16384.0;
        let alg = 4.0 * algorithmic_elems(m, m, m);
        let panel = matmul_traffic_panel(m, m, m, a.cache_bytes, 4.0);
        assert!(panel > 10.0 * alg, "panel {panel} vs algorithmic {alg}");
        // Doubling the cache proportionally reduces re-streaming (§6.2.3's
        // argument for larger on-chip caches).
        let bigger = matmul_traffic_panel(m, m, m, 2.0 * a.cache_bytes, 4.0);
        assert!(
            bigger < 0.8 * panel,
            "2× cache: {bigger} should be well below {panel}"
        );
    }

    #[test]
    fn skinny_batch_matmuls_stay_near_algorithmic() {
        // [128 × 8192]·[8192 × 32768] — a subbatch-128 LSTM gate matmul.
        // With contraction blocking the resident panel covers all 128 rows,
        // so no operand is re-streamed (CNN/small-batch regime).
        let (m, k, n) = (128.0, 8192.0, 32768.0);
        let alg = 4.0 * algorithmic_elems(m, k, n);
        let panel = matmul_traffic_panel(m, k, n, 6e6, 4.0);
        assert!(
            panel < 1.5 * alg,
            "panel {panel} should stay near algorithmic {alg}"
        );
    }

    #[test]
    fn traffic_decreases_with_cache_size() {
        let m = 8192.0;
        for model in [CacheModel::SquareTile, CacheModel::PanelStream] {
            let small = matmul_traffic(m, m, m, 1e6, 4.0, model);
            let big = matmul_traffic(m, m, m, 64e6, 4.0, model);
            assert!(big < small, "{model:?}");
        }
    }

    #[test]
    fn per_op_time_ordering_across_models() {
        use modelzoo::{Domain, ModelConfig};
        let m = ModelConfig::default_for(Domain::WordLm)
            .with_target_params(30_000_000)
            .build_training();
        let a = Accelerator::v100_like();
        let bindings = m.bindings_with_batch(32);
        let alg = per_op_step_time(&m.graph, &bindings, &a, CacheModel::Algorithmic).unwrap();
        let sq = per_op_step_time(&m.graph, &bindings, &a, CacheModel::SquareTile).unwrap();
        let pn = per_op_step_time(&m.graph, &bindings, &a, CacheModel::PanelStream).unwrap();
        // Both cache-aware models only ever add traffic over algorithmic.
        assert!(alg.seconds <= sq.seconds + 1e-12);
        assert!(alg.seconds <= pn.seconds + 1e-12);
        assert!(pn.flop_utilization <= alg.flop_utilization + 1e-12);
    }

    #[test]
    fn cache_aware_stats_only_add_traffic() {
        use modelzoo::{Domain, ModelConfig};
        let m = ModelConfig::default_for(Domain::WordLm)
            .with_target_params(20_000_000)
            .build_training();
        let a = Accelerator::v100_like();
        let bindings = m.bindings_with_batch(32);
        let plain = m.graph.stats().eval(&bindings).unwrap();
        let aware = cache_aware_stats(&m.graph, &bindings, &a, CacheModel::PanelStream).unwrap();
        assert!(aware.bytes >= plain.bytes);
        assert_eq!(aware.flops, plain.flops);
    }
}
