//! Host-memory swapping model (paper §5.1, §6.2.3).
//!
//! When a training step's footprint exceeds accelerator memory, frameworks
//! either fail or migrate tensors to host memory over the host link — the
//! paper observes TensorFlow start swapping at 80% of its 12 GB GPU
//! (Figure 10) and calls migration "an expensive operation". This module
//! prices that choice: every byte beyond the usable capacity must cross the
//! host link twice per step (out and back in), serialized with compute in
//! the worst case and overlapped in the best case.

use serde::{Deserialize, Serialize};

use crate::accel::Accelerator;

/// Host-link configuration for swap-traffic pricing.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostLink {
    /// Host↔accelerator bandwidth, B/s (PCIe 3.0 ×16 ≈ 16 GB/s).
    pub bandwidth: f64,
    /// Fraction of accelerator memory usable before swapping begins
    /// (TensorFlow: 0.8).
    pub usable_fraction: f64,
}

impl Default for HostLink {
    fn default() -> HostLink {
        HostLink {
            bandwidth: 16e9,
            usable_fraction: 0.8,
        }
    }
}

/// Swap analysis of one training step on one accelerator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SwapReport {
    /// Bytes that do not fit in usable accelerator memory.
    pub spilled_bytes: f64,
    /// Host-link transfer time per step (each spilled byte leaves and
    /// returns), seconds.
    pub transfer_seconds: f64,
    /// Step time when transfers serialize with compute.
    pub serialized_step_seconds: f64,
    /// Step time with perfect compute/transfer overlap
    /// (`max(compute, transfer)`).
    pub overlapped_step_seconds: f64,
    /// Slowdown factor vs the no-swap step (serialized).
    pub slowdown: f64,
}

/// Price the swapping a step of `footprint_bytes` and `compute_seconds`
/// incurs on `accel` through `link`.
pub fn swap_report(
    footprint_bytes: f64,
    compute_seconds: f64,
    accel: &Accelerator,
    link: &HostLink,
) -> SwapReport {
    assert!(footprint_bytes >= 0.0 && compute_seconds >= 0.0);
    let usable = accel.mem_capacity * link.usable_fraction;
    let spilled_bytes = (footprint_bytes - usable).max(0.0);
    obs::recorder().counter("roofline.swap_spilled_bytes", spilled_bytes);
    let transfer_seconds = 2.0 * spilled_bytes / link.bandwidth;
    let serialized = compute_seconds + transfer_seconds;
    SwapReport {
        spilled_bytes,
        transfer_seconds,
        serialized_step_seconds: serialized,
        overlapped_step_seconds: compute_seconds.max(transfer_seconds),
        slowdown: if compute_seconds > 0.0 {
            serialized / compute_seconds
        } else {
            1.0
        },
    }
}

/// Minimum model-parallel ways needed so each shard's footprint fits in
/// usable accelerator memory without swapping (the paper's §6.2: the word
/// LM needs "at least 4 accelerators" per worker at 113.8 GB / 32 GB).
pub fn min_shards_to_fit(footprint_bytes: f64, accel: &Accelerator, link: &HostLink) -> u64 {
    let usable = accel.mem_capacity * link.usable_fraction;
    assert!(usable > 0.0);
    (footprint_bytes / usable).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accel() -> Accelerator {
        Accelerator::v100_like()
    }

    #[test]
    fn fitting_step_pays_nothing() {
        let r = swap_report(10e9, 1.0, &accel(), &HostLink::default());
        assert_eq!(r.spilled_bytes, 0.0);
        assert_eq!(r.serialized_step_seconds, 1.0);
        assert_eq!(r.slowdown, 1.0);
    }

    #[test]
    fn spill_begins_at_eighty_percent() {
        // 32 GiB × 0.8 ≈ 27.5 GB usable.
        let a = accel();
        let link = HostLink::default();
        let usable = a.mem_capacity * 0.8;
        let below = swap_report(usable - 1.0, 1.0, &a, &link);
        let above = swap_report(usable + 1e9, 1.0, &a, &link);
        assert_eq!(below.spilled_bytes, 0.0);
        assert!((above.spilled_bytes - 1e9).abs() < 1.0);
    }

    #[test]
    fn case_study_word_lm_swapping_is_ruinous() {
        // LSTM-p: ~107 GB footprint, ~10 s compute step. Swapping 80 GB
        // through 16 GB/s doubles the step time — the paper's argument for
        // model parallelism instead.
        let r = swap_report(107e9, 10.0, &accel(), &HostLink::default());
        assert!(r.spilled_bytes > 75e9);
        assert!(r.slowdown > 1.8, "slowdown {}", r.slowdown);
        // Even perfect overlap leaves the link busy almost the whole step.
        assert!(r.transfer_seconds > 9.0, "transfer {}", r.transfer_seconds);
        assert!(r.overlapped_step_seconds >= 10.0);
    }

    #[test]
    fn min_shards_matches_paper_case_study() {
        // Paper §6.2: 113.8 GB per step / 32 GB per accelerator → 4 ways.
        // With the 80%-usable rule the requirement rises to 5.
        let a = accel();
        let strict = HostLink {
            usable_fraction: 1.0,
            ..HostLink::default()
        };
        assert_eq!(min_shards_to_fit(113.8e9, &a, &strict), 4);
        assert_eq!(min_shards_to_fit(113.8e9, &a, &HostLink::default()), 5);
        assert_eq!(min_shards_to_fit(1e9, &a, &strict), 1);
    }

    #[test]
    fn faster_link_reduces_slowdown() {
        let a = accel();
        let slow = HostLink {
            bandwidth: 16e9,
            ..HostLink::default()
        };
        let fast = HostLink {
            bandwidth: 64e9,
            ..HostLink::default()
        };
        let rs = swap_report(100e9, 5.0, &a, &slow);
        let rf = swap_report(100e9, 5.0, &a, &fast);
        assert!(rf.serialized_step_seconds < rs.serialized_step_seconds);
    }
}
