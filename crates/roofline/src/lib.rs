//! `roofline` — the paper's hardware performance model: the Table 4 target
//! accelerator, roofline step-time estimation (§5.2), and the
//! cache-hierarchy-aware matmul traffic model of the §6 case study.
//!
//! ```
//! use roofline::{Accelerator, roofline_time, Bound};
//!
//! let accel = Accelerator::v100_like();
//! // Table 3, word LM row: 1444 TFLOPs and 41.5 TB per step.
//! let t = roofline_time(1444e12, 41.5e12, &accel);
//! assert_eq!(t.bound, Bound::Compute);
//! assert!((t.seconds - 115.0).abs() < 3.0); // paper: 115 s/step
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod accel;
mod cache;
mod swap;
mod timing;

pub use accel::{Accelerator, Precision};
pub use cache::{
    cache_aware_stats, matmul_traffic, matmul_traffic_panel, matmul_traffic_square,
    op_bytes_with_cache, per_op_step_time, CacheModel,
};
pub use swap::{min_shards_to_fit, swap_report, HostLink, SwapReport};
pub use timing::{epoch_seconds, roofline_time, step_time, to_days, Bound, RooflineTime};
