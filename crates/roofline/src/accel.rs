//! Target accelerator descriptions: the paper's Table 4 part plus a small
//! registry of later accelerator generations for plan search.
//!
//! The paper prices everything against one V100-class device. The plan-search
//! subsystem ranks hardware choices, so this module also carries stylized
//! A100-like, H100-like, and TPU-v3-like profiles — not spec-sheet
//! transcriptions, but internally consistent `(FLOP/s per dtype, memory
//! BW/capacity, interconnect BW)` tuples selectable by registry key.

use serde::{Deserialize, Serialize};

/// Numeric precision a kernel runs at, for per-dtype peak lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE double precision.
    F64,
    /// IEEE single precision (the paper's baseline; all roofline math uses
    /// this peak unless stated otherwise).
    F32,
    /// Half/bfloat16 matrix-engine precision (tensor cores, MXU).
    F16,
}

/// An accelerator configuration for roofline projections.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    /// Human-readable name.
    pub name: String,
    /// Peak 32-bit compute throughput, FLOP/s (`x_c`).
    pub peak_flops: f64,
    /// Peak 16-bit (tensor-core / MXU) compute throughput, FLOP/s.
    pub peak_flops_f16: f64,
    /// Peak 64-bit compute throughput, FLOP/s.
    pub peak_flops_f64: f64,
    /// Peak off-chip memory bandwidth, B/s (`x_a`).
    pub peak_mem_bw: f64,
    /// On-chip cache capacity, bytes.
    pub cache_bytes: f64,
    /// Off-chip memory capacity, bytes.
    pub mem_capacity: f64,
    /// Inter-device link bandwidth, B/s.
    pub interconnect_bw: f64,
    /// Fraction of peak FLOP/s that is achievable (paper: 0.8).
    pub achievable_flops_frac: f64,
    /// Fraction of peak bandwidth that is achievable (paper: 0.7).
    pub achievable_bw_frac: f64,
}

fn gib(x: f64) -> f64 {
    x * (1u64 << 30) as f64
}

fn mib(x: f64) -> f64 {
    x * (1u64 << 20) as f64
}

impl Accelerator {
    /// Registry keys of the built-in profiles, in canonical order.
    pub const KEYS: [&'static str; 4] = ["v100", "a100", "h100", "tpu-v3"];

    /// The paper's Table 4 configuration (similar to an NVIDIA V100v2).
    ///
    /// Datasheet anchors (Tesla V100 SXM2, NVIDIA V100 datasheet /
    /// whitepaper WP-08608): 15.7 TFLOP/s fp32, 125 TFLOP/s tensor fp16,
    /// 7.8 TFLOP/s fp64, 900 GB/s HBM2, 6 MiB L2, up to 32 GB capacity,
    /// NVLink 2.0. Table 4 prices the memory system at 898 GB/s and the
    /// interconnect at 56 GB/s (6 links' worth of per-direction NVLink
    /// payload rather than the marketing 300 GB/s aggregate), and this
    /// profile follows the paper where the two disagree.
    pub fn v100_like() -> Accelerator {
        Accelerator {
            name: "V100-like (Table 4)".into(),
            peak_flops: 15.67e12,
            peak_flops_f16: 125e12,
            peak_flops_f64: 7.8e12,
            peak_mem_bw: 898e9,
            cache_bytes: mib(6.0),
            mem_capacity: gib(32.0),
            interconnect_bw: 56e9,
            achievable_flops_frac: 0.8,
            achievable_bw_frac: 0.7,
        }
    }

    /// An A100-80GB-class profile: ~1.25× the V100's f32 peak, 2.3× the
    /// bandwidth, 2.5× the capacity, and a fatter NVLink.
    ///
    /// Datasheet anchors (A100 80GB SXM, NVIDIA A100 datasheet): 19.5
    /// TFLOP/s fp32, 312 TFLOP/s tensor bf16 (dense), 9.7 TFLOP/s fp64,
    /// 2039 GB/s HBM2e, 40 MiB L2, 80 GB capacity, NVLink 3.0 at 600 GB/s
    /// aggregate — carried here as 150 GB/s of usable per-direction
    /// bandwidth to stay consistent with the V100 entry's convention.
    pub fn a100_like() -> Accelerator {
        Accelerator {
            name: "A100-like".into(),
            peak_flops: 19.5e12,
            peak_flops_f16: 312e12,
            peak_flops_f64: 9.7e12,
            peak_mem_bw: 2039e9,
            cache_bytes: mib(40.0),
            mem_capacity: gib(80.0),
            interconnect_bw: 150e9,
            achievable_flops_frac: 0.8,
            achievable_bw_frac: 0.7,
        }
    }

    /// An H100-class profile: the compute-heavy end of the design space the
    /// paper warns about (§6.2.3) — huge matrix-engine peaks over a
    /// comparatively modest capacity.
    ///
    /// Datasheet anchors (H100 SXM, NVIDIA H100 datasheet): 67 TFLOP/s
    /// fp32, 989 TFLOP/s tensor bf16 (dense), 34 TFLOP/s fp64, 3.35 TB/s
    /// HBM3, 50 MiB L2, 80 GB capacity, NVLink 4.0 at 900 GB/s aggregate
    /// — carried as 225 GB/s usable per-direction, same convention as
    /// above.
    pub fn h100_like() -> Accelerator {
        Accelerator {
            name: "H100-like".into(),
            peak_flops: 67e12,
            peak_flops_f16: 989e12,
            peak_flops_f64: 34e12,
            peak_mem_bw: 3350e9,
            cache_bytes: mib(50.0),
            mem_capacity: gib(80.0),
            interconnect_bw: 225e9,
            achievable_flops_frac: 0.8,
            achievable_bw_frac: 0.7,
        }
    }

    /// A TPU-v3-class profile: bfloat16 MXU throughput with a V100-scale
    /// HBM capacity and a strong chip-to-chip interconnect.
    ///
    /// Published anchors (Google Cloud TPU v3 documentation; Jouppi et al.,
    /// CACM 2020): 123 TFLOP/s bf16 per chip, 32 GiB HBM at ~900 GB/s, ICI
    /// links of ~656 Gb/s each (~82 GB/s, carried here as a conservative
    /// 70 GB/s). The MXU has no general fp32/fp64 pipes, so those peaks
    /// are stylized low: fp32 at the vector-unit-scale 16 TFLOP/s, fp64
    /// nominal.
    pub fn tpu_v3_like() -> Accelerator {
        Accelerator {
            name: "TPU-v3-like".into(),
            peak_flops: 16e12,
            peak_flops_f16: 123e12,
            peak_flops_f64: 0.5e12,
            peak_mem_bw: 900e9,
            cache_bytes: mib(32.0),
            mem_capacity: gib(32.0),
            interconnect_bw: 70e9,
            achievable_flops_frac: 0.8,
            achievable_bw_frac: 0.7,
        }
    }

    /// Look up a registry profile by key (see [`Accelerator::KEYS`]).
    pub fn by_key(key: &str) -> Option<Accelerator> {
        match key {
            "v100" => Some(Accelerator::v100_like()),
            "a100" => Some(Accelerator::a100_like()),
            "h100" => Some(Accelerator::h100_like()),
            "tpu-v3" => Some(Accelerator::tpu_v3_like()),
            _ => None,
        }
    }

    /// Every registry profile, keyed, in [`Accelerator::KEYS`] order.
    pub fn registry() -> Vec<(&'static str, Accelerator)> {
        Accelerator::KEYS
            .iter()
            .map(|&k| (k, Accelerator::by_key(k).expect("registry key")))
            .collect()
    }

    /// Peak compute throughput at the given precision.
    pub fn peak_flops_at(&self, precision: Precision) -> f64 {
        match precision {
            Precision::F64 => self.peak_flops_f64,
            Precision::F32 => self.peak_flops,
            Precision::F16 => self.peak_flops_f16,
        }
    }

    /// Achievable compute throughput `0.8·x_c`.
    pub fn achievable_flops(&self) -> f64 {
        self.achievable_flops_frac * self.peak_flops
    }

    /// Achievable memory bandwidth `0.7·x_a`.
    pub fn achievable_bw(&self) -> f64 {
        self.achievable_bw_frac * self.peak_mem_bw
    }

    /// Peak roofline ridge point `x_c / x_a` (FLOP/B).
    pub fn ridge_point(&self) -> f64 {
        self.peak_flops / self.peak_mem_bw
    }

    /// Achievable-throughput ridge point `0.8·x_c / 0.7·x_a` (FLOP/B) — the
    /// operational intensity above which a kernel is compute-bound in
    /// practice.
    pub fn achievable_ridge_point(&self) -> f64 {
        self.achievable_flops() / self.achievable_bw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_ridge_points() {
        let a = Accelerator::v100_like();
        // Paper: ridge 17.4 FLOP/B, rising to 19.9 at achievable throughput.
        assert!((a.ridge_point() - 17.45).abs() < 0.1, "{}", a.ridge_point());
        assert!(
            (a.achievable_ridge_point() - 19.94).abs() < 0.1,
            "{}",
            a.achievable_ridge_point()
        );
    }

    #[test]
    fn achievable_fractions_apply() {
        let a = Accelerator::v100_like();
        assert!((a.achievable_flops() - 0.8 * 15.67e12).abs() < 1.0);
        assert!((a.achievable_bw() - 0.7 * 898e9).abs() < 1.0);
    }

    #[test]
    fn capacity_is_32_gib() {
        let a = Accelerator::v100_like();
        assert_eq!(a.mem_capacity, 32.0 * 1073741824.0);
    }

    #[test]
    fn registry_keys_resolve_and_unknown_is_none() {
        for key in Accelerator::KEYS {
            let a = Accelerator::by_key(key).expect("registry key resolves");
            assert!(a.peak_flops > 0.0 && a.mem_capacity > 0.0, "{key}");
        }
        assert!(Accelerator::by_key("z80").is_none());
        assert!(Accelerator::by_key("V100").is_none(), "keys are exact");
        let reg = Accelerator::registry();
        assert_eq!(reg.len(), Accelerator::KEYS.len());
        assert_eq!(reg[0].1, Accelerator::v100_like());
    }

    #[test]
    fn dtype_peaks_are_ordered() {
        // On every profile the matrix-engine f16 peak dominates f32, which
        // dominates f64.
        for (key, a) in Accelerator::registry() {
            assert!(
                a.peak_flops_at(Precision::F16) > a.peak_flops_at(Precision::F32),
                "{key}"
            );
            assert!(
                a.peak_flops_at(Precision::F32) > a.peak_flops_at(Precision::F64),
                "{key}"
            );
        }
    }

    #[test]
    fn generations_scale_monotonically() {
        let (v100, a100, h100) = (
            Accelerator::v100_like(),
            Accelerator::a100_like(),
            Accelerator::h100_like(),
        );
        assert!(v100.peak_flops < a100.peak_flops && a100.peak_flops < h100.peak_flops);
        assert!(v100.peak_mem_bw < a100.peak_mem_bw && a100.peak_mem_bw < h100.peak_mem_bw);
        assert!(v100.interconnect_bw < a100.interconnect_bw);
        assert!(v100.mem_capacity < a100.mem_capacity);
    }
}
