//! Target accelerator description (paper Table 4).

use serde::{Deserialize, Serialize};

/// An accelerator configuration for roofline projections.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    /// Human-readable name.
    pub name: String,
    /// Peak 32-bit compute throughput, FLOP/s (`x_c`).
    pub peak_flops: f64,
    /// Peak off-chip memory bandwidth, B/s (`x_a`).
    pub peak_mem_bw: f64,
    /// On-chip cache capacity, bytes.
    pub cache_bytes: f64,
    /// Off-chip memory capacity, bytes.
    pub mem_capacity: f64,
    /// Inter-device link bandwidth, B/s.
    pub interconnect_bw: f64,
    /// Fraction of peak FLOP/s that is achievable (paper: 0.8).
    pub achievable_flops_frac: f64,
    /// Fraction of peak bandwidth that is achievable (paper: 0.7).
    pub achievable_bw_frac: f64,
}

impl Accelerator {
    /// The paper's Table 4 configuration (similar to an NVIDIA V100v2).
    pub fn v100_like() -> Accelerator {
        Accelerator {
            name: "V100-like (Table 4)".into(),
            peak_flops: 15.67e12,
            peak_mem_bw: 898e9,
            cache_bytes: 6.0 * 1024.0 * 1024.0,
            mem_capacity: 32.0 * (1u64 << 30) as f64,
            interconnect_bw: 56e9,
            achievable_flops_frac: 0.8,
            achievable_bw_frac: 0.7,
        }
    }

    /// Achievable compute throughput `0.8·x_c`.
    pub fn achievable_flops(&self) -> f64 {
        self.achievable_flops_frac * self.peak_flops
    }

    /// Achievable memory bandwidth `0.7·x_a`.
    pub fn achievable_bw(&self) -> f64 {
        self.achievable_bw_frac * self.peak_mem_bw
    }

    /// Peak roofline ridge point `x_c / x_a` (FLOP/B).
    pub fn ridge_point(&self) -> f64 {
        self.peak_flops / self.peak_mem_bw
    }

    /// Achievable-throughput ridge point `0.8·x_c / 0.7·x_a` (FLOP/B) — the
    /// operational intensity above which a kernel is compute-bound in
    /// practice.
    pub fn achievable_ridge_point(&self) -> f64 {
        self.achievable_flops() / self.achievable_bw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_ridge_points() {
        let a = Accelerator::v100_like();
        // Paper: ridge 17.4 FLOP/B, rising to 19.9 at achievable throughput.
        assert!((a.ridge_point() - 17.45).abs() < 0.1, "{}", a.ridge_point());
        assert!(
            (a.achievable_ridge_point() - 19.94).abs() < 0.1,
            "{}",
            a.achievable_ridge_point()
        );
    }

    #[test]
    fn achievable_fractions_apply() {
        let a = Accelerator::v100_like();
        assert!((a.achievable_flops() - 0.8 * 15.67e12).abs() < 1.0);
        assert!((a.achievable_bw() - 0.7 * 898e9).abs() < 1.0);
    }

    #[test]
    fn capacity_is_32_gib() {
        let a = Accelerator::v100_like();
        assert_eq!(a.mem_capacity, 32.0 * 1073741824.0);
    }
}
