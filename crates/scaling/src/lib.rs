//! `scaling` — power-law accuracy/capacity scaling and frontier projection
//! (paper §3, Table 1, Figure 6).
//!
//! Implements the analytical models of Hestness et al. 2017 that the paper
//! builds on: learning curves `ε(m) = α·m^βg`, model-size curves
//! `p(m) = σ·m^βp`, the transcribed Table 1 constants for the five domains,
//! and the inversion that turns an expert accuracy target into required data
//! and model growth. Also provides the least-squares fitting used by the
//! characterization pipeline (γ, λ, µ, δ of §4).
//!
//! ```
//! use scaling::{scaling_for};
//! use modelzoo::Domain;
//!
//! let word_lm = scaling_for(Domain::WordLm).project();
//! assert!(word_lm.data_scale > 90.0);          // ≈ 100× more words
//! assert!(word_lm.target_params > 20e9);       // ≈ 23.8B parameters
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod fit;
mod laws;
mod table1;

pub use fit::{
    fit_access_model, fit_linear, fit_power_law, fit_proportional, LinearFit, PowerLawFit,
};
pub use laws::{LearningCurve, ModelSizeCurve, SketchCurve};
pub use table1::{scaling_for, table1, DomainScaling, Projection};
