//! The paper's Table 1: learning-curve and model-size scaling relationships
//! for the five DL domains, plus the frontier projections derived from them.

use modelzoo::Domain;
use serde::{Deserialize, Serialize};

use crate::laws::{LearningCurve, ModelSizeCurve};

/// One row of Table 1 plus the absolute anchors needed for Table 3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DomainScaling {
    /// The domain.
    #[serde(skip, default = "default_domain")]
    pub domain: Domain,
    /// Accuracy metric name (nats/word, bits/char, WPER, CER, Top-1).
    pub metric: &'static str,
    /// Current state-of-the-art error.
    pub current_sota: f64,
    /// Expert-defined frontier target (the paper's "Desired SOTA").
    pub desired_sota: f64,
    /// Current SOTA training-set size, in samples (words/chars/word-pieces/
    /// images).
    pub current_data_samples: f64,
    /// Current SOTA training-set size in gigabytes.
    pub current_data_gb: f64,
    /// Learning curve constants (α, βg).
    pub learning: LearningCurve,
    /// Model-size curve constants (σ, βp).
    pub model: ModelSizeCurve,
    /// Parameter count of the current SOTA model (anchors the absolute
    /// projected model size; derived from the paper's Tables 1 and 3).
    pub current_params: f64,
}

// Referenced only through the `#[serde(default = ...)]` attribute, which the
// offline serde stand-in does not expand.
#[allow(dead_code)]
fn default_domain() -> Domain {
    Domain::WordLm
}

/// Frontier projection for one domain (feeds Tables 1 and 3).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Projection {
    /// Required growth in training data (×).
    pub data_scale: f64,
    /// Required growth in model parameters (×).
    pub model_scale: f64,
    /// Projected training-set size in samples.
    pub target_data_samples: f64,
    /// Projected training-set size in GB.
    pub target_data_gb: f64,
    /// Projected model parameter count.
    pub target_params: f64,
}

impl DomainScaling {
    /// Project the frontier requirements (Table 1's "Projected Scale"
    /// columns and Table 3's data/model columns).
    pub fn project(&self) -> Projection {
        let data_scale = self
            .learning
            .data_scale(self.current_sota, self.desired_sota);
        let model_scale = self.model.model_scale(data_scale);
        Projection {
            data_scale,
            model_scale,
            target_data_samples: self.current_data_samples * data_scale,
            target_data_gb: self.current_data_gb * data_scale,
            target_params: self.current_params * model_scale,
        }
    }
}

/// The five rows of Table 1.
///
/// α, βg, σ, βp, current/desired SOTA, and dataset sizes are transcribed
/// from the paper; `current_params` anchors come from dividing Table 3's
/// projected parameter counts by Table 1's model-scale column.
pub fn table1() -> Vec<DomainScaling> {
    vec![
        DomainScaling {
            domain: Domain::WordLm,
            metric: "nats/word",
            current_sota: 3.37,
            desired_sota: 2.48,
            current_data_samples: 768e6,
            current_data_gb: 3.9,
            learning: LearningCurve::new(13.0, -0.066),
            model: ModelSizeCurve::new(9.4e-4, 0.68),
            current_params: 1.03e9,
        },
        DomainScaling {
            domain: Domain::CharLm,
            metric: "bits/char",
            current_sota: 1.30,
            desired_sota: 0.70,
            current_data_samples: 3.48e9,
            current_data_gb: 3.9,
            learning: LearningCurve::new(9.39, -0.092),
            model: ModelSizeCurve::new(1.2e-5, 0.89),
            current_params: 0.32e9,
        },
        DomainScaling {
            domain: Domain::Nmt,
            metric: "word-piece error rate",
            current_sota: 0.28,
            desired_sota: 0.12,
            current_data_samples: 130e6,
            current_data_gb: 2.6,
            learning: LearningCurve::new(3.06, -0.128),
            model: ModelSizeCurve::new(6.4e-4, 0.68),
            current_params: 0.21e9,
        },
        DomainScaling {
            domain: Domain::Speech,
            metric: "character error rate",
            current_sota: 0.095,
            desired_sota: 0.04,
            current_data_samples: 425e6,
            current_data_gb: 1674.0,
            learning: LearningCurve::new(30.5, -0.291),
            model: ModelSizeCurve::new(2.4e-3, 0.54),
            current_params: 0.110e9,
        },
        DomainScaling {
            domain: Domain::ImageClassification,
            metric: "Top-1 error",
            current_sota: 0.194,
            desired_sota: 0.05,
            current_data_samples: 1.3e6,
            current_data_gb: 152.0,
            learning: LearningCurve::new(15.0, -0.309),
            model: ModelSizeCurve::new(2.0e-2, 0.57),
            current_params: 61e6,
        },
    ]
}

/// Look up the Table 1 row for `domain`.
pub fn scaling_for(domain: Domain) -> DomainScaling {
    table1()
        .into_iter()
        .find(|row| row.domain == domain)
        .expect("all domains present in table 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_all_five_domains() {
        let rows = table1();
        assert_eq!(rows.len(), 5);
        for d in Domain::ALL {
            assert!(rows.iter().any(|r| r.domain == d), "{d:?} missing");
        }
    }

    /// Paper Table 1 "Projected Scale" column, data growth. Speech is the
    /// one row whose published 33× we cannot reproduce from the published
    /// constants (they imply ≈19×); the reproduction band below records the
    /// computed value. See EXPERIMENTS.md.
    #[test]
    fn data_scales_match_paper_bands() {
        let expect = [
            (Domain::WordLm, 100.0, 0.10),
            (Domain::CharLm, 971.0, 0.20),
            (Domain::Nmt, 750.0, 0.05),
            (Domain::Speech, 19.5, 0.10),
            (Domain::ImageClassification, 81.0, 0.05),
        ];
        for (domain, paper, tol) in expect {
            let p = scaling_for(domain).project();
            let rel = (p.data_scale - paper).abs() / paper;
            assert!(
                rel < tol,
                "{domain:?}: data scale {} vs paper {paper}",
                p.data_scale
            );
        }
    }

    /// Paper Table 1 model-growth column (6.6–456×).
    #[test]
    fn model_scales_match_paper_bands() {
        let expect = [
            (Domain::WordLm, 23.0, 0.10),
            (Domain::CharLm, 456.0, 0.25),
            (Domain::Nmt, 90.0, 0.05),
            (Domain::Speech, 6.6, 0.35),
            (Domain::ImageClassification, 12.0, 0.10),
        ];
        for (domain, paper, tol) in expect {
            let p = scaling_for(domain).project();
            let rel = (p.model_scale - paper).abs() / paper;
            assert!(
                rel < tol,
                "{domain:?}: model scale {} vs paper {paper}",
                p.model_scale
            );
        }
    }

    /// Table 3's projected parameter counts (23.8B / 146B / 18.9B / 727M /
    /// 732M) follow from the anchors.
    #[test]
    fn projected_params_match_table3() {
        let expect = [
            (Domain::WordLm, 23.8e9, 0.10),
            (Domain::CharLm, 146e9, 0.40),
            (Domain::Nmt, 18.9e9, 0.10),
            (Domain::Speech, 727e6, 0.40),
            (Domain::ImageClassification, 732e6, 0.15),
        ];
        for (domain, paper, tol) in expect {
            let p = scaling_for(domain).project();
            let rel = (p.target_params - paper).abs() / paper;
            assert!(
                rel < tol,
                "{domain:?}: params {:.3e} vs paper {paper:.3e}",
                p.target_params
            );
        }
    }

    #[test]
    fn learning_curves_reproduce_current_sota_within_10pct() {
        for row in table1() {
            let predicted = row.learning.error_at(row.current_data_samples);
            let rel = (predicted - row.current_sota).abs() / row.current_sota;
            assert!(
                rel < 0.10,
                "{:?}: curve predicts {predicted}, table says {}",
                row.domain,
                row.current_sota
            );
        }
    }

    #[test]
    fn desired_improvements_are_1_4x_to_3_9x() {
        // Paper: "Desired SOTA values are 1.4× to 3.9× better than current".
        for row in table1() {
            let improvement = row.current_sota / row.desired_sota;
            assert!(
                (1.3..4.0).contains(&improvement),
                "{:?}: improvement {improvement}",
                row.domain
            );
        }
    }
}
