//! Power-law learning curves and model-size curves (paper §3, after
//! Hestness et al. 2017).

use serde::{Deserialize, Serialize};

/// Generalization-error learning curve `ε(m) = α·m^βg` (paper Eq. 1).
///
/// `m` is the number of training samples; `βg ∈ [−0.5, 0)` — closer to −0.5
/// means the model learns more from each additional sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    /// Scale constant `α` (input-space / architecture dependent).
    pub alpha: f64,
    /// Power-law exponent `βg` (negative).
    pub beta_g: f64,
}

impl LearningCurve {
    /// Create a curve; `beta_g` must be in `[-0.5, 0)`.
    pub fn new(alpha: f64, beta_g: f64) -> LearningCurve {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(
            (-0.5..0.0).contains(&beta_g),
            "beta_g must be in [-0.5, 0), got {beta_g}"
        );
        LearningCurve { alpha, beta_g }
    }

    /// Predicted generalization error after training on `m` samples.
    pub fn error_at(&self, m: f64) -> f64 {
        self.alpha * m.powf(self.beta_g)
    }

    /// Samples required to reach `error` (inverse of [`Self::error_at`]).
    pub fn data_for_error(&self, error: f64) -> f64 {
        assert!(error > 0.0, "target error must be positive");
        (error / self.alpha).powf(1.0 / self.beta_g)
    }

    /// Multiplicative growth in training data needed to move the error from
    /// `current` to `target`, anchored at the *observed* current error (the
    /// paper's Table 1 "Projected Scale / Data" column).
    pub fn data_scale(&self, current: f64, target: f64) -> f64 {
        assert!(target < current, "target error must improve on current");
        (target / current).powf(1.0 / self.beta_g)
    }
}

/// Model-capacity curve `p(m) = σ·m^βp` (paper Eq. 2): parameters required
/// to fit a dataset of `m` samples. `βp ∈ [0.5, 1)` — sublinear, else one
/// could simply memorize the dataset.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelSizeCurve {
    /// Scale constant `σ`.
    pub sigma: f64,
    /// Power-law exponent `βp`.
    pub beta_p: f64,
}

impl ModelSizeCurve {
    /// Create a curve; `beta_p` must be in `[0.5, 1)`.
    pub fn new(sigma: f64, beta_p: f64) -> ModelSizeCurve {
        assert!(sigma > 0.0, "sigma must be positive");
        assert!(
            (0.5..1.0).contains(&beta_p),
            "beta_p must be in [0.5, 1), got {beta_p}"
        );
        ModelSizeCurve { sigma, beta_p }
    }

    /// Multiplicative model growth implied by a data growth of
    /// `data_scale` (the Table 1 "Projected Scale / Model" column):
    /// `p(k·m)/p(m) = k^βp`.
    pub fn model_scale(&self, data_scale: f64) -> f64 {
        assert!(data_scale >= 1.0);
        data_scale.powf(self.beta_p)
    }

    /// Relative capacity at `m` samples (units depend on the fitted σ).
    pub fn capacity_at(&self, m: f64) -> f64 {
        self.sigma * m.powf(self.beta_p)
    }
}

/// The three-region learning-curve sketch of Figure 6: a best-guess plateau
/// for small data, the power-law region, and an irreducible-error floor.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SketchCurve {
    /// The power-law mid-region.
    pub power_law: LearningCurve,
    /// Error of best guessing (small-data plateau).
    pub best_guess_error: f64,
    /// Irreducible error floor (Bayes error).
    pub irreducible_error: f64,
}

impl SketchCurve {
    /// Error at `m` samples across all three regions:
    /// `clamp(ε_power(m), irreducible, best_guess)`.
    pub fn error_at(&self, m: f64) -> f64 {
        self.power_law
            .error_at(m)
            .clamp(self.irreducible_error, self.best_guess_error)
    }

    /// Dataset size where the curve leaves the small-data region.
    pub fn small_data_boundary(&self) -> f64 {
        self.power_law.data_for_error(self.best_guess_error)
    }

    /// Dataset size where the curve enters the irreducible region.
    pub fn irreducible_boundary(&self) -> f64 {
        self.power_law.data_for_error(self.irreducible_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_lm_curve() -> LearningCurve {
        LearningCurve::new(13.0, -0.066)
    }

    #[test]
    fn reproduces_word_lm_sota_from_table1() {
        // ε(768M) ≈ 3.37 nats/word — the paper's current-SOTA row.
        let e = word_lm_curve().error_at(768e6);
        assert!((e - 3.37).abs() < 0.03, "got {e}");
    }

    #[test]
    fn inversion_round_trips() {
        let c = word_lm_curve();
        let m = c.data_for_error(2.48);
        let e = c.error_at(m);
        assert!((e - 2.48).abs() < 1e-9);
    }

    #[test]
    fn word_lm_data_scale_is_about_100x() {
        let s = word_lm_curve().data_scale(3.37, 2.48);
        assert!((s - 104.0).abs() < 2.0, "got {s}");
    }

    #[test]
    fn nmt_data_scale_is_about_750x() {
        let c = LearningCurve::new(3.06, -0.128);
        let s = c.data_scale(0.28, 0.12);
        assert!((s / 750.0 - 1.0).abs() < 0.01, "got {s}");
    }

    #[test]
    fn model_scale_follows_data_scale_power() {
        // Word LM: 100× data at βp = 0.68 → ≈ 23× model (Table 1).
        let m = ModelSizeCurve::new(9.4e-4, 0.68);
        let s = m.model_scale(100.0);
        assert!((s - 22.9).abs() < 0.5, "got {s}");
    }

    #[test]
    fn sketch_curve_has_three_regions() {
        let sk = SketchCurve {
            power_law: LearningCurve::new(10.0, -0.3),
            best_guess_error: 5.0,
            irreducible_error: 0.5,
        };
        // Small-data plateau.
        assert_eq!(sk.error_at(1.0), 5.0);
        // Power-law region.
        let mid = sk.error_at(1e3);
        assert!(mid < 5.0 && mid > 0.5);
        // Irreducible floor.
        assert_eq!(sk.error_at(1e12), 0.5);
        assert!(sk.small_data_boundary() < sk.irreducible_boundary());
    }

    #[test]
    fn steeper_exponent_needs_less_data() {
        let shallow = LearningCurve::new(10.0, -0.07);
        let steep = LearningCurve::new(10.0, -0.3);
        assert!(steep.data_scale(3.0, 2.0) < shallow.data_scale(3.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "beta_g")]
    fn rejects_positive_exponent() {
        let _ = LearningCurve::new(1.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "improve")]
    fn rejects_worse_target() {
        let _ = word_lm_curve().data_scale(3.0, 3.5);
    }
}
