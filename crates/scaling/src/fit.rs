//! Least-squares fitting of the paper's first-order trend models
//! (`c_t ≈ γ·p`, `a_t ≈ λ·p + µ·b·√p`, `f_t ≈ δ·p`, and log-log power laws).

/// Result of a straight-line fit `y = slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Ordinary least squares for `y = slope·x + intercept`.
///
/// # Panics
/// Panics on fewer than two points or zero variance in `x`.
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    assert!(sxx > 0.0, "x values must not be constant");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LinearFit {
        slope,
        intercept,
        r2,
    }
}

/// Least-squares fit of a proportional law `y = k·x` (no intercept) — the
/// form of the paper's `ct(p) ≈ γp` and `ft(p) ≈ δp` models.
pub fn fit_proportional(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(!xs.is_empty(), "need at least one point");
    let num: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let den: f64 = xs.iter().map(|x| x * x).sum();
    assert!(den > 0.0, "x values must not all be zero");
    num / den
}

/// Result of a power-law fit `y = a·x^b`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLawFit {
    /// Scale `a`.
    pub a: f64,
    /// Exponent `b`.
    pub b: f64,
    /// R² in log-log space.
    pub r2: f64,
}

/// Fit `y = a·x^b` by linear regression in log-log space. All values must be
/// strictly positive.
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> PowerLawFit {
    assert!(
        xs.iter().chain(ys).all(|v| *v > 0.0),
        "power-law fit requires positive data"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let f = fit_linear(&lx, &ly);
    PowerLawFit {
        a: f.intercept.exp(),
        b: f.slope,
        r2: f.r2,
    }
}

/// Fit the paper's two-term memory-access model `a(p, b) = λ·p + µ·b·√p`
/// given samples of `(params, batch, bytes)`.
///
/// Rather than a joint two-basis regression — which lets misfit in one
/// basis (e.g. a mild regime change in bytes/param across the sweep) drive
/// the other coefficient negative — this exploits the model's structure:
/// at fixed `p`, `∂a/∂b = µ·√p` exactly, so `µ` is estimated from the
/// batch slope at each model size and `λ` from the per-parameter remainder.
/// Both estimates are non-negative whenever traffic is monotone in `b`.
pub fn fit_access_model(samples: &[(f64, f64, f64)]) -> (f64, f64) {
    assert!(samples.len() >= 2, "need at least two samples");
    // Group by distinct p (exact match: sweeps reuse identical configs).
    let mut groups: Vec<(f64, Vec<(f64, f64)>)> = Vec::new();
    for &(p, b, y) in samples {
        match groups.iter_mut().find(|(gp, _)| *gp == p) {
            Some((_, v)) => v.push((b, y)),
            None => groups.push((p, vec![(b, y)])),
        }
    }
    let multi_batch = groups.iter().any(|(_, v)| v.len() >= 2);
    assert!(
        multi_batch,
        "access-model fit needs at least two batch sizes at some model size"
    );
    let mut mus = Vec::new();
    for (p, v) in &groups {
        if v.len() < 2 {
            continue;
        }
        let bs: Vec<f64> = v.iter().map(|(b, _)| *b).collect();
        let ys: Vec<f64> = v.iter().map(|(_, y)| *y).collect();
        let slope = fit_linear(&bs, &ys).slope;
        mus.push(slope / p.sqrt());
    }
    let mu = (mus.iter().sum::<f64>() / mus.len() as f64).max(0.0);
    let mut lambdas = Vec::new();
    for &(p, b, y) in samples {
        lambdas.push((y - mu * b * p.sqrt()) / p);
    }
    let lambda = (lambdas.iter().sum::<f64>() / lambdas.len() as f64).max(0.0);
    (lambda, mu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 0.5).collect();
        let f = fit_linear(&xs, &ys);
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept - 0.5).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_fit_recovers_slope() {
        let xs = [1.0, 10.0, 100.0];
        let ys: Vec<f64> = xs.iter().map(|x| 481.0 * x).collect();
        assert!((fit_proportional(&xs, &ys) - 481.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_fit_recovers_exponent() {
        let xs = [1e3, 1e4, 1e5, 1e6];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| 13.0 * x.powf(-0.066)).collect();
        let f = fit_power_law(&xs, &ys);
        assert!((f.a - 13.0).abs() < 1e-6);
        assert!((f.b + 0.066).abs() < 1e-9);
    }

    #[test]
    fn access_model_recovers_lambda_mu() {
        let mut samples = Vec::new();
        for &p in &[1e6_f64, 1e7, 1e8] {
            for &b in &[1.0_f64, 32.0, 128.0] {
                samples.push((p, b, 1755.0 * p + 30784.0 * b * p.sqrt()));
            }
        }
        let (l, m) = fit_access_model(&samples);
        assert!((l - 1755.0).abs() / 1755.0 < 1e-9);
        assert!((m - 30784.0).abs() / 30784.0 < 1e-9);
    }

    #[test]
    fn noisy_power_law_still_close() {
        let xs: Vec<f64> = (1..=20).map(|i| 1000.0 * i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x.powf(0.7) * (1.0 + 0.01 * ((i % 3) as f64 - 1.0)))
            .collect();
        let f = fit_power_law(&xs, &ys);
        assert!((f.b - 0.7).abs() < 0.02);
        assert!(f.r2 > 0.99);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linear_fit_rejects_single_point() {
        let _ = fit_linear(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn power_law_rejects_nonpositive() {
        let _ = fit_power_law(&[1.0, -2.0], &[1.0, 2.0]);
    }
}
