//! RAII spans recording wall-clock durations into the global recorder.

use std::time::Instant;

use crate::json::JsonValue;
use crate::recorder::{category_of, recorder, EventKind, Recorder, TraceEvent};

/// A live span; records a `Complete` event with its wall-clock duration when
/// dropped. Create with [`span`] (global recorder) or [`Span::on`].
pub struct Span {
    recorder: &'static Recorder,
    name: String,
    start: Instant,
    start_us: u64,
    args: Vec<(String, JsonValue)>,
}

impl Span {
    /// Start a span on an explicit recorder (`'static` so spans can outlive
    /// the scope that created them; the global recorder qualifies).
    pub fn on(recorder: &'static Recorder, name: &str) -> Span {
        Span {
            recorder,
            name: name.to_string(),
            start: Instant::now(),
            start_us: recorder.now_us(),
            args: Vec::new(),
        }
    }

    /// Attach a key/value argument (builder style).
    pub fn with_arg(mut self, key: &str, value: impl Into<JsonValue>) -> Span {
        self.args.push((key.to_string(), value.into()));
        self
    }

    /// Attach a key/value argument to a span already in scope.
    pub fn arg(&mut self, key: &str, value: impl Into<JsonValue>) {
        self.args.push((key.to_string(), value.into()));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_us = self.start.elapsed().as_micros() as u64;
        let name = std::mem::take(&mut self.name);
        self.recorder.record(TraceEvent {
            category: category_of(&name),
            name,
            start_us: self.start_us,
            dur_us,
            thread: 0,
            kind: EventKind::Complete,
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Start a span on the global recorder. Bind it to keep it alive:
/// `let _span = obs::span("cgraph.autodiff");`
pub fn span(name: &str) -> Span {
    Span::on(recorder(), name)
}

/// Run `f` inside a span on the global recorder and return its result.
pub fn time<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let _span = span(name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let before = recorder().len();
        {
            let mut s = span("test.span_records").with_arg("k", 7u64);
            s.arg("j", "v");
        }
        let events = recorder().events();
        let event = events
            .iter()
            .skip(before)
            .find(|e| e.name == "test.span_records")
            .expect("span event recorded");
        assert_eq!(event.kind, EventKind::Complete);
        assert_eq!(event.category, "test");
        assert_eq!(event.args.len(), 2);
    }

    #[test]
    fn time_returns_value() {
        let out = time("test.time_returns", || 5 + 5);
        assert_eq!(out, 10);
        assert!(recorder()
            .events()
            .iter()
            .any(|e| e.name == "test.time_returns"));
    }
}
