//! The global, thread-safe event recorder and its export formats.

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::Path;
use std::sync::OnceLock;
use std::thread::ThreadId;
use std::time::Instant;

use parking_lot::Mutex;

use crate::json::{write_args, JsonValue};

/// What kind of trace event this is (maps onto Chrome trace phases).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A timed span (Chrome phase `X`).
    Complete,
    /// A point-in-time marker (Chrome phase `i`).
    Instant,
    /// A named scalar sample (Chrome phase `C`).
    Counter,
}

impl EventKind {
    fn phase(self) -> char {
        match self {
            EventKind::Complete => 'X',
            EventKind::Instant => 'i',
            EventKind::Counter => 'C',
        }
    }

    fn label(self) -> &'static str {
        match self {
            EventKind::Complete => "span",
            EventKind::Instant => "instant",
            EventKind::Counter => "counter",
        }
    }
}

/// One recorded event, timestamped relative to the recorder's epoch.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event name, e.g. `"cgraph.autodiff"`.
    pub name: String,
    /// Category, e.g. `"cgraph"` (the part before the first `.` by default).
    pub category: String,
    /// Microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in microseconds (0 for instants/counters).
    pub dur_us: u64,
    /// Small dense id for the recording thread.
    pub thread: u64,
    /// Complete span, instant marker, or counter sample.
    pub kind: EventKind,
    /// Key/value payload.
    pub args: Vec<(String, JsonValue)>,
}

impl TraceEvent {
    /// Render as a single JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"name\":");
        JsonValue::Str(self.name.clone()).write_to(&mut out);
        out.push_str(",\"cat\":");
        JsonValue::Str(self.category.clone()).write_to(&mut out);
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.label());
        out.push_str("\",\"ts_us\":");
        JsonValue::U64(self.start_us).write_to(&mut out);
        out.push_str(",\"dur_us\":");
        JsonValue::U64(self.dur_us).write_to(&mut out);
        out.push_str(",\"tid\":");
        JsonValue::U64(self.thread).write_to(&mut out);
        out.push_str(",\"args\":");
        write_args(&self.args, &mut out);
        out.push('}');
        out
    }

    /// Render as one Chrome trace event object (no trailing comma).
    pub fn to_chrome(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"name\":");
        JsonValue::Str(self.name.clone()).write_to(&mut out);
        out.push_str(",\"cat\":");
        JsonValue::Str(self.category.clone()).write_to(&mut out);
        out.push_str(",\"ph\":\"");
        out.push(self.kind.phase());
        out.push_str("\",\"ts\":");
        JsonValue::U64(self.start_us).write_to(&mut out);
        if self.kind == EventKind::Complete {
            out.push_str(",\"dur\":");
            JsonValue::U64(self.dur_us).write_to(&mut out);
        }
        if self.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"pid\":1,\"tid\":");
        JsonValue::U64(self.thread).write_to(&mut out);
        out.push_str(",\"args\":");
        write_args(&self.args, &mut out);
        out.push('}');
        out
    }
}

#[derive(Default)]
struct State {
    events: Vec<TraceEvent>,
    threads: HashMap<ThreadId, u64>,
}

/// Thread-safe append-only event log with a monotonic epoch.
///
/// By default the log is unbounded (batch runs export and exit). Long-lived
/// processes — the query server records spans on every sampled request —
/// call [`Recorder::set_capacity`] to cap memory: once full, the oldest
/// quarter of the log is dropped in one batch, keeping amortized recording
/// cost O(1).
pub struct Recorder {
    epoch: Instant,
    state: Mutex<State>,
    capacity: std::sync::atomic::AtomicUsize,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh recorder whose epoch is "now".
    pub fn new() -> Recorder {
        Recorder {
            epoch: Instant::now(),
            state: Mutex::new(State::default()),
            capacity: std::sync::atomic::AtomicUsize::new(usize::MAX),
        }
    }

    /// Bound the event log to roughly `capacity` events (oldest dropped in
    /// batches once exceeded). `usize::MAX` (the default) is unbounded.
    pub fn set_capacity(&self, capacity: usize) {
        // Relaxed: the bound is advisory; enforcement happens under the
        // state mutex on the next record.
        self.capacity
            .store(capacity.max(16), std::sync::atomic::Ordering::Relaxed);
    }

    fn enforce_capacity(&self, state: &mut State) {
        let cap = self.capacity.load(std::sync::atomic::Ordering::Relaxed);
        if state.events.len() > cap {
            // Drop the oldest quarter in one batch so a full log does not
            // pay an O(len) shift on every subsequent event.
            let drop = (state.events.len() - cap)
                .max(cap / 4)
                .min(state.events.len());
            state.events.drain(..drop);
        }
    }

    /// Microseconds elapsed since this recorder's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn thread_id(state: &mut State) -> u64 {
        let next = state.threads.len() as u64;
        *state
            .threads
            .entry(std::thread::current().id())
            .or_insert(next)
    }

    /// Append a fully-formed event, stamping the calling thread's id.
    pub fn record(&self, mut event: TraceEvent) {
        let mut state = self.state.lock();
        event.thread = Self::thread_id(&mut state);
        state.events.push(event);
        self.enforce_capacity(&mut state);
    }

    /// Append an event verbatim, preserving its `thread` and timestamps.
    /// Used for synthetic timelines (e.g. simulated pipeline schedules where
    /// `thread` encodes the pipeline stage and time is simulated).
    pub fn record_raw(&self, event: TraceEvent) {
        let mut state = self.state.lock();
        state.events.push(event);
        self.enforce_capacity(&mut state);
    }

    /// Record an instant marker with arguments.
    pub fn instant(&self, name: &str, args: Vec<(String, JsonValue)>) {
        self.record(TraceEvent {
            name: name.to_string(),
            category: category_of(name),
            start_us: self.now_us(),
            dur_us: 0,
            thread: 0,
            kind: EventKind::Instant,
            args,
        });
    }

    /// Record a named counter sample.
    pub fn counter(&self, name: &str, value: f64) {
        self.record(TraceEvent {
            name: name.to_string(),
            category: category_of(name),
            start_us: self.now_us(),
            dur_us: 0,
            thread: 0,
            kind: EventKind::Counter,
            args: vec![("value".to_string(), JsonValue::F64(value))],
        });
    }

    /// Snapshot all events recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.lock().events.clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.state.lock().events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all recorded events (thread ids are kept).
    pub fn clear(&self) {
        self.state.lock().events.clear();
    }

    /// Write one JSON object per line to `writer`.
    pub fn write_jsonl_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        for event in self.state.lock().events.iter() {
            writeln!(writer, "{}", event.to_jsonl())?;
        }
        Ok(())
    }

    /// Write all events to `path` as JSONL.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        self.write_jsonl_to(&mut file)?;
        file.flush()
    }

    /// Write all events to `writer` as a Chrome-trace JSON array, loadable in
    /// `chrome://tracing` or Perfetto.
    pub fn write_chrome_trace_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        writeln!(writer, "[")?;
        let state = self.state.lock();
        for (i, event) in state.events.iter().enumerate() {
            let comma = if i + 1 < state.events.len() { "," } else { "" };
            writeln!(writer, "{}{}", event.to_chrome(), comma)?;
        }
        writeln!(writer, "]")
    }

    /// Write all events to `path` in Chrome trace format.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        self.write_chrome_trace_to(&mut file)?;
        file.flush()
    }
}

/// The process-wide recorder used by [`crate::span`] and friends.
pub fn recorder() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

pub(crate) fn category_of(name: &str) -> String {
    match name.split_once('.') {
        Some((cat, _)) => cat.to_string(),
        None => name.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let rec = Recorder::new();
        rec.counter("sweep.points", 42.0);
        rec.instant("parsim.start", vec![("stages".into(), JsonValue::U64(4))]);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Counter);
        assert_eq!(events[0].category, "sweep");
        assert_eq!(events[1].kind, EventKind::Instant);
        rec.clear();
        assert!(rec.is_empty());
    }

    #[test]
    fn jsonl_lines_are_objects() {
        let rec = Recorder::new();
        rec.counter("c", 1.25);
        let mut buf = Vec::new();
        rec.write_jsonl_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let line = text.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"kind\":\"counter\""));
        assert!(line.contains("\"value\":1.25"));
    }

    #[test]
    fn chrome_trace_is_array() {
        let rec = Recorder::new();
        rec.counter("a", 1.0);
        rec.instant("b", vec![]);
        let mut buf = Vec::new();
        rec.write_chrome_trace_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let trimmed = text.trim();
        assert!(trimmed.starts_with('[') && trimmed.ends_with(']'));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"ph\":\"i\""));
        // Exactly one separating comma between the two event objects.
        assert_eq!(text.matches("},").count(), 1);
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let rec = Recorder::new();
        rec.set_capacity(32);
        for i in 0..200 {
            rec.counter("cap.test", f64::from(i));
        }
        let events = rec.events();
        assert!(events.len() <= 32, "len {}", events.len());
        // The newest event survived; the oldest did not.
        let values: Vec<f64> = events
            .iter()
            .filter_map(|e| match e.args.first() {
                Some((_, JsonValue::F64(v))) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(values.last().copied(), Some(199.0));
        assert!(values.first().copied() > Some(0.0));
    }

    #[test]
    fn threads_get_dense_ids() {
        let rec = std::sync::Arc::new(Recorder::new());
        rec.counter("main", 0.0);
        let clone = rec.clone();
        std::thread::spawn(move || clone.counter("worker", 1.0))
            .join()
            .unwrap();
        let events = rec.events();
        assert_eq!(events[0].thread, 0);
        assert_eq!(events[1].thread, 1);
    }
}
