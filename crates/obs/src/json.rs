//! Minimal hand-rolled JSON serialization (the workspace has no serde_json).

use std::fmt::Write as _;

/// A JSON-serializable argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values serialize as `null`).
    F64(f64),
    /// String (escaped on write).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::U64(v as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::I64(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl JsonValue {
    /// Append this value's JSON encoding to `out`.
    pub fn write_to(&self, out: &mut String) {
        match self {
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) if v.is_finite() => {
                // `{:?}` keeps round-trippable precision and always includes
                // a decimal point or exponent, so the value parses as float.
                let _ = write!(out, "{v:?}");
            }
            JsonValue::F64(_) => out.push_str("null"),
            JsonValue::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            JsonValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
}

/// JSON-escape `s` (quotes, backslashes, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Append `{"k":v,...}` for an argument list to `out`.
pub(crate) fn write_args(args: &[(String, JsonValue)], out: &mut String) {
    out.push('{');
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(key, out);
        out.push_str("\":");
        value.write_to(out);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn values_serialize() {
        let mut out = String::new();
        JsonValue::from(3u64).write_to(&mut out);
        out.push(',');
        JsonValue::from(-2i64).write_to(&mut out);
        out.push(',');
        JsonValue::from(1.5f64).write_to(&mut out);
        out.push(',');
        JsonValue::from(f64::NAN).write_to(&mut out);
        out.push(',');
        JsonValue::from("x\"y").write_to(&mut out);
        assert_eq!(out, "3,-2,1.5,null,\"x\\\"y\"");
    }

    #[test]
    fn args_object() {
        let mut out = String::new();
        write_args(
            &[
                ("flops".to_string(), JsonValue::from(12u64)),
                ("tag".to_string(), JsonValue::from("fw")),
            ],
            &mut out,
        );
        assert_eq!(out, "{\"flops\":12,\"tag\":\"fw\"}");
    }
}
