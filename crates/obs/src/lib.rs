//! Lightweight observability for the frontier workspace.
//!
//! Three pieces, no external dependencies beyond `parking_lot`:
//!
//! * **Spans** — RAII wall-clock timers ([`span`], [`Span`]) that record into
//!   a global, thread-safe [`Recorder`]. Dropping a span emits a "complete"
//!   event with its duration; spans can carry key/value arguments.
//! * **Counters and instants** — point-in-time measurements
//!   ([`Recorder::counter`], [`Recorder::instant`]) for things like FLOP
//!   totals or sweep sizes.
//! * **Export** — hand-rolled (no serde) [JSONL](Recorder::write_jsonl) for
//!   line-oriented tooling, and a
//!   [Chrome-trace-compatible](Recorder::write_chrome_trace) JSON array that
//!   loads in `chrome://tracing` / Perfetto for timeline views.
//! * **Metrics** — a name → instrument [registry](metrics::Registry) of
//!   sharded counters, gauges, and log₂ histograms with Prometheus text
//!   exposition; see [`metrics`].
//!
//! The `--trace <path>` flag in the bench binaries (or the `FRONTIER_TRACE`
//! environment variable, see [`trace_path_from_env`]) selects the output
//! file; tracing costs one mutex push per event when enabled and nothing is
//! written unless an export is requested.

mod json;
pub mod metrics;
mod recorder;
mod span;

pub use json::{escape as json_escape, JsonValue};
pub use recorder::{recorder, EventKind, Recorder, TraceEvent};
pub use span::{span, time, Span};

/// Environment variable consulted when no `--trace` flag is given.
pub const TRACE_ENV: &str = "FRONTIER_TRACE";

/// Trace path from the `FRONTIER_TRACE` environment variable, if set and
/// non-empty.
pub fn trace_path_from_env() -> Option<String> {
    match std::env::var(TRACE_ENV) {
        Ok(path) if !path.is_empty() => Some(path),
        _ => None,
    }
}
