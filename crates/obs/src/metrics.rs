//! Metric registry: named counters, gauges, and log₂ histograms with a
//! single-pass Prometheus text exposition.
//!
//! Instruments are cheap sharded atomics — recording never takes a lock —
//! and a [`Registry`] owns the name → instrument table that renders them.
//! Two render paths share one source of truth: callers can read handles
//! directly (the server's JSON metrics endpoint does) or ask the registry
//! for the standard `text/plain; version=0.0.4` exposition
//! ([`Registry::render_prometheus`]).
//!
//! Values owned elsewhere (cache shard counters, engine LRU occupancy,
//! interner tables) register as *callback* series
//! ([`Registry::counter_fn`], [`Registry::gauge_fn`]) so the exposition
//! reads them live instead of mirroring them.
//!
//! Registries are plain values, not process globals: a test that boots two
//! servers gets two independent registries.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Shards per counter. Eight covers the worker counts we run; the
/// round-robin thread assignment below keeps contention near zero without
/// per-thread registration.
const COUNTER_SHARDS: usize = 8;

/// Buckets per histogram: log₂ of microseconds, 1 µs to ~150 minutes.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// One cache line per shard so two shards never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCounter(AtomicU64);

/// Stable per-thread shard index, assigned round-robin on first use.
fn shard_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|slot| {
        let mut idx = slot.get();
        if idx == usize::MAX {
            // Relaxed: the ticket only spreads threads across shards; no
            // other memory depends on its order.
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            slot.set(idx);
        }
        idx
    })
}

/// Monotonic counter, sharded to keep concurrent increments off one cache
/// line. Reads sum the shards (reads are rare: scrapes and tests).
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedCounter; COUNTER_SHARDS],
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        // Relaxed: each increment touches exactly one atomic; the total is a
        // sum over shards, so no cross-shard ordering is needed, and readers
        // tolerate a momentarily stale shard.
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Settable signed gauge (in-flight counts, occupancy).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Add `n` (may be negative via `sub`).
    pub fn add(&self, n: i64) {
        // Relaxed: a single atomic carries the whole value, so inc/dec pairs
        // can never half-apply; only cross-metric ordering is unspecified.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Set to `n`.
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Lock-free log₂ histogram (microsecond resolution). Bucket `i` holds
/// `[2^i, 2^(i+1))` µs; bucket 0 also absorbs 0. Quantiles answer with the
/// upper bound of the bucket containing the rank (≤ 2× relative error),
/// clamped to the observed max.
///
/// The observation count is *derived* (the sum of the buckets), so "total
/// count equals bucket sum" holds by construction rather than by a second
/// atomic racing the first.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

/// A point-in-time copy of a histogram, safe to walk without tearing
/// against concurrent recording.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all observations (µs).
    pub sum_us: u64,
    /// Largest observation (µs).
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// Total observations (sum of buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Inclusive upper bound of bucket `i` in µs (`None` for the last
    /// bucket, which is unbounded).
    pub fn bucket_upper_us(i: usize) -> Option<u64> {
        (i + 1 < HISTOGRAM_BUCKETS).then(|| (1u64 << (i + 1)) - 1)
    }
}

impl Histogram {
    fn bucket_of(us: u64) -> usize {
        (63 - u64::leading_zeros(us.max(1)) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Record one observation.
    pub fn record_us(&self, us: u64) {
        // Relaxed on all three: each is independently meaningful (bucket
        // tallies, sum, max), and the exposition tolerates a scrape landing
        // between the bucket bump and the sum bump — both are monotone, so
        // successive scrapes never go backwards.
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Fold another histogram's observations into this one.
    pub fn merge_from(&self, other: &Histogram) {
        let snap = other.snapshot();
        for (i, n) in snap.buckets.iter().enumerate() {
            if *n > 0 {
                self.buckets[i].fetch_add(*n, Ordering::Relaxed);
            }
        }
        self.sum_us.fetch_add(snap.sum_us, Ordering::Relaxed);
        self.max_us.fetch_max(snap.max_us, Ordering::Relaxed);
    }

    /// Copy out all buckets and aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest observation in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in 0..=1) in microseconds.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let snap = self.snapshot();
        let n = snap.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in snap.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                let upper = HistogramSnapshot::bucket_upper_us(i).unwrap_or(u64::MAX);
                return upper.min(snap.max_us);
            }
        }
        snap.max_us
    }
}

/// A counter family keyed by one label (e.g. requests by endpoint). Series
/// are created on first use; `with` is a linear scan under a mutex, fine
/// for the handful of label values a server sees.
#[derive(Clone, Default)]
pub struct CounterFamily {
    inner: Arc<FamilyInner>,
}

#[derive(Default)]
struct FamilyInner {
    series: Mutex<Vec<(String, Arc<Counter>)>>,
}

impl CounterFamily {
    /// The counter for label value `value`, created if new.
    pub fn with(&self, value: &str) -> Arc<Counter> {
        let mut series = self.inner.series.lock();
        if let Some((_, c)) = series.iter().find(|(v, _)| v == value) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        series.push((value.to_string(), Arc::clone(&c)));
        series.sort_by(|a, b| a.0.cmp(&b.0));
        c
    }

    /// All (label value, count) pairs, sorted by label value.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .series
            .lock()
            .iter()
            .map(|(v, c)| (v.clone(), c.value()))
            .collect()
    }
}

type CounterCallback = Box<dyn Fn() -> u64 + Send + Sync>;
type GaugeCallback = Box<dyn Fn() -> f64 + Send + Sync>;

enum Instrument {
    Counter(Arc<Counter>),
    CounterFn(CounterCallback),
    Gauge(Arc<Gauge>),
    GaugeFn(GaugeCallback),
    Histogram(Arc<Histogram>),
    Family {
        label: &'static str,
        family: CounterFamily,
    },
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) | Instrument::CounterFn(_) | Instrument::Family { .. } => {
                "counter"
            }
            Instrument::Gauge(_) | Instrument::GaugeFn(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    name: String,
    help: String,
    instrument: Instrument,
}

/// Name → instrument table with Prometheus exposition.
#[derive(Default)]
pub struct Registry {
    series: Mutex<Vec<Series>>,
}

fn assert_valid_name(name: &str) {
    let ok = !name.is_empty()
        && !name.as_bytes()[0].is_ascii_digit()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':');
    assert!(ok, "invalid metric name {name:?}");
}

fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Format a gauge value: integral when exact, `{:?}` otherwise (round-trips
/// through the Prometheus float parser).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else if v.is_finite() {
        format!("{v:?}")
    } else {
        "NaN".to_string()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register_or_get<T>(
        &self,
        name: &str,
        help: &str,
        matches: impl Fn(&Instrument) -> Option<T>,
        make: impl FnOnce() -> (Instrument, T),
    ) -> T {
        assert_valid_name(name);
        let mut series = self.series.lock();
        if let Some(existing) = series.iter().find(|s| s.name == name) {
            return matches(&existing.instrument).unwrap_or_else(|| {
                panic!(
                    "metric {name:?} already registered as a {}",
                    existing.instrument.type_name()
                )
            });
        }
        let (instrument, handle) = make();
        series.push(Series {
            name: name.to_string(),
            help: help.to_string(),
            instrument,
        });
        handle
    }

    /// Register (or fetch) a monotonic counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.register_or_get(
            name,
            help,
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::default());
                (Instrument::Counter(Arc::clone(&c)), c)
            },
        )
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.register_or_get(
            name,
            help,
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::default());
                (Instrument::Gauge(Arc::clone(&g)), g)
            },
        )
    }

    /// Register (or fetch) a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.register_or_get(
            name,
            help,
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::default());
                (Instrument::Histogram(Arc::clone(&h)), h)
            },
        )
    }

    /// Register (or fetch) a one-label counter family.
    pub fn counter_family(&self, name: &str, help: &str, label: &'static str) -> CounterFamily {
        assert_valid_name(label);
        self.register_or_get(
            name,
            help,
            |i| match i {
                Instrument::Family { family, .. } => Some(family.clone()),
                _ => None,
            },
            || {
                let family = CounterFamily::default();
                (
                    Instrument::Family {
                        label,
                        family: family.clone(),
                    },
                    family,
                )
            },
        )
    }

    /// Register a counter whose value lives elsewhere and is read through
    /// `f` at exposition time. The callback must be monotone for the series
    /// to behave as a Prometheus counter.
    pub fn counter_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.register_or_get(
            name,
            help,
            |i| match i {
                Instrument::CounterFn(_) => Some(()),
                _ => None,
            },
            || (Instrument::CounterFn(Box::new(f)), ()),
        );
    }

    /// Register a gauge read through `f` at exposition time.
    pub fn gauge_fn(&self, name: &str, help: &str, f: impl Fn() -> f64 + Send + Sync + 'static) {
        self.register_or_get(
            name,
            help,
            |i| match i {
                Instrument::GaugeFn(_) => Some(()),
                _ => None,
            },
            || (Instrument::GaugeFn(Box::new(f)), ()),
        );
    }

    /// Registered series names (sorted), for introspection and tests.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.series.lock().iter().map(|s| s.name.clone()).collect();
        names.sort();
        names
    }

    /// Render every series in Prometheus text exposition format
    /// (`text/plain; version=0.0.4`), one pass, sorted by name.
    pub fn render_prometheus(&self) -> String {
        let series = self.series.lock();
        let mut order: Vec<&Series> = series.iter().collect();
        order.sort_by(|a, b| a.name.cmp(&b.name));
        let mut out = String::with_capacity(256 * order.len().max(1));
        for s in order {
            use std::fmt::Write as _;
            let _ = writeln!(out, "# HELP {} {}", s.name, s.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {} {}", s.name, s.instrument.type_name());
            match &s.instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{} {}", s.name, c.value());
                }
                Instrument::CounterFn(f) => {
                    let _ = writeln!(out, "{} {}", s.name, f());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", s.name, g.value());
                }
                Instrument::GaugeFn(f) => {
                    let _ = writeln!(out, "{} {}", s.name, fmt_f64(f()));
                }
                Instrument::Family { label, family } => {
                    for (value, count) in family.snapshot() {
                        let _ = writeln!(
                            out,
                            "{}{{{}=\"{}\"}} {}",
                            s.name,
                            label,
                            escape_label_value(&value),
                            count
                        );
                    }
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let last_nonzero = snap
                        .buckets
                        .iter()
                        .rposition(|&n| n > 0)
                        .unwrap_or(0)
                        .min(HISTOGRAM_BUCKETS - 2);
                    let mut cumulative = 0u64;
                    for (i, n) in snap.buckets.iter().enumerate().take(last_nonzero + 1) {
                        cumulative += n;
                        let upper = HistogramSnapshot::bucket_upper_us(i).expect("bounded bucket");
                        let _ =
                            writeln!(out, "{}_bucket{{le=\"{}\"}} {}", s.name, upper, cumulative);
                    }
                    let total = snap.count();
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", s.name, total);
                    let _ = writeln!(out, "{}_sum {}", s.name, snap.sum_us);
                    let _ = writeln!(out, "{}_count {}", s.name, total);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_threads() {
        let c = Arc::new(Counter::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn gauge_add_sub_set() {
        let g = Gauge::default();
        g.add(5);
        g.sub(2);
        assert_eq!(g.value(), 3);
        g.set(-1);
        assert_eq!(g.value(), -1);
    }

    #[test]
    fn registration_is_idempotent_per_name() {
        let r = Registry::new();
        let a = r.counter("frontier_requests_total", "Total requests.");
        let b = r.counter("frontier_requests_total", "Total requests.");
        a.inc();
        assert_eq!(b.value(), 1, "same name returns the same counter");
        assert_eq!(r.names().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("frontier_x", "x");
        r.gauge("frontier_x", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_panic() {
        Registry::new().counter("bad-name", "dashes are not allowed");
    }

    #[test]
    fn histogram_merge_preserves_totals() {
        let a = Histogram::default();
        let b = Histogram::default();
        for us in [1u64, 7, 100, 5000] {
            a.record_us(us);
        }
        for us in [3u64, 100_000] {
            b.record_us(us);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.snapshot().sum_us, 1 + 7 + 100 + 5000 + 3 + 100_000);
        assert_eq!(a.max_us(), 100_000);
    }

    #[test]
    fn exposition_renders_all_instrument_kinds() {
        let r = Registry::new();
        r.counter("frontier_a_total", "A counter.").add(3);
        r.gauge("frontier_b", "A gauge.").set(7);
        r.gauge_fn("frontier_c", "A live gauge.", || 1.5);
        r.counter_fn("frontier_d_total", "A live counter.", || 9);
        let h = r.histogram("frontier_lat_us", "Latency.");
        h.record_us(3);
        h.record_us(70);
        let fam = r.counter_family("frontier_by_ep_total", "By endpoint.", "endpoint");
        fam.with("healthz").inc();
        fam.with("metrics").add(2);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE frontier_a_total counter\nfrontier_a_total 3\n"));
        assert!(text.contains("# TYPE frontier_b gauge\nfrontier_b 7\n"));
        assert!(text.contains("frontier_c 1.5\n"));
        assert!(text.contains("frontier_d_total 9\n"));
        assert!(text.contains("frontier_by_ep_total{endpoint=\"healthz\"} 1\n"));
        assert!(text.contains("frontier_by_ep_total{endpoint=\"metrics\"} 2\n"));
        assert!(text.contains("frontier_lat_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("frontier_lat_us_sum 73\n"));
        assert!(text.contains("frontier_lat_us_count 2\n"));
        // Buckets are cumulative: the 3 µs sample is counted again under the
        // bucket that also covers 70 µs.
        assert!(text.contains("frontier_lat_us_bucket{le=\"127\"} 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        let fam = r.counter_family("frontier_esc_total", "Escapes.", "path");
        fam.with("a\"b\\c\nd").inc();
        let text = r.render_prometheus();
        assert!(text.contains("frontier_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
    }
}
