//! Property-based tests over the metric registry's histogram: recording and
//! merging must preserve total counts, and the rendered exposition's
//! cumulative buckets must be monotone — for *any* sequence of samples, not
//! just the unit tests' hand-picked ones.

use obs::metrics::{Histogram, Registry, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// Cumulative bucket counts as the Prometheus exposition would render them.
fn cumulative(h: &Histogram) -> Vec<u64> {
    let snap = h.snapshot();
    let mut out = Vec::with_capacity(HISTOGRAM_BUCKETS);
    let mut running = 0u64;
    for i in 0..HISTOGRAM_BUCKETS {
        running += snap.buckets[i];
        out.push(running);
    }
    out
}

proptest! {
    /// Every recorded sample lands in exactly one bucket: the bucket-sum
    /// count equals the number of `record_us` calls, and the sum of samples
    /// is preserved exactly.
    #[test]
    fn recording_preserves_count_and_sum(samples in prop::collection::vec(0u64..1 << 40, 0..200)) {
        let h = Histogram::default();
        for &s in &samples {
            h.record_us(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(snap.sum_us, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.max_us, samples.iter().copied().max().unwrap_or(0));
    }

    /// Merging histograms is exact addition: counts, sums, and every bucket
    /// add; max is the max of maxes.
    #[test]
    fn merging_adds_exactly(
        a in prop::collection::vec(0u64..1 << 40, 0..100),
        b in prop::collection::vec(0u64..1 << 40, 0..100),
    ) {
        let ha = Histogram::default();
        let hb = Histogram::default();
        for &s in &a {
            ha.record_us(s);
        }
        for &s in &b {
            hb.record_us(s);
        }
        let before = ha.snapshot();
        ha.merge_from(&hb);
        let merged = ha.snapshot();
        let other = hb.snapshot();
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.sum_us, before.sum_us + other.sum_us);
        prop_assert_eq!(merged.max_us, before.max_us.max(other.max_us));
        for i in 0..HISTOGRAM_BUCKETS {
            prop_assert_eq!(merged.buckets[i], before.buckets[i] + other.buckets[i]);
        }
    }

    /// Cumulative bucket counts are monotone nondecreasing and end at the
    /// total count — the invariant Prometheus `_bucket{le=}` series demand.
    #[test]
    fn cumulative_buckets_are_monotone(samples in prop::collection::vec(0u64..u64::MAX, 0..200)) {
        let h = Histogram::default();
        for &s in &samples {
            h.record_us(s);
        }
        let cum = cumulative(&h);
        for w in cum.windows(2) {
            prop_assert!(w[0] <= w[1], "cumulative dipped: {} -> {}", w[0], w[1]);
        }
        prop_assert_eq!(*cum.last().expect("nonempty"), samples.len() as u64);
    }

    /// Quantiles are ordered and bounded by the observed max's bucket.
    #[test]
    fn quantiles_are_ordered(samples in prop::collection::vec(0u64..1 << 30, 1..200)) {
        let h = Histogram::default();
        for &s in &samples {
            h.record_us(s);
        }
        let p50 = h.quantile_us(0.50);
        let p95 = h.quantile_us(0.95);
        let p99 = h.quantile_us(0.99);
        prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
    }
}

#[test]
fn registered_histogram_renders_monotone_exposition() {
    let r = Registry::new();
    let h = r.histogram("prop_hist_us", "Property-test histogram.");
    for s in [0, 1, 7, 63, 64, 1000, 123_456, u64::MAX] {
        h.record_us(s);
    }
    let text = r.render_prometheus();
    let mut last = 0u64;
    let mut saw_bucket = false;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("prop_hist_us_bucket{") {
            let count: u64 = rest
                .rsplit(' ')
                .next()
                .expect("value")
                .parse()
                .expect("integer bucket count");
            assert!(count >= last, "bucket series dipped in:\n{text}");
            last = count;
            saw_bucket = true;
        }
    }
    assert!(saw_bucket, "no bucket lines rendered:\n{text}");
    assert!(text.contains("prop_hist_us_count 8"));
}
