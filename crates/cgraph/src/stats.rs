//! Whole-graph algorithmic cost queries.
//!
//! These implement the paper's §2.1 quantities for an entire training-step
//! graph: algorithmic FLOPs, algorithmic bytes accessed, algorithmic IO, and
//! the derived operational intensity. Everything is symbolic; bind a
//! [`symath::Bindings`] to obtain numbers.

use symath::{Bindings, Expr, ExprId, UnboundSymbol};

use crate::graph::Graph;
use crate::op::{op_bytes, op_flops, Op, Phase};
use crate::tensor::{Tensor, TensorKind};

/// Symbolic cost summary of a graph.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Algorithmic FLOPs per training step (all phases).
    pub flops: Expr,
    /// Forward-phase FLOPs only.
    pub flops_forward: Expr,
    /// Backward-phase FLOPs only.
    pub flops_backward: Expr,
    /// Weight-update-phase FLOPs only (optimizer ops).
    pub flops_update: Expr,
    /// Algorithmic bytes read + written per training step.
    pub bytes: Expr,
    /// Bytes read only.
    pub bytes_read: Expr,
    /// Bytes written only.
    pub bytes_written: Expr,
    /// Trainable parameter count.
    pub params: Expr,
    /// Algorithmic IO: bytes of training data consumed per step.
    pub io: Expr,
}

impl GraphStats {
    /// Operational intensity `flops / bytes` as a symbolic expression.
    pub fn operational_intensity(&self) -> Expr {
        self.flops.clone() / self.bytes.clone()
    }

    /// Evaluate all quantities under `bindings`.
    pub fn eval(&self, bindings: &Bindings) -> Result<NumericStats, UnboundSymbol> {
        Ok(NumericStats {
            flops: self.flops.eval(bindings)?,
            flops_forward: self.flops_forward.eval(bindings)?,
            flops_backward: self.flops_backward.eval(bindings)?,
            flops_update: self.flops_update.eval(bindings)?,
            bytes: self.bytes.eval(bindings)?,
            bytes_read: self.bytes_read.eval(bindings)?,
            bytes_written: self.bytes_written.eval(bindings)?,
            params: self.params.eval(bindings)?,
            io: self.io.eval(bindings)?,
        })
    }

    /// The forward-only view, or `None` if any training phase carries cost.
    ///
    /// The guard is structural: `symath` keeps expressions canonical, so a
    /// backward/update total is zero iff the graph has no priced op in that
    /// phase. Inference paths that call this on a training-step graph get
    /// `None` instead of silently mixed phases.
    pub fn forward_view(&self) -> Option<ForwardStats> {
        if !self.flops_backward.is_zero() || !self.flops_update.is_zero() {
            return None;
        }
        Some(ForwardStats {
            flops: self.flops_forward.clone(),
            bytes: self.bytes.clone(),
            bytes_read: self.bytes_read.clone(),
            bytes_written: self.bytes_written.clone(),
            params: self.params.clone(),
            io: self.io.clone(),
        })
    }
}

/// Forward-only (inference) cost view of a graph.
///
/// Inference reports must not leak training phases: there are no
/// `flops_backward`/`flops_update` fields to mis-read here, and the view is
/// only constructible (via [`GraphStats::forward_view`]) when both training
/// phases are exactly zero — a forward-only build. `flops` is taken from the
/// forward phase, and the byte totals are the graph totals, which on a
/// forward-only graph are forward bytes by construction.
#[derive(Clone, Debug)]
pub struct ForwardStats {
    /// Algorithmic FLOPs per forward pass.
    pub flops: Expr,
    /// Algorithmic bytes read + written per forward pass.
    pub bytes: Expr,
    /// Bytes read only.
    pub bytes_read: Expr,
    /// Bytes written only.
    pub bytes_written: Expr,
    /// Parameter count (elements of all weight tensors).
    pub params: Expr,
    /// Algorithmic IO: bytes of input tensors consumed per pass.
    pub io: Expr,
}

impl ForwardStats {
    /// Operational intensity `flops / bytes` as a symbolic expression.
    pub fn operational_intensity(&self) -> Expr {
        self.flops.clone() / self.bytes.clone()
    }

    /// Evaluate all quantities under `bindings`.
    pub fn eval(&self, bindings: &Bindings) -> Result<NumericForwardStats, UnboundSymbol> {
        Ok(NumericForwardStats {
            flops: self.flops.eval(bindings)?,
            bytes: self.bytes.eval(bindings)?,
            bytes_read: self.bytes_read.eval(bindings)?,
            bytes_written: self.bytes_written.eval(bindings)?,
            params: self.params.eval(bindings)?,
            io: self.io.eval(bindings)?,
        })
    }
}

/// [`ForwardStats`] over hash-consed ids — the representation the inference
/// sweep engine caches per model family (see [`InternedGraphStats`] for the
/// training-step counterpart and the bit-identity contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InternedForwardStats {
    /// Algorithmic FLOPs per forward pass.
    pub flops: ExprId,
    /// Algorithmic bytes read + written per forward pass.
    pub bytes: ExprId,
    /// Bytes read only.
    pub bytes_read: ExprId,
    /// Bytes written only.
    pub bytes_written: ExprId,
    /// Parameter count.
    pub params: ExprId,
    /// Input bytes consumed per pass.
    pub io: ExprId,
}

impl InternedForwardStats {
    /// Materialize the tree-expression view.
    pub fn view(&self) -> ForwardStats {
        ForwardStats {
            flops: (*self.flops.expr()).clone(),
            bytes: (*self.bytes.expr()).clone(),
            bytes_read: (*self.bytes_read.expr()).clone(),
            bytes_written: (*self.bytes_written.expr()).clone(),
            params: (*self.params.expr()).clone(),
            io: (*self.io.expr()).clone(),
        }
    }

    /// Substitute integer bindings exactly in every field (memoized).
    pub fn bind_all(&self, bindings: &Bindings) -> InternedForwardStats {
        InternedForwardStats {
            flops: self.flops.bind_all(bindings),
            bytes: self.bytes.bind_all(bindings),
            bytes_read: self.bytes_read.bind_all(bindings),
            bytes_written: self.bytes_written.bind_all(bindings),
            params: self.params.bind_all(bindings),
            io: self.io.bind_all(bindings),
        }
    }

    /// Evaluate all quantities via the compiled programs. Bit-identical to
    /// [`ForwardStats::eval`] on the viewed expressions.
    pub fn eval(&self, bindings: &Bindings) -> Result<NumericForwardStats, UnboundSymbol> {
        Ok(NumericForwardStats {
            flops: self.flops.eval(bindings)?,
            bytes: self.bytes.eval(bindings)?,
            bytes_read: self.bytes_read.eval(bindings)?,
            bytes_written: self.bytes_written.eval(bindings)?,
            params: self.params.eval(bindings)?,
            io: self.io.eval(bindings)?,
        })
    }
}

/// Numeric forward-only cost summary (see [`ForwardStats`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NumericForwardStats {
    /// Algorithmic FLOPs per forward pass.
    pub flops: f64,
    /// Algorithmic bytes accessed per forward pass.
    pub bytes: f64,
    /// Bytes read.
    pub bytes_read: f64,
    /// Bytes written.
    pub bytes_written: f64,
    /// Parameters.
    pub params: f64,
    /// Input bytes per pass.
    pub io: f64,
}

impl NumericForwardStats {
    /// Operational intensity `flops / bytes` (FLOP/B).
    pub fn operational_intensity(&self) -> f64 {
        self.flops / self.bytes
    }
}

/// [`GraphStats`] with every quantity as a hash-consed [`ExprId`]: cheap to
/// clone and compare, with memoized substitution ([`bind_all`]) and compiled
/// evaluation ([`eval`]) that is bit-identical to the tree walk. This is the
/// representation the sweep engine caches per model family.
///
/// [`bind_all`]: InternedGraphStats::bind_all
/// [`eval`]: InternedGraphStats::eval
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InternedGraphStats {
    /// Algorithmic FLOPs per training step (all phases).
    pub flops: ExprId,
    /// Forward-phase FLOPs only.
    pub flops_forward: ExprId,
    /// Backward-phase FLOPs only.
    pub flops_backward: ExprId,
    /// Weight-update-phase FLOPs only (optimizer ops).
    pub flops_update: ExprId,
    /// Algorithmic bytes read + written per training step.
    pub bytes: ExprId,
    /// Bytes read only.
    pub bytes_read: ExprId,
    /// Bytes written only.
    pub bytes_written: ExprId,
    /// Trainable parameter count.
    pub params: ExprId,
    /// Algorithmic IO: bytes of training data consumed per step.
    pub io: ExprId,
}

impl InternedGraphStats {
    /// Apply a function to every field.
    fn map(&self, mut f: impl FnMut(ExprId) -> ExprId) -> InternedGraphStats {
        InternedGraphStats {
            flops: f(self.flops),
            flops_forward: f(self.flops_forward),
            flops_backward: f(self.flops_backward),
            flops_update: f(self.flops_update),
            bytes: f(self.bytes),
            bytes_read: f(self.bytes_read),
            bytes_written: f(self.bytes_written),
            params: f(self.params),
            io: f(self.io),
        }
    }

    /// Materialize the tree-expression view.
    pub fn view(&self) -> GraphStats {
        GraphStats {
            flops: (*self.flops.expr()).clone(),
            flops_forward: (*self.flops_forward.expr()).clone(),
            flops_backward: (*self.flops_backward.expr()).clone(),
            flops_update: (*self.flops_update.expr()).clone(),
            bytes: (*self.bytes.expr()).clone(),
            bytes_read: (*self.bytes_read.expr()).clone(),
            bytes_written: (*self.bytes_written.expr()).clone(),
            params: (*self.params.expr()).clone(),
            io: (*self.io.expr()).clone(),
        }
    }

    /// Substitute integer bindings exactly in every field (memoized).
    pub fn bind_all(&self, bindings: &Bindings) -> InternedGraphStats {
        self.map(|e| e.bind_all(bindings))
    }

    /// Evaluate all quantities via the compiled programs. Bit-identical to
    /// [`GraphStats::eval`] on the viewed expressions.
    pub fn eval(&self, bindings: &Bindings) -> Result<NumericStats, UnboundSymbol> {
        Ok(NumericStats {
            flops: self.flops.eval(bindings)?,
            flops_forward: self.flops_forward.eval(bindings)?,
            flops_backward: self.flops_backward.eval(bindings)?,
            flops_update: self.flops_update.eval(bindings)?,
            bytes: self.bytes.eval(bindings)?,
            bytes_read: self.bytes_read.eval(bindings)?,
            bytes_written: self.bytes_written.eval(bindings)?,
            params: self.params.eval(bindings)?,
            io: self.io.eval(bindings)?,
        })
    }

    /// Interned counterpart of [`GraphStats::forward_view`]: `None` unless
    /// both training-phase ids are the canonical zero (structural equality on
    /// hash-consed ids makes the guard O(1)).
    pub fn forward_view(&self) -> Option<InternedForwardStats> {
        if !self.flops_backward.is_zero() || !self.flops_update.is_zero() {
            return None;
        }
        Some(InternedForwardStats {
            flops: self.flops_forward,
            bytes: self.bytes,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            params: self.params,
            io: self.io,
        })
    }
}

/// Numeric cost summary (see [`GraphStats`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NumericStats {
    /// Algorithmic FLOPs per training step.
    pub flops: f64,
    /// Forward-phase FLOPs.
    pub flops_forward: f64,
    /// Backward-phase FLOPs.
    pub flops_backward: f64,
    /// Weight-update-phase FLOPs (optimizer ops).
    pub flops_update: f64,
    /// Algorithmic bytes accessed per step.
    pub bytes: f64,
    /// Bytes read.
    pub bytes_read: f64,
    /// Bytes written.
    pub bytes_written: f64,
    /// Trainable parameters.
    pub params: f64,
    /// Training-data bytes per step.
    pub io: f64,
}

impl NumericStats {
    /// Operational intensity `flops / bytes` (FLOP/B).
    pub fn operational_intensity(&self) -> f64 {
        self.flops / self.bytes
    }

    /// Numeric counterpart of [`GraphStats::forward_view`]: `None` unless
    /// backward and update FLOPs are exactly `0.0`.
    pub fn forward_view(&self) -> Option<NumericForwardStats> {
        if self.flops_backward != 0.0 || self.flops_update != 0.0 {
            return None;
        }
        Some(NumericForwardStats {
            flops: self.flops_forward,
            bytes: self.bytes,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            params: self.params,
            io: self.io,
        })
    }
}

/// Whether `FRONTIER_STATS_ORACLE=unfolded` forces the brute-force stats
/// path (checked once per process — flipping the variable mid-run would
/// otherwise poison caches keyed on the expressions).
fn oracle_unfolded() -> bool {
    use std::sync::OnceLock;
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| std::env::var("FRONTIER_STATS_ORACLE").as_deref() == Ok("unfolded"))
}

impl Graph {
    fn resolve<'a>(&'a self, op: &Op) -> (Vec<&'a Tensor>, Vec<&'a Tensor>) {
        let ins = op.inputs.iter().map(|&t| self.tensor(t)).collect();
        let outs = op.outputs.iter().map(|&t| self.tensor(t)).collect();
        (ins, outs)
    }

    /// Algorithmic FLOPs of a single op.
    pub fn op_flops(&self, op: &Op) -> Expr {
        let (ins, outs) = self.resolve(op);
        op_flops(&op.kind, &ins, &outs)
    }

    /// Algorithmic bytes `(read, written)` of a single op.
    pub fn op_bytes(&self, op: &Op) -> (Expr, Expr) {
        let (ins, outs) = self.resolve(op);
        op_bytes(&op.kind, &ins, &outs)
    }

    /// Trainable parameter count (elements of all `Weight` tensors).
    pub fn params(&self) -> Expr {
        self.tensors()
            .iter()
            .filter(|t| t.kind == TensorKind::Weight)
            .map(|t| t.shape.elements())
            .sum()
    }

    /// Algorithmic IO: bytes of `Input` tensors consumed per step.
    pub fn io_bytes(&self) -> Expr {
        self.tensors()
            .iter()
            .filter(|t| t.kind == TensorKind::Input)
            .map(|t| t.bytes())
            .sum()
    }

    /// Interned counterpart of [`Graph::params`] (same canonical sum, via
    /// the memoized algebra).
    pub fn params_id(&self) -> ExprId {
        self.tensors()
            .iter()
            .filter(|t| t.kind == TensorKind::Weight)
            .fold(ExprId::zero(), |acc, t| acc.add(t.shape.elements_id()))
    }

    /// Interned counterpart of [`Graph::io_bytes`].
    pub fn io_bytes_id(&self) -> ExprId {
        self.tensors()
            .iter()
            .filter(|t| t.kind == TensorKind::Input)
            .fold(ExprId::zero(), |acc, t| acc.add(t.bytes_id()))
    }

    /// Compute the full symbolic cost summary.
    ///
    /// Repeated cost-identical ops (unrolled timesteps, residual blocks) are
    /// folded via [`fold_classes`](crate::fold::fold_classes): one
    /// representative cost expression per class, scaled by the class size.
    /// Because `symath` keeps expressions in canonical form with exact
    /// rational coefficients, the result is the *same* `Expr` — and therefore
    /// bit-identical under evaluation — as the op-by-op
    /// [`stats_unfolded`](Graph::stats_unfolded) walk.
    pub fn stats(&self) -> GraphStats {
        self.stats_interned().view()
    }

    /// [`Graph::stats`] accumulated over hash-consed ids: one representative
    /// cost expression per fold class, scaled and summed through the
    /// `symath` memo caches. Families rebuilt across sweeps (or the same op
    /// costs recurring across graphs) hit the memo instead of redoing the
    /// tree algebra. The viewed expressions equal the former direct
    /// accumulation — the memoized ops are the same canonical operations.
    ///
    /// Setting `FRONTIER_STATS_ORACLE=unfolded` in the environment reroutes
    /// this through [`stats_interned_unfolded`](Graph::stats_interned_unfolded)
    /// — the op-by-op brute-force accumulation — so the whole workspace
    /// (sweep engine, server, benches) can be re-tested against the oracle
    /// path with no code change. The override is read once per process.
    pub fn stats_interned(&self) -> InternedGraphStats {
        if oracle_unfolded() {
            return self.stats_interned_unfolded();
        }
        let fold = crate::fold::fold_classes(self);
        // Accumulate in tree form — interning every intermediate accumulator
        // would re-hash the whole growing sum once per fold class. The final
        // totals are interned once each, so the memo caches still serve every
        // downstream `bind_all`/`mul`/`add` on the family.
        let mut flops = Expr::zero();
        let mut flops_forward = Expr::zero();
        let mut flops_backward = Expr::zero();
        let mut flops_update = Expr::zero();
        let mut bytes_read = Expr::zero();
        let mut bytes_written = Expr::zero();
        for class in &fold.classes {
            let op = self.op(class.rep);
            let m = Expr::int(class.count as i128);
            let f = self.op_flops(op) * &m;
            match op.phase {
                Phase::Forward => flops_forward = flops_forward + &f,
                Phase::Backward => flops_backward = flops_backward + &f,
                Phase::Update => flops_update = flops_update + &f,
            }
            flops = flops + f;
            let (r, w) = self.op_bytes(op);
            bytes_read = bytes_read + r * &m;
            bytes_written = bytes_written + w * &m;
        }
        let bytes = bytes_read.clone() + bytes_written.clone();
        InternedGraphStats {
            flops: flops.interned(),
            flops_forward: flops_forward.interned(),
            flops_backward: flops_backward.interned(),
            flops_update: flops_update.interned(),
            bytes: bytes.interned(),
            bytes_read: bytes_read.interned(),
            bytes_written: bytes_written.interned(),
            params: self.params_id(),
            io: self.io_bytes_id(),
        }
    }

    /// The brute-force oracle, interned: [`stats_unfolded`](Graph::stats_unfolded)
    /// accumulated op by op, with only the final totals hash-consed. Because
    /// `symath` expressions are canonical, the ids equal the folded
    /// accumulation's — the fold-exactness claim at the interned level, which
    /// the `FRONTIER_STATS_ORACLE=unfolded` CI pass exercises workspace-wide.
    pub fn stats_interned_unfolded(&self) -> InternedGraphStats {
        let s = self.stats_unfolded();
        InternedGraphStats {
            flops: s.flops.interned(),
            flops_forward: s.flops_forward.interned(),
            flops_backward: s.flops_backward.interned(),
            flops_update: s.flops_update.interned(),
            bytes: s.bytes.interned(),
            bytes_read: s.bytes_read.interned(),
            bytes_written: s.bytes_written.interned(),
            params: s.params.interned(),
            io: s.io.interned(),
        }
    }

    /// The pre-folding reference: accumulate every op's cost individually.
    /// Kept as the brute-force oracle for the fold equivalence suite and the
    /// sweep benchmark baseline.
    pub fn stats_unfolded(&self) -> GraphStats {
        let mut flops = Expr::zero();
        let mut flops_forward = Expr::zero();
        let mut flops_backward = Expr::zero();
        let mut flops_update = Expr::zero();
        let mut bytes_read = Expr::zero();
        let mut bytes_written = Expr::zero();
        for op in self.ops() {
            let f = self.op_flops(op);
            match op.phase {
                Phase::Forward => flops_forward = flops_forward + &f,
                Phase::Backward => flops_backward = flops_backward + &f,
                Phase::Update => flops_update = flops_update + &f,
            }
            flops = flops + f;
            let (r, w) = self.op_bytes(op);
            bytes_read = bytes_read + r;
            bytes_written = bytes_written + w;
        }
        GraphStats {
            flops,
            flops_forward,
            flops_backward,
            flops_update,
            bytes: bytes_read.clone() + bytes_written.clone(),
            bytes_read,
            bytes_written,
            params: self.params(),
            io: self.io_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::PointwiseFn;
    use crate::tensor::DType;
    use symath::Bindings;

    fn mlp() -> Graph {
        let mut g = Graph::new("mlp");
        let b = Expr::sym("st_b");
        let x = g
            .input("x", [b.clone(), Expr::int(64)], DType::F32)
            .unwrap();
        let w1 = g.weight("w1", [Expr::int(64), Expr::int(128)]).unwrap();
        let h = g.matmul("fc1", x, w1, false, false).unwrap();
        let h = g.unary("relu", PointwiseFn::Relu, h).unwrap();
        let w2 = g.weight("w2", [Expr::int(128), Expr::int(10)]).unwrap();
        let _ = g.matmul("fc2", h, w2, false, false).unwrap();
        g
    }

    #[test]
    fn params_count_weight_elements() {
        let g = mlp();
        assert_eq!(g.params(), Expr::int(64 * 128 + 128 * 10));
    }

    #[test]
    fn flops_scale_with_batch() {
        let g = mlp();
        let stats = g.stats();
        let n1 = stats.eval(&Bindings::new().with("st_b", 1.0)).unwrap();
        let n2 = stats.eval(&Bindings::new().with("st_b", 2.0)).unwrap();
        assert!((n2.flops - 2.0 * n1.flops).abs() < 1e-9);
        // fc1: 2·b·64·128, relu: b·128, fc2: 2·b·128·10
        assert_eq!(n1.flops, (2 * 64 * 128 + 128 + 2 * 128 * 10) as f64);
    }

    #[test]
    fn io_counts_only_inputs() {
        let g = mlp();
        let io = g
            .io_bytes()
            .eval(&Bindings::new().with("st_b", 4.0))
            .unwrap();
        assert_eq!(io, (4 * 64 * 4) as f64);
    }

    #[test]
    fn bytes_split_into_read_write() {
        let g = mlp();
        let n = g.stats().eval(&Bindings::new().with("st_b", 1.0)).unwrap();
        assert!(n.bytes_read > 0.0 && n.bytes_written > 0.0);
        assert_eq!(n.bytes, n.bytes_read + n.bytes_written);
        // fc1 reads x (64) + w1 (64·128), writes h (128)...
        let expected_read = (64 + 64 * 128) + 128 + (128 + 128 * 10);
        let expected_write = 128 + 128 + 10;
        assert_eq!(n.bytes_read, (expected_read * 4) as f64);
        assert_eq!(n.bytes_written, (expected_write * 4) as f64);
    }

    #[test]
    fn operational_intensity_is_ratio() {
        let g = mlp();
        let n = g.stats().eval(&Bindings::new().with("st_b", 8.0)).unwrap();
        assert!((n.operational_intensity() - n.flops / n.bytes).abs() < 1e-12);
    }

    #[test]
    fn forward_only_graph_has_zero_backward_flops() {
        let g = mlp();
        let n = g.stats().eval(&Bindings::new().with("st_b", 1.0)).unwrap();
        assert_eq!(n.flops_backward, 0.0);
        assert_eq!(n.flops_update, 0.0);
        assert_eq!(n.flops, n.flops_forward);
    }

    #[test]
    fn forward_view_matches_totals_on_inference_graph() {
        let g = mlp();
        let stats = g.stats();
        let fwd = stats.forward_view().expect("mlp is forward-only");
        let b = Bindings::new().with("st_b", 3.0);
        let n = stats.eval(&b).unwrap();
        let f = fwd.eval(&b).unwrap();
        assert_eq!(f.flops, n.flops);
        assert_eq!(f.bytes, n.bytes);
        assert_eq!(f.bytes_read, n.bytes_read);
        assert_eq!(f.bytes_written, n.bytes_written);
        assert_eq!(f.params, n.params);
        assert_eq!(f.io, n.io);
        // Interned and numeric views agree bit-for-bit with the tree walk.
        let fi = g.stats_interned().forward_view().unwrap();
        assert_eq!(fi.eval(&b).unwrap(), f);
        assert_eq!(n.forward_view(), Some(f));
    }

    #[test]
    fn forward_view_refuses_training_graphs() {
        let mut g = mlp();
        let logits = g.ops().last().unwrap().outputs[0];
        let labels = g.input("labels", [Expr::sym("st_b")], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", logits, labels).unwrap();
        crate::autodiff::build_training_step(&mut g, loss).unwrap();
        assert!(g.stats().forward_view().is_none());
        assert!(g.stats_interned().forward_view().is_none());
        let n = g.stats().eval(&Bindings::new().with("st_b", 2.0)).unwrap();
        assert!(n.forward_view().is_none());
    }

    #[test]
    fn phases_sum_to_total_on_training_graph() {
        let mut g = mlp();
        let logits = g.ops().last().unwrap().outputs[0];
        let labels = g.input("labels", [Expr::sym("st_b")], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", logits, labels).unwrap();
        crate::autodiff::build_training_step(&mut g, loss).unwrap();
        let n = g.stats().eval(&Bindings::new().with("st_b", 16.0)).unwrap();
        assert!(n.flops_forward > 0.0);
        assert!(n.flops_backward > 0.0);
        assert!(n.flops_update > 0.0, "optimizer FLOPs must be attributed");
        // The three phases partition the total exactly.
        assert!(
            (n.flops - (n.flops_forward + n.flops_backward + n.flops_update)).abs()
                <= 1e-9 * n.flops
        );
        // SGD costs 2 FLOPs per parameter.
        assert_eq!(n.flops_update, 2.0 * n.params);
    }
}
