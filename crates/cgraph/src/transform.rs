//! Whole-graph transformations: training-precision casting and optimizer
//! selection (paper §6.2.3: "model compression or distillation, and
//! low-precision or sparse computation may reduce model or activation
//! tensor size ... by 1.5–10×").

use crate::autodiff::TrainingStep;
use crate::graph::{Graph, GraphError};
use crate::op::{OpKind, Phase};
use crate::tensor::{DType, TensorKind};

/// Cast every floating-point tensor of the graph to `dtype` in place
/// (integer index tensors are untouched). FLOP counts are unchanged;
/// algorithmic bytes, IO, and footprint shrink with the element width —
/// the paper's low-precision lever.
///
/// # Panics
/// Panics if `dtype` is not a floating-point type.
pub fn cast_float_precision(graph: &mut Graph, dtype: DType) {
    assert!(
        matches!(dtype, DType::F16 | DType::F32 | DType::F64),
        "cast_float_precision expects a float dtype, got {dtype}"
    );
    for t in &mut graph.tensors {
        if matches!(t.dtype, DType::F16 | DType::F32 | DType::F64) {
            t.dtype = dtype;
        }
    }
}

/// First-order optimizers with their per-parameter state and update costs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Optimizer {
    /// Plain SGD: no state; `w ← w − lr·g`.
    Sgd,
    /// SGD with momentum: one velocity tensor per weight.
    Momentum,
    /// Adam: first- and second-moment tensors per weight.
    Adam,
}

impl Optimizer {
    /// Persistent optimizer-state tensors per weight.
    pub fn state_slots(&self) -> usize {
        match self {
            Optimizer::Sgd => 0,
            Optimizer::Momentum => 1,
            Optimizer::Adam => 2,
        }
    }

    fn state_names(&self) -> &'static [&'static str] {
        match self {
            Optimizer::Sgd => &[],
            Optimizer::Momentum => &["velocity"],
            Optimizer::Adam => &["moment1", "moment2"],
        }
    }
}

/// Replace every `SgdUpdate` of a built training graph with the update of
/// `optimizer`, materializing its persistent state tensors. Returns the
/// number of updates rewritten.
///
/// The update ops' cost model: momentum reads `w, g, v` and writes `w, v`
/// (4 FLOPs/param); Adam reads `w, g, m, v` and writes `w, m, v`
/// (10 FLOPs/param) — see [`OpKind::MomentumUpdate`] / [`OpKind::AdamUpdate`].
pub fn apply_optimizer(
    graph: &mut Graph,
    step: &TrainingStep,
    optimizer: Optimizer,
) -> Result<usize, GraphError> {
    if optimizer == Optimizer::Sgd {
        return Ok(0); // build_training_step already emitted SgdUpdate ops
    }
    let mut rewritten = 0;
    for (w, gw) in &step.weight_grads {
        // Create the persistent state tensors.
        let wname = graph.tensor(*w).name.clone();
        let shape = graph.tensor(*w).shape.clone();
        let mut state = Vec::new();
        for sname in optimizer.state_names() {
            let t = graph.optimizer_state(format!("{wname}.{sname}"), shape.clone())?;
            state.push(t);
        }
        // Find and rewrite the SgdUpdate consuming this weight's gradient.
        let op_id = graph
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::SgdUpdate) && o.inputs == vec![*w, *gw])
            .map(|o| o.id())
            .expect("every weight_grad pair has an update op");
        let kind = match optimizer {
            Optimizer::Momentum => OpKind::MomentumUpdate,
            Optimizer::Adam => OpKind::AdamUpdate,
            Optimizer::Sgd => unreachable!(),
        };
        let op = &mut graph.ops[op_id.index()];
        op.kind = kind;
        debug_assert_eq!(op.phase, Phase::Update);
        for &s in &state {
            op.inputs.push(s);
        }
        // Maintain the consumer index for the new operands.
        for s in state {
            graph.record_consumer(s, op_id);
        }
        rewritten += 1;
    }
    Ok(rewritten)
}

/// Bytes of persistent optimizer state per training step.
pub fn optimizer_state_bytes(graph: &Graph) -> symath::Expr {
    graph
        .tensors()
        .iter()
        .filter(|t| t.kind == TensorKind::OptimizerState)
        .map(|t| t.bytes())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autodiff::build_training_step;
    use crate::footprint::{footprint, Scheduler};
    use crate::op::PointwiseFn;
    use symath::{Bindings, Expr};

    fn training_mlp() -> (Graph, TrainingStep) {
        let mut g = Graph::new("opt_mlp");
        let b = Expr::sym("tr_b");
        let x = g
            .input("x", [b.clone(), Expr::int(64)], DType::F32)
            .unwrap();
        let w1 = g.weight("w1", [Expr::int(64), Expr::int(64)]).unwrap();
        let h = g.matmul("fc1", x, w1, false, false).unwrap();
        let h = g.unary("relu", PointwiseFn::Relu, h).unwrap();
        let labels = g.input("labels", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", h, labels).unwrap();
        let step = build_training_step(&mut g, loss).unwrap();
        (g, step)
    }

    #[test]
    fn f16_halves_bytes_keeps_flops() {
        let (mut g, _) = training_mlp();
        let before = g.stats().eval(&Bindings::new().with("tr_b", 32.0)).unwrap();
        cast_float_precision(&mut g, DType::F16);
        let after = g.stats().eval(&Bindings::new().with("tr_b", 32.0)).unwrap();
        assert_eq!(after.flops, before.flops);
        // Index tensors stay 32-bit, so the reduction is just under 2×.
        assert!(after.bytes < 0.55 * before.bytes && after.bytes > 0.45 * before.bytes);
    }

    #[test]
    fn f16_roughly_halves_footprint() {
        let (mut g, _) = training_mlp();
        let bindings = Bindings::new().with("tr_b", 32.0);
        let before = footprint(&g, &bindings, Scheduler::Best)
            .unwrap()
            .peak_bytes;
        cast_float_precision(&mut g, DType::F16);
        let after = footprint(&g, &bindings, Scheduler::Best)
            .unwrap()
            .peak_bytes;
        assert!(after < before);
        assert!(after as f64 > 0.4 * before as f64);
    }

    #[test]
    fn adam_triples_persistent_memory() {
        let (mut g, step) = training_mlp();
        let rewritten = apply_optimizer(&mut g, &step, Optimizer::Adam).unwrap();
        assert_eq!(rewritten, 1);
        g.validate().unwrap();
        let bindings = Bindings::new().with("tr_b", 1.0);
        let fp = footprint(&g, &bindings, Scheduler::Best).unwrap();
        let weights = g.params().eval(&bindings).unwrap() * 4.0;
        assert!(
            (fp.persistent_bytes as f64 - 3.0 * weights).abs() < 1.0,
            "persistent {} vs 3×weights {}",
            fp.persistent_bytes,
            3.0 * weights
        );
    }

    #[test]
    fn momentum_update_costs_more_than_sgd() {
        let (mut g_sgd, _) = training_mlp();
        let (mut g_mom, step) = training_mlp_named("opt_mlp2");
        apply_optimizer(&mut g_mom, &step, Optimizer::Momentum).unwrap();
        let b = Bindings::new().with("tr_b", 1.0);
        let s = g_sgd.stats().eval(&b).unwrap();
        let m = g_mom.stats().eval(&b).unwrap();
        assert!(m.flops > s.flops);
        assert!(m.bytes > s.bytes);
        let _ = &mut g_sgd;
    }

    fn training_mlp_named(name: &str) -> (Graph, TrainingStep) {
        let mut g = Graph::new(name);
        let b = Expr::sym("tr_b");
        let x = g
            .input("x", [b.clone(), Expr::int(64)], DType::F32)
            .unwrap();
        let w1 = g.weight("w1", [Expr::int(64), Expr::int(64)]).unwrap();
        let h = g.matmul("fc1", x, w1, false, false).unwrap();
        let h = g.unary("relu", PointwiseFn::Relu, h).unwrap();
        let labels = g.input("labels", [b], DType::I32).unwrap();
        let loss = g.cross_entropy("loss", h, labels).unwrap();
        let step = build_training_step(&mut g, loss).unwrap();
        (g, step)
    }

    #[test]
    fn sgd_is_a_no_op() {
        let (mut g, step) = training_mlp();
        let before_ops = g.ops().len();
        assert_eq!(apply_optimizer(&mut g, &step, Optimizer::Sgd).unwrap(), 0);
        assert_eq!(g.ops().len(), before_ops);
    }

    #[test]
    fn state_bytes_query_counts_only_state() {
        let (mut g, step) = training_mlp();
        apply_optimizer(&mut g, &step, Optimizer::Adam).unwrap();
        let state = optimizer_state_bytes(&g).eval(&Bindings::new()).unwrap();
        let weights = g.params().eval(&Bindings::new()).unwrap() * 4.0;
        assert_eq!(state, 2.0 * weights);
    }

    #[test]
    #[should_panic(expected = "float dtype")]
    fn cast_rejects_integer_targets() {
        let (mut g, _) = training_mlp();
        cast_float_precision(&mut g, DType::I32);
    }
}
